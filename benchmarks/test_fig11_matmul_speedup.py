"""Fig 11 — naive matrix multiplication speedup vs fork/join pool size.

Paper (quad-CPU Xeon E7-8837, 32 cores): "This program is
embarrassingly parallel, and has a high computation to communication
ratio (after applying compiler optimisations, only one tuple per row of
the output matrix needs to go through the delta set), so shows good
speedup up to 20 cores."

Reproduced with N=96 rows (scaled from 1000) on the virtual machine:
near-linear to ~16–20 cores, flattening beyond as memory bandwidth and
per-step overheads bite.
"""

from __future__ import annotations

import pytest

from repro.apps.matmul import random_matrix, run_matmul
from repro.bench import speedup_series
from repro.core import ExecOptions

N = 96
THREADS = (1, 2, 4, 8, 12, 16, 20, 24, 32)
OPT = ExecOptions(no_delta=frozenset({"Matrix"}))

A = random_matrix(N, 1)
B = random_matrix(N, 2)


@pytest.fixture(scope="module")
def series():
    seq, _ = run_matmul(A, B, OPT, "unboxed")

    def run(threads: int) -> float:
        r, c = run_matmul(
            A, B, OPT.with_(strategy="forkjoin", threads=threads), "unboxed"
        )
        assert (c == A @ B).all()
        return r.virtual_time

    return speedup_series("matmul N=96 (unboxed)", THREADS, run, sequential=seq.virtual_time)


def test_fig11_wall_8_threads(benchmark):
    benchmark.pedantic(
        lambda: run_matmul(A, B, OPT.with_(strategy="forkjoin", threads=8), "unboxed"),
        rounds=3,
        warmup_rounds=1,
    )


def test_fig11_report(benchmark, series, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    rel = dict(zip(series.threads, series.relative))
    emit(
        "fig11_matmul_speedup",
        "### Fig 11 — MatrixMult speedup vs pool size (paper: good speedup to ~20 cores)\n"
        + series.format()
        + f"\n\nspeedup at 8/16/20/32: {rel[8]:.2f} / {rel[16]:.2f} / {rel[20]:.2f} / {rel[32]:.2f}"
        + "\n(paper's Fig 11 shows near-linear to ~20, then flat)",
    )
    # near-linear early
    assert rel[2] > 1.7
    assert rel[8] > 5.5
    # good speedup up to ~20
    assert rel[20] > 11.0
    # flattening: the 20->32 gain is clearly sub-linear
    assert (rel[32] - rel[20]) / (32 - 20) < 0.75
    # never decreasing
    speeds = [rel[t] for t in THREADS]
    assert all(b >= a * 0.97 for a, b in zip(speeds, speeds[1:]))
