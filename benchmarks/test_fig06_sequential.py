"""Fig 6 — absolute sequential speed: JStar programs vs hand-coded
baselines, ten bars across the four case studies.

Paper numbers (seconds on an i7-2600): PvWatts 4.7 (JStar) vs 5.9
(Java); MatrixMult 21.9 (boxed) / 8.1 (int) vs 7.5 (naive Java) / 1.0
(transposed Java); Dijkstra 3.8 vs 1.8; Median 6.8 vs 13.4.

We reproduce the *pairwise ratios* at scaled workloads (see
DESIGN.md §4).  Two panels are emitted:

* measured wall seconds for every bar (pytest-benchmark measures the
  headline pairs; the sweep below reports single-shot numbers for all
  ten), with honest deviations where CPython interpretation of the
  runtime dominates (PvWatts, Dijkstra — see EXPERIMENTS.md);
* component claims measured in isolation where the paper names the
  cause of a gap: byte-CSV vs text-CSV reading (PvWatts's win) and
  selection vs full sort kernels (Median's win).
"""

from __future__ import annotations

import time

import pytest

from repro.apps.baselines.matmul_base import matmul_naive, matmul_transposed
from repro.apps.baselines.median_base import (
    kernel_comparison,
    median_sort_baseline,
)
from repro.apps.baselines.pvwatts_base import pvwatts_baseline
from repro.apps.baselines.shortestpath_base import dijkstra_baseline
from repro.apps.matmul import random_matrix, run_matmul
from repro.apps.median import median_from_result, random_doubles, run_median
from repro.apps.pvwatts import month_means_from_output, run_pvwatts
from repro.apps.shortestpath import (
    GraphSpec,
    distances_from_result,
    make_graph,
    run_shortestpath,
)
from repro.bench import comparison_block
from repro.core import ExecOptions
from repro.csvio import PVWATTS_INT_POSITIONS, read_records_bytes, read_records_text

MATMUL_N = 96
SP_SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)
MEDIAN_N = 2_000_000

PAPER_RATIOS = {
    "pvwatts jstar/java": 4.7 / 5.9,
    "matmul boxed/int": 21.9 / 8.1,
    "matmul int/naive": 8.1 / 7.5,
    "matmul naive/transposed": 7.5 / 1.0,
    "dijkstra jstar/java": 3.8 / 1.8,
    "median java/jstar": 13.4 / 6.8,
}


def _once(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


@pytest.fixture(scope="module")
def fig6_rows(csv_by_month):
    """Single-shot wall times for all ten bars."""
    rows: dict[str, float] = {}
    seq = ExecOptions(strategy="sequential")

    t, r = _once(lambda: run_pvwatts(csv_by_month, seq.with_(no_delta=frozenset({"PvWatts"}))))
    assert len(month_means_from_output(r.output)) == 12
    rows["pvwatts jstar"] = t
    rows["pvwatts java"], base_means = _once(lambda: pvwatts_baseline(csv_by_month))
    assert len(base_means) == 12

    a, b = random_matrix(MATMUL_N, 1), random_matrix(MATMUL_N, 2)
    truth = a @ b
    mm_opts = seq.with_(no_delta=frozenset({"Matrix"}))
    for variant in ("boxed", "unboxed"):
        t, (_, c) = _once(lambda v=variant: run_matmul(a, b, mm_opts, v))
        assert (c == truth).all()
        rows[f"matmul {variant}"] = t
    t, c = _once(lambda: matmul_naive(a, b))
    assert (c == truth).all()
    rows["matmul naive"] = t
    t, c = _once(lambda: matmul_transposed(a, b))
    assert (c == truth).all()
    rows["matmul transposed"] = t

    edges = make_graph(SP_SPEC)
    t, r = _once(lambda: run_shortestpath(SP_SPEC))
    rows["dijkstra jstar"] = t
    t, base = _once(lambda: dijkstra_baseline(edges, SP_SPEC.n_vertices))
    rows["dijkstra java"] = t
    assert distances_from_result(r) == base

    vals = random_doubles(MEDIAN_N)
    t, r = _once(lambda: run_median(vals))
    rows["median jstar"] = t
    t, m = _once(lambda: median_sort_baseline(vals))
    rows["median java"] = t
    assert median_from_result(r) == m
    return rows


class TestFig6Pairs:
    """pytest-benchmark wall measurements of the four headline pairs."""

    def test_pvwatts_jstar(self, benchmark, csv_by_month):
        benchmark.pedantic(
            lambda: run_pvwatts(
                csv_by_month, ExecOptions(no_delta=frozenset({"PvWatts"}))
            ),
            rounds=3,
            warmup_rounds=1,
        )

    def test_pvwatts_baseline(self, benchmark, csv_by_month):
        benchmark.pedantic(lambda: pvwatts_baseline(csv_by_month), rounds=5, warmup_rounds=1)

    def test_matmul_jstar_unboxed(self, benchmark):
        a, b = random_matrix(MATMUL_N, 1), random_matrix(MATMUL_N, 2)
        opts = ExecOptions(no_delta=frozenset({"Matrix"}))
        benchmark.pedantic(lambda: run_matmul(a, b, opts, "unboxed"), rounds=3, warmup_rounds=1)

    def test_matmul_baseline_naive(self, benchmark):
        a, b = random_matrix(MATMUL_N, 1), random_matrix(MATMUL_N, 2)
        benchmark.pedantic(lambda: matmul_naive(a, b), rounds=3, warmup_rounds=1)

    def test_dijkstra_jstar(self, benchmark):
        benchmark.pedantic(lambda: run_shortestpath(SP_SPEC), rounds=3, warmup_rounds=1)

    def test_dijkstra_baseline(self, benchmark):
        edges = make_graph(SP_SPEC)
        benchmark.pedantic(
            lambda: dijkstra_baseline(edges, SP_SPEC.n_vertices), rounds=5, warmup_rounds=1
        )

    def test_median_jstar(self, benchmark):
        vals = random_doubles(MEDIAN_N)
        benchmark.pedantic(lambda: run_median(vals), rounds=3, warmup_rounds=1)

    def test_median_baseline(self, benchmark):
        vals = random_doubles(MEDIAN_N)
        benchmark.pedantic(lambda: median_sort_baseline(vals), rounds=3, warmup_rounds=1)


def test_fig06_report(benchmark, fig6_rows, csv_by_month, emit):
    """Assemble the Fig 6 panel: measured bars, pairwise ratios vs the
    paper's, and the two component claims in isolation."""
    rows = fig6_rows
    pairs = [
        ("pvwatts jstar/java", rows["pvwatts jstar"], rows["pvwatts java"]),
        ("matmul boxed/int", rows["matmul boxed"], rows["matmul unboxed"]),
        ("matmul int/naive", rows["matmul unboxed"], rows["matmul naive"]),
        ("matmul naive/transposed", rows["matmul naive"], rows["matmul transposed"]),
        ("dijkstra jstar/java", rows["dijkstra jstar"], rows["dijkstra java"]),
        ("median java/jstar", rows["median java"], rows["median jstar"]),
    ]
    block = comparison_block(
        "Fig 6 — sequential JStar vs hand-coded baselines (wall seconds, scaled workloads)",
        pairs,
        paper_ratios=PAPER_RATIOS,
        note=(
            "shape targets: median & matmul pairs reproduce; pvwatts/dijkstra "
            "absolute ratios are dominated by CPython interpretation of the "
            "runtime (see EXPERIMENTS.md); their causal components follow."
        ),
    )

    # component claim 1: byte reader beats text reader (PvWatts's win);
    # measured on a 3-year file so the ~10 % gap clears timing noise
    from repro.csvio import generate_csv_bytes

    big_csv = generate_csv_bytes(n_years=3, seed=42)

    def read_bytes():
        return read_records_bytes(big_csv, PVWATTS_INT_POSITIONS, 5)

    def read_text():
        return read_records_text(big_csv, PVWATTS_INT_POSITIONS, 5)

    def best_of(fn, reps=7):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    benchmark.pedantic(read_bytes, rounds=3, warmup_rounds=1)
    t_bytes = best_of(read_bytes)
    t_text = best_of(read_text)

    # component claim 2: selection kernel beats full-sort kernel (Median)
    import numpy as np

    vals = random_doubles(MEDIAN_N)
    sel, srt = kernel_comparison(vals)
    assert sel == srt
    t_sel = best_of(lambda: np.partition(vals, (MEDIAN_N - 1) // 2), reps=5)
    t_sort = best_of(lambda: np.sort(vals), reps=5)

    block += "\n\n" + comparison_block(
        "Fig 6 components — causes measured in isolation",
        [
            ("csv byte-reader/text-reader", t_bytes, t_text),
            ("median selection/sort kernel", t_sel, t_sort),
        ],
        paper_ratios={
            "csv byte-reader/text-reader": 0.8,  # implied by the PvWatts pair
            "median selection/sort kernel": 0.5,  # ~2x selection win
        },
    )
    emit("fig06_sequential", block)
    assert rows["matmul boxed"] > rows["matmul unboxed"]
    assert rows["median java"] > rows["median jstar"]
    assert t_bytes < t_text
    assert t_sel < t_sort
