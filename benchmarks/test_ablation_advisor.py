"""Ablation — the data-structure advisor vs hand tuning (§1.4/§6.2).

The paper hand-crafted the PvWatts array-of-hashsets store after
"some experimentation" and planned "a compiler flag that automates the
generation of these optimised ... data structures, in the future".
This bench runs that flag: profile once with default stores, let the
advisor pick representations from the observed query shapes, and
compare three configurations at the Fig 8 operating point (8 threads,
-noDelta):

* default stores (concurrent skip lists),
* advisor-chosen stores,
* the paper's hand-tuned custom store.

The advisor must recover most of the hand-tuned gain without a human
in the loop — and never change program output.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import (
    array_of_hashsets_store,
    month_means_from_output,
    run_pvwatts,
)
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions
from repro.stats import advise, overrides_from

BASE = ExecOptions(strategy="forkjoin", threads=8, no_delta=frozenset({"PvWatts"}))


@pytest.fixture(scope="module")
def configs(csv_by_month):
    # stage A: profile with defaults (sequential is fine for shapes)
    profiled = run_pvwatts(
        csv_by_month, ExecOptions(no_delta=frozenset({"PvWatts"})), n_readers=8
    )
    recommendations = advise(profiled)
    advised_overrides = overrides_from(recommendations)

    default = run_pvwatts(csv_by_month, BASE, n_readers=8)
    advised = run_pvwatts(
        csv_by_month, BASE.with_(store_overrides=advised_overrides), n_readers=8
    )
    hand = run_pvwatts(
        csv_by_month,
        BASE.with_(store_overrides={"PvWatts": array_of_hashsets_store()}),
        n_readers=8,
    )
    return profiled, recommendations, default, advised, hand


def test_ablation_advisor_report(benchmark, configs, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    profiled, recommendations, default, advised, hand = configs

    # identical answers across all configurations
    ref = month_means_from_output(default.output)
    for r in (advised, hand):
        assert month_means_from_output(r.output) == ref

    by_table = {r.table: r for r in recommendations}
    rows = [
        FigureRow("default stores @8 (wu)", default.virtual_time),
        FigureRow("advisor-chosen stores @8 (wu)", advised.virtual_time),
        FigureRow("hand-tuned custom store @8 (wu)", hand.virtual_time),
        FigureRow("advisor gain over default", default.virtual_time / advised.virtual_time),
        FigureRow("hand-tuned gain over default", default.virtual_time / hand.virtual_time),
        FigureRow(
            "advisor recovers this share of the hand-tuned gain",
            (default.virtual_time - advised.virtual_time)
            / max(1e-9, default.virtual_time - hand.virtual_time),
        ),
    ]
    note = f"advisor picked for PvWatts: {by_table['PvWatts'].kind} — {by_table['PvWatts'].reason}"
    emit(
        "ablation_advisor",
        figure_block(
            "Ablation — §1.4 data-structure advisor vs hand tuning (PvWatts @8)",
            rows,
            note=note,
        ),
    )
    assert by_table["PvWatts"].kind in ("hash-index", "array-of-hashsets")
    assert advised.virtual_time < default.virtual_time           # it helps
    share = (default.virtual_time - advised.virtual_time) / (
        default.virtual_time - hand.virtual_time
    )
    assert share > 0.7                                           # most of the gain
