"""Fig 10 — execution times of the Disruptor PvWatts, threads 1–8,
unsorted (by-month) vs sorted (round-robin) input.

Paper (i7-2600, 4 cores + HT): "the Disruptor version with 8 threads
has a speedup of 3.31 over the sequential PvWatts JStar code" on the
default (by-month) input; on the sorted input "the Disruptor version
with 8 threads has a speedup of 2.52", because sorting "makes both the
sequential and parallel programs faster".

Reproduction notes (EXPERIMENTS.md 'Fig 10'):

* the sequential reference is the engine's sequential PvWatts virtual
  time, identical for both input orders in our cost model;
* the paper's sorted-sequential advantage is a cache-locality effect
  outside the cost model's scope — we adopt it as an exogenous factor
  (``SORTED_SEQ_FACTOR``, derived from the paper's own numbers) and
  report results both with and without it;
* the *mechanisms* are genuinely modelled: by-month input overloads one
  consumer and stalls the producer on the ring (reported), round-robin
  balances the twelve consumers and is faster in absolute time.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import run_pvwatts
from repro.apps.pvwatts_disruptor import run_disruptor_simulated, run_disruptor_threaded
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions

THREADS = (1, 2, 4, 8)
PAPER_SPEEDUP_UNSORTED = 3.31
PAPER_SPEEDUP_SORTED = 2.52
#: paper-derived locality factor: sorted input speeds the sequential
#: JStar program by roughly the ratio of the two reported speedups
#: times the parallel-time ratio
SORTED_SEQ_FACTOR = 0.72


@pytest.fixture(scope="module")
def sweep(csv_by_month, csv_round_robin):
    seq = run_pvwatts(
        csv_by_month, ExecOptions(no_delta=frozenset({"PvWatts"}))
    ).virtual_time
    out = {}
    for label, data in (("unsorted/by-month", csv_by_month), ("sorted/round-robin", csv_round_robin)):
        out[label] = {
            t: run_disruptor_simulated(data, threads=t) for t in THREADS
        }
    return seq, out


def test_fig10_threaded_wall(benchmark, csv_by_month):
    """Wall measurement of the real-threads Disruptor (functional)."""
    means = benchmark.pedantic(
        lambda: run_disruptor_threaded(csv_by_month), rounds=2, warmup_rounds=1
    )
    assert len(means) == 12


def test_fig10_report(benchmark, sweep, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    seq, out = sweep
    rows = []
    for label, results in out.items():
        for t in THREADS:
            rows.append(FigureRow(f"{label} @{t} threads (wu)", results[t].elapsed))
    un8 = out["unsorted/by-month"][8]
    so8 = out["sorted/round-robin"][8]
    speedup_unsorted = seq / un8.elapsed
    speedup_sorted_raw = seq / so8.elapsed
    speedup_sorted_adj = (seq * SORTED_SEQ_FACTOR) / so8.elapsed
    rows += [
        FigureRow("sequential reference (wu)", seq),
        FigureRow("speedup @8, unsorted", speedup_unsorted, paper=PAPER_SPEEDUP_UNSORTED),
        FigureRow("speedup @8, sorted (common ref)", speedup_sorted_raw),
        FigureRow(
            "speedup @8, sorted (paper-derived seq locality factor)",
            speedup_sorted_adj,
            paper=PAPER_SPEEDUP_SORTED,
        ),
        FigureRow("producer stalls, unsorted @8", float(un8.producer_stalls)),
        FigureRow("producer stalls, sorted @8", float(so8.producer_stalls)),
    ]
    emit(
        "fig10_disruptor",
        figure_block(
            "Fig 10 — Disruptor PvWatts execution times (virtual), both input orders",
            rows,
            note="sorted input is faster in absolute time at every thread "
            "count; by-month runs stall the producer on the hot consumer",
        ),
    )
    # shape assertions
    assert 2.3 < speedup_unsorted < 4.5            # paper: 3.31
    for t in THREADS:
        assert (
            out["sorted/round-robin"][t].elapsed
            <= out["unsorted/by-month"][t].elapsed + 1e-6
        )
    assert un8.producer_stalls > so8.producer_stalls
    # monotone in threads
    for label in out:
        elapsed = [out[label][t].elapsed for t in THREADS]
        assert elapsed == sorted(elapsed, reverse=True)
