"""§6.2 — the ``-noDelta PvWatts`` optimisation.

Paper: "the sequential execution time is 23.0 seconds without the
optimisation and 8.44 seconds with the optimisation" — a 2.73×
sequential improvement from routing the 8.76 M PvWatts tuples straight
into Gamma instead of through the Delta tree (§5.1).

Reproduced in both currencies: virtual time (the calibrated model of a
compiled runtime) and wall time (pytest-benchmark).
"""

from __future__ import annotations

from repro.apps.pvwatts import month_means_from_output, run_pvwatts
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions

PAPER_RATIO = 23.0 / 8.44  # 2.73x

PLAIN = ExecOptions(strategy="sequential")
NODELTA = PLAIN.with_(no_delta=frozenset({"PvWatts"}))


def test_nodelta_wall_plain(benchmark, csv_by_month):
    benchmark.pedantic(lambda: run_pvwatts(csv_by_month, PLAIN), rounds=3, warmup_rounds=1)


def test_nodelta_wall_optimised(benchmark, csv_by_month):
    benchmark.pedantic(lambda: run_pvwatts(csv_by_month, NODELTA), rounds=3, warmup_rounds=1)


def test_sec62_report(benchmark, csv_by_month, emit):
    plain = benchmark.pedantic(
        lambda: run_pvwatts(csv_by_month, PLAIN), rounds=2, warmup_rounds=1
    )
    opt = run_pvwatts(csv_by_month, NODELTA)
    # identical answers
    assert month_means_from_output(plain.output) == month_means_from_output(opt.output)
    ratio_v = plain.virtual_time / opt.virtual_time
    rows = [
        FigureRow("plain virtual time (wu)", plain.virtual_time),
        FigureRow("-noDelta virtual time (wu)", opt.virtual_time),
        FigureRow("virtual speedup", ratio_v, paper=PAPER_RATIO),
        FigureRow("plain wall (s)", plain.wall_time),
        FigureRow("-noDelta wall (s)", opt.wall_time),
        FigureRow("wall speedup", plain.wall_time / max(opt.wall_time, 1e-9), paper=PAPER_RATIO),
        FigureRow(
            "delta inserts avoided",
            plain.stats.tables["PvWatts"].delta_inserts
            - opt.stats.tables["PvWatts"].delta_inserts,
        ),
    ]
    emit(
        "sec62_nodelta",
        figure_block(
            "§6.2 — -noDelta PvWatts: 23.0 s -> 8.44 s in the paper (2.73x)",
            rows,
            note="mechanism: 8 760 PvWatts tuples skip the Delta tree entirely",
        ),
    )
    assert ratio_v > 1.3
    assert opt.stats.tables["PvWatts"].delta_bypass == 8760
