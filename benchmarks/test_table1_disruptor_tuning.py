"""Table 1 — Disruptor options used for PvWatts, regenerated as the
tuning sweep that selected them.

Paper: "Table 1 shows the Disruptor settings and alternatives that we
used while tuning the Disruptor version of the PvWatts program.  The
best results with a single producer and 12 consumers were with the
BlockingWaitStrategy for the consumers, a ring buffer of 1024 elements,
and a producer batch size of 256."

The sweep varies each Table 1 row around the chosen configuration on
the virtual-time pipeline (8 cores, by-month input) and asserts the
paper's choice is (near-)optimal in the model — i.e. Table 1 is
*derivable*, not just quotable.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts_disruptor import DisruptorConfig, run_disruptor_simulated
from repro.bench import FigureRow, figure_block
from repro.disruptor import (
    BlockingWaitStrategy,
    BusySpinWaitStrategy,
    SleepingWaitStrategy,
    YieldingWaitStrategy,
)

CORES = 8

WAITS = {
    "BlockingWaitStrategy (paper's pick)": BlockingWaitStrategy,
    "BusySpinWaitStrategy": BusySpinWaitStrategy,
    "YieldingWaitStrategy": YieldingWaitStrategy,
    "SleepingWaitStrategy": SleepingWaitStrategy,
}
RING_SIZES = (64, 256, 1024, 4096)
BATCHES = (1, 16, 256, 1024)
CONSUMER_COUNTS = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def sweep(csv_by_month):
    def run(**kw):
        cfg = DisruptorConfig(**kw)
        return run_disruptor_simulated(csv_by_month, threads=CORES, config=cfg).elapsed

    waits = {label: run(wait_strategy_factory=w) for label, w in WAITS.items()}
    rings = {r: run(ring_size=r) for r in RING_SIZES}
    batches = {b: run(batch=b) for b in BATCHES}
    consumers = {c: run(n_consumers=c) for c in CONSUMER_COUNTS}
    return waits, rings, batches, consumers


def test_table1_paper_config_wall(benchmark, csv_by_month):
    benchmark.pedantic(
        lambda: run_disruptor_simulated(csv_by_month, threads=CORES),
        rounds=3,
        warmup_rounds=1,
    )


def test_table1_report(benchmark, sweep, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    waits, rings, batches, consumers = sweep
    rows = (
        [FigureRow(f"wait = {label}", v, unit="wu") for label, v in waits.items()]
        + [FigureRow(f"ring size = {r}", v, unit="wu") for r, v in rings.items()]
        + [FigureRow(f"producer batch = {b}", v, unit="wu") for b, v in batches.items()]
        + [FigureRow(f"consumers = {c}", v, unit="wu") for c, v in consumers.items()]
    )
    emit(
        "table1_disruptor_tuning",
        figure_block(
            "Table 1 — Disruptor tuning sweep (8 cores, by-month input); "
            "paper's pick: Blocking wait, ring 1024, batch 256, 12 consumers",
            rows,
            note="elapsed virtual time; lower is better; the paper's row "
            "should be at or near each sweep's minimum",
        ),
    )
    # Blocking is the best wait strategy when 13 actors share 8 cores
    # (spinning strategies burn cores that real work needs)
    assert waits["BlockingWaitStrategy (paper's pick)"] == min(waits.values())
    # undersized rings hurt badly; improvement is monotone up to the
    # paper's 1024.  (The paper found 1024 strictly optimal — larger
    # rings lose to cache footprint, a physical effect outside the
    # virtual-time model; documented in EXPERIMENTS.md.)
    assert rings[64] > rings[256] > rings[1024]
    # batch 256 within 2% of the best batch, and better than batch 1
    assert batches[256] <= min(batches.values()) * 1.02
    assert batches[256] < batches[1]
    # 16 consumers oversubscribe 8 cores harder than the paper's 12
    assert consumers[12] < consumers[16]
