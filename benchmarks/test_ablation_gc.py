"""Ablation — the GC-pressure model (§6.2's diagnosis).

Paper: "Given that this program inserts more than 8 million PvWatts
tuples that cannot be garbage collected into the Gamma database and
that we have observed up to 60 % of the elapsed time being spent in
the garbage collector, it is clear that garbage collection is at least
partially responsible" [for PvWatts's sub-linear speedup].

The ablation removes the GC model (``NO_GC``) and re-measures the
Fig 8 point: speedup improves and the GC share of elapsed time drops to
zero — i.e. the model attributes to garbage collection exactly the kind
of loss the paper blames on it.  A second arm keeps GC but removes the
*retained heap* by pruning PvWatts tuples with a lifetime hint after
aggregation would be unsound — so instead it uses the native-array
analogy: the custom store's small object count already lowers pressure;
we quantify that too.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import array_of_hashsets_store, run_pvwatts
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions
from repro.simcore.gc import NO_GC, GcModel

BASE = ExecOptions(
    strategy="forkjoin",
    threads=8,
    no_delta=frozenset({"PvWatts"}),
    store_overrides={"PvWatts": array_of_hashsets_store()},
)


@pytest.fixture(scope="module")
def runs(csv_by_month):
    def run(opts):
        return run_pvwatts(csv_by_month, opts, n_readers=8)

    with_gc_1 = run(BASE.with_(threads=1))
    with_gc_8 = run(BASE)
    no_gc_1 = run(BASE.with_(threads=1, gc_model=NO_GC))
    no_gc_8 = run(BASE.with_(gc_model=NO_GC))
    heavy_gc_8 = run(BASE.with_(gc_model=GcModel(alloc_cost=1.2)))
    return with_gc_1, with_gc_8, no_gc_1, no_gc_8, heavy_gc_8


def test_ablation_gc_report(benchmark, runs, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    with_gc_1, with_gc_8, no_gc_1, no_gc_8, heavy_gc_8 = runs
    s_with = with_gc_1.virtual_time / with_gc_8.virtual_time
    s_without = no_gc_1.virtual_time / no_gc_8.virtual_time
    gc_share = with_gc_8.report.gc_time / with_gc_8.report.elapsed
    heavy_share = heavy_gc_8.report.gc_time / heavy_gc_8.report.elapsed
    rows = [
        FigureRow("speedup @8, GC model on", s_with),
        FigureRow("speedup @8, GC model off", s_without),
        FigureRow("GC share of elapsed @8 (default model)", gc_share),
        FigureRow("GC share of elapsed @8 (heavy-alloc model)", heavy_share),
    ]
    emit(
        "ablation_gc",
        figure_block(
            "Ablation — GC pressure on PvWatts parallel runs "
            "(§6.2: 'up to 60% of elapsed time in the collector')",
            rows,
            note="removing the GC model recovers speedup; a heavier "
            "allocation model pushes the GC share toward the paper's 60%",
        ),
    )
    assert s_without > s_with          # GC is partially responsible
    assert gc_share > 0.05             # visible at default calibration
    assert heavy_share > gc_share      # and scales with allocation cost
    assert no_gc_8.report.gc_time == 0.0
