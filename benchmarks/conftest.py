"""Shared fixtures/helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (§6) and emits a text block comparing measured numbers with
the paper's, via :func:`emit` — printed to stdout (visible with ``-s``)
and persisted under ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a plain run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.csvio import generate_csv_bytes

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture(scope="session")
def csv_by_month() -> bytes:
    """One synthetic year, chronological order (the paper's 'unsorted')."""
    return generate_csv_bytes(n_years=1, seed=42, order="by-month")


@pytest.fixture(scope="session")
def csv_round_robin() -> bytes:
    """Same records, round-robin months (the paper's 'sorted')."""
    return generate_csv_bytes(n_years=1, seed=42, order="round-robin")
