"""Ablation — the Delta-tree contention knob behind Fig 12.

§8: "We are still investigating why the speedup is not higher for the
Dijkstra shortest path program (it seems to be a problem with the
scalability of our Delta tree data structures)."

The virtual machine makes that hypothesis a tunable: the serialisable
fraction of Delta traffic (``CalibratedCosts.delta_serial_fraction``,
default 0.30 — calibrated once against §6.2).  Sweeping it shows the
Fig 12 plateau is *caused* by that fraction: a perfectly scalable Delta
tree (fraction 0) pushes Dijkstra toward linear speedup, and a worse
one caps it lower — quantitative support for the paper's diagnosis and
a prediction for their future tuning ("continuing to tune the JStar
compiler and runtime to get ... better scalability").
"""

from __future__ import annotations

import pytest

from repro.apps.shortestpath import (
    GraphSpec,
    distances_from_result,
    recommended_options,
    run_shortestpath,
)
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions
from repro.simcore import CalibratedCosts

SPEC = GraphSpec(n_vertices=1200, extra_edges=2400)
FRACTIONS = (0.0, 0.15, 0.30, 0.60)


def _speedup_at_8(fraction: float) -> float:
    calib = CalibratedCosts(delta_serial_fraction=fraction)

    def run(threads: int):
        return run_shortestpath(
            SPEC,
            recommended_options(
                ExecOptions(strategy="forkjoin", threads=threads, calib=calib)
            ),
        )

    r1, r8 = run(1), run(8)
    assert distances_from_result(r1) == distances_from_result(r8)
    return r1.virtual_time / r8.virtual_time


@pytest.fixture(scope="module")
def sweep():
    return {f: _speedup_at_8(f) for f in FRACTIONS}


def test_ablation_delta_contention_report(benchmark, sweep, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = [
        FigureRow(f"delta serial fraction = {f:.2f}: speedup @8", s)
        for f, s in sweep.items()
    ]
    rows.append(
        FigureRow("calibrated default (0.30) reproduces Fig 12's", sweep[0.30], paper=4.0)
    )
    emit(
        "ablation_delta_contention",
        figure_block(
            "Ablation — Delta-tree scalability knob vs Dijkstra speedup @8 "
            "(§8's diagnosis, quantified)",
            rows,
            note="a perfectly scalable Delta tree lifts the plateau; the "
            "calibrated fraction lands on the paper's ~4x",
        ),
    )
    # monotone: worse Delta scalability => lower speedup
    speeds = [sweep[f] for f in FRACTIONS]
    assert all(a >= b - 1e-9 for a, b in zip(speeds, speeds[1:]))
    # removing the contention entirely frees substantial headroom
    assert sweep[0.0] > sweep[0.30] * 1.2
    # the calibrated point stays in the paper's band
    assert 3.0 < sweep[0.30] < 5.5
