"""Machine-readable distributed-runtime benchmark (BENCH_pr10.json).

Measures the v2 multiprocess runtime (worker-to-worker shuffle over the
peer mesh, ref-based step frames, pipelined staging) on the shortest-
path workload across worker counts and both transports, and records

* wall time per (transport, workers) leg,
* **coordinator control-plane bytes** (sum of every worker's
  coordinator-channel send+recv) — the headline number: PR 5 relayed
  the whole shuffle and every routed query through this channel, v2
  moves them to the mesh, so this column collapses to step frames and
  done records,
* peer-mesh bytes and messages (where the shuffle now lives),
* output/table equality against the sequential engine (asserted).

The PR 5 relay runtime was measured on this exact workload before it
was replaced; its numbers are embedded as ``relay_reference`` (raw
bytes/messages are machine-independent; walls are compared through the
sequential wall measured in the same file, which normalises the
machine away).

Methodology matches the other BENCH files: legs run interleaved,
round-robin, minimum wall across rounds after one warmup round, plus
the spin-loop calibration constant for cross-machine gating.

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py --out BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.apps.shortestpath import GraphSpec, build_shortestpath_program
from repro.core import ExecOptions
from repro.dist.procrun import run_sharded

SPEC = GraphSpec(n_vertices=800, extra_edges=1600, max_weight=3)
WORKER_COUNTS = (2, 4, 8, 16)
TRANSPORTS = ("pipe", "tcp")

#: the PR 5 coordinator-relay runtime, measured on this exact workload
#: (GraphSpec(800, 1600, 3), shortestpath, n_gen_tasks=4) immediately
#: before the relay was replaced by the v2 mesh.  Byte and message
#: counts are machine-independent; ``sequential_wall`` anchors the wall
#: ratios to the measuring machine.
RELAY_REFERENCE = {
    "sequential_wall": 0.3851,
    "legs": {
        "2": {"wall": 0.721, "coordinator_bytes": 1121056, "msgs": 9568},
        "4": {"wall": 0.932, "coordinator_bytes": 1512872, "msgs": 14528},
        "8": {"wall": 1.0716, "coordinator_bytes": 1734980, "msgs": 17360},
    },
}


def _run_sequential():
    handles = build_shortestpath_program(SPEC, 4)
    return handles.program.run(ExecOptions())


def _run_dist(transport: str, n_workers: int):
    handles = build_shortestpath_program(SPEC, 4)
    return run_sharded(
        handles.program,
        ExecOptions(strategy="processes", threads=n_workers),
        transport=transport,
    )


def _calibration(n: int = 2_000_000) -> float:
    t0 = time.perf_counter()
    sum(i * i for i in range(n))
    return time.perf_counter() - t0


def run_bench(rounds: int = 2, worker_counts=WORKER_COUNTS) -> dict:
    legs = [(t, w) for t in TRANSPORTS for w in worker_counts]
    walls: dict[tuple[str, int], float] = {leg: float("inf") for leg in legs}
    seq_wall = float("inf")
    results: dict[tuple[str, int], object] = {}
    ref = _run_sequential()  # warmup + reference results
    for leg in legs:
        results[leg] = _run_dist(*leg)
    for _ in range(rounds):
        t0 = time.perf_counter()
        ref = _run_sequential()
        seq_wall = min(seq_wall, time.perf_counter() - t0)
        for leg in legs:
            t0 = time.perf_counter()
            results[leg] = _run_dist(*leg)
            walls[leg] = min(walls[leg], time.perf_counter() - t0)

    entries: dict[str, dict] = {t: {} for t in TRANSPORTS}
    for (transport, w), r in results.items():
        control_bytes = sum(n["bytes_sent"] + n["bytes_recv"] for n in r.nodes)
        control_msgs = sum(n["msgs"] for n in r.nodes)
        peer_bytes = sum(n["peer_bytes_sent"] for n in r.nodes)
        peer_msgs = sum(n["peer_msgs"] for n in r.nodes)
        entries[transport][str(w)] = {
            "wall": round(walls[(transport, w)], 4),
            "wall_vs_sequential": round(walls[(transport, w)] / seq_wall, 3),
            "steps": r.steps,
            "coordinator_bytes": control_bytes,
            "coordinator_msgs": control_msgs,
            "peer_bytes": peer_bytes,
            "peer_msgs": peer_msgs,
            "outputs_equal": ref.output_text() == r.output_text(),
            "table_sizes_equal": ref.table_sizes == r.table_sizes,
        }

    relay = RELAY_REFERENCE
    comparisons = {}
    for w, rleg in relay["legs"].items():
        cur = entries["pipe"].get(w)
        if cur is None:
            continue
        comparisons[w] = {
            "control_bytes_vs_relay": round(
                cur["coordinator_bytes"] / rleg["coordinator_bytes"], 4
            ),
            "control_msgs_vs_relay": round(
                cur["coordinator_msgs"] / rleg["msgs"], 4
            ),
            # both walls anchored to their own machine's sequential wall
            "normalised_makespan_vs_relay": round(
                cur["wall_vs_sequential"]
                / (rleg["wall"] / relay["sequential_wall"]),
                4,
            ),
        }

    return {
        "transports": entries,
        "sequential_wall": round(seq_wall, 4),
        "relay_reference": relay,
        "relay_comparison": comparisons,
        "meta": {
            "bench": "pr10 distributed runtime v2 (mesh shuffle)",
            "calibration_wall": _calibration(),
            "spec": {
                "n_vertices": SPEC.n_vertices,
                "extra_edges": SPEC.extra_edges,
                "max_weight": SPEC.max_weight,
            },
            "worker_counts": list(worker_counts),
            "method": "interleaved, min wall across rounds, 1 warmup round",
            "rounds": rounds,
            "target": (
                "coordinator control bytes < 0.5x the relay's at 8 workers "
                "(the shuffle left the control plane) and "
                "normalised_makespan_vs_relay < 1.0 at >= 8 workers"
            ),
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_pr10.json")
    ap.add_argument("--rounds", type=int, default=2)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="drop the 16-worker legs (CI smoke)",
    )
    args = ap.parse_args(argv)
    counts = tuple(w for w in WORKER_COUNTS if not (args.quick and w > 8))
    bench = run_bench(rounds=args.rounds, worker_counts=counts)
    Path(args.out).write_text(json.dumps(bench, indent=1, sort_keys=True) + "\n")
    for transport in TRANSPORTS:
        for w, e in sorted(bench["transports"][transport].items(), key=lambda x: int(x[0])):
            print(
                f"{transport} x{w}: wall {e['wall']}s "
                f"({e['wall_vs_sequential']}x sequential), control "
                f"{e['coordinator_bytes']} B / {e['coordinator_msgs']} msgs, "
                f"peer {e['peer_bytes']} B / {e['peer_msgs']} msgs, "
                f"equal={e['outputs_equal']}"
            )
    for w, c in sorted(bench["relay_comparison"].items(), key=lambda x: int(x[0])):
        print(
            f"vs relay x{w}: control bytes {c['control_bytes_vs_relay']}x, "
            f"msgs {c['control_msgs_vs_relay']}x, normalised makespan "
            f"{c['normalised_makespan_vs_relay']}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
