"""Ablation — distributed execution hints (§2 stage 3).

The paper's workflow promise, applied to clusters: "whether each set of
tuples should be partitioned, duplicated or shared across the different
cores or computers ... These instructions are separate from the
program" — so alternative distributions are an experiment, not a
rewrite.  This bench runs PvWatts on the simulated cluster with

* a node sweep under the good placement (everything keyed by month —
  the reduce phase is fully local), and
* three placements at 4 nodes: co-partitioned by month, mis-partitioned
  by day (the SumMonth reduce becomes remote), and PvWatts replicated
  (queries local, every insert broadcast).

Assertions encode the qualitative cluster truths: compute shrinks with
nodes while communication grows; co-partitioning beats
mis-partitioning; replication trades insert traffic for query locality.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import build_pvwatts_program, month_means_from_output
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions
from repro.dist import Partitioned, Replicated, run_distributed

GOOD = {
    "PvWattsRequest": Replicated(),
    "ReadRegion": Partitioned("start"),
    "PvWatts": Partitioned("month"),
    "SumMonth": Partitioned("month"),
}
MISALIGNED = {**GOOD, "PvWatts": Partitioned("day")}
REPLICATED = {**GOOD, "PvWatts": Replicated()}


@pytest.fixture(scope="module")
def runs(csv_by_month):
    def build():
        return build_pvwatts_program({"f.csv": csv_by_month}, "f.csv", n_readers=8)

    ref = month_means_from_output(build().program.run(ExecOptions()).output)

    sweep = {}
    for nodes in (1, 2, 4, 8):
        r = run_distributed(build().program, n_nodes=nodes, placements=GOOD)
        assert month_means_from_output(sorted(r.output)) == ref
        sweep[nodes] = r

    mis = run_distributed(build().program, n_nodes=4, placements=MISALIGNED)
    repl = run_distributed(build().program, n_nodes=4, placements=REPLICATED)
    for r in (mis, repl):
        assert month_means_from_output(sorted(r.output)) == ref
    return sweep, mis, repl


def test_ablation_distribution_report(benchmark, runs, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    sweep, mis, repl = runs
    rows = []
    for nodes, r in sweep.items():
        rows.append(
            FigureRow(
                f"{nodes} node(s): elapsed (wu) [compute/comm]",
                r.elapsed,
            )
        )
        rows.append(FigureRow(f"  {nodes}-node compute", r.compute_time))
        rows.append(FigureRow(f"  {nodes}-node comm", r.comm_time))
    good4 = sweep[4]
    rows += [
        FigureRow("4 nodes, month-partitioned: remote queries", float(good4.remote_queries)),
        FigureRow("4 nodes, day-partitioned: remote queries", float(mis.remote_queries)),
        FigureRow("4 nodes, day-partitioned elapsed (wu)", mis.elapsed),
        FigureRow("4 nodes, PvWatts replicated: tuples moved", float(repl.tuples_moved)),
        FigureRow("4 nodes, PvWatts replicated elapsed (wu)", repl.elapsed),
    ]
    emit(
        "ablation_distribution",
        figure_block(
            "Ablation — §2 stage-3 distribution hints on PvWatts (simulated cluster)",
            rows,
            note="placements changed as data only; outputs byte-identical; "
            "co-partitioning by month keeps the reduce phase local",
        ),
    )
    # compute shrinks with nodes; communication appears
    assert sweep[4].compute_time < sweep[1].compute_time
    assert sweep[8].compute_time < sweep[2].compute_time
    assert sweep[4].comm_time > sweep[1].comm_time
    # co-partitioning keeps the reduce local; day-partitioning doesn't
    assert good4.remote_queries == 0
    assert mis.remote_queries > 0
    assert good4.elapsed < mis.elapsed
    # replication multiplies insert traffic
    assert repl.tuples_moved > good4.tuples_moved * 2
