"""Fig 12 — Dijkstra shortest-path speedup vs fork/join pool size.

Paper (dual-CPU Xeon W5590, 8 cores): "This has mediocre speedup, with
a maximum speedup of only 4.0 (8 cores).  This seems to be because the
inner loop of the program puts several million Estimate tuples through
the Delta tree, which is still not sufficiently scalable to cope with a
large number of threads contending for the same branches of the tree."

Scaled graph: |V| = 2 000, |E| ≈ 8 000 directed (tree + extras, both
directions), §6.5's optimisation set (24 parallel graph-gen tasks,
-noDelta Edge/Vertex, -noGamma Estimate).  The bench also reports how
much of the parallel-run slowdown the machine attributes to Delta-tree
contention — the paper's diagnosis, measurable here.
"""

from __future__ import annotations

import pytest

from repro.apps.baselines.shortestpath_base import dijkstra_baseline
from repro.apps.shortestpath import (
    GraphSpec,
    distances_from_result,
    make_graph,
    recommended_options,
    run_shortestpath,
)
from repro.bench import speedup_series
from repro.core import ExecOptions

SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)
#: smaller instance for the index-mode cost note (one-off sequential runs)
SPEC_SMALL = GraphSpec(n_vertices=500, extra_edges=1000)
THREADS = (1, 2, 4, 6, 8)
PAPER_MAX = 4.0


@pytest.fixture(scope="module")
def series():
    truth = dijkstra_baseline(make_graph(SPEC), SPEC.n_vertices)
    seq = run_shortestpath(SPEC)
    assert distances_from_result(seq) == truth

    contention = {}

    def run(threads: int) -> float:
        r = run_shortestpath(
            SPEC, recommended_options(ExecOptions(strategy="forkjoin", threads=threads))
        )
        assert distances_from_result(r) == truth
        contention[threads] = r.report.contention / max(r.report.elapsed, 1e-9)
        return r.virtual_time

    s = speedup_series("dijkstra |V|=2000", THREADS, run, sequential=seq.virtual_time)
    return s, contention


def test_fig12_wall_8_threads(benchmark):
    benchmark.pedantic(
        lambda: run_shortestpath(
            SPEC, recommended_options(ExecOptions(strategy="forkjoin", threads=8))
        ),
        rounds=2,
        warmup_rounds=1,
    )


def test_fig12_report(benchmark, series, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    s, contention = series
    rel = dict(zip(s.threads, s.relative))

    # index-mode note: §6.5's first hand optimisation is the hash store
    # on Edge keyed by src; on *default* stores, index_mode="auto"
    # derives the same access path from the rule's query shape alone
    off = run_shortestpath(SPEC_SMALL, ExecOptions(index_mode="off"))
    auto = run_shortestpath(SPEC_SMALL, ExecOptions(index_mode="auto"))
    assert auto.output_text() == off.output_text()
    sel_off = off.meter.cost_by_prefix("gamma_lookup:")
    sel_auto = auto.meter.cost_by_prefix("gamma_lookup:") + auto.meter.cost_by_prefix(
        "gamma_ixlookup:"
    )
    assert auto.meter.cost_by_prefix("gamma_ixlookup:Edge") > 0
    assert sel_auto < sel_off

    emit(
        "fig12_dijkstra_speedup",
        "### Fig 12 — Dijkstra speedup vs pool size (paper: mediocre, max 4.0 at 8 cores)\n"
        + s.format()
        + f"\n\nmax relative speedup: {max(rel.values()):.2f} (paper 4.0)"
        + f"\nDelta-tree contention share of elapsed at 8 threads: {contention[8]:.0%}"
        + "\n(the paper's diagnosis: Estimate tuples contending in the Delta tree)"
        + f"\nauto-index on default stores (|V|={SPEC_SMALL.n_vertices}): "
        + f"select cost {sel_off:.1f} -> {sel_auto:.1f} "
        + "(planner derives §6.5's Edge hash(src) by itself)",
    )
    # mediocre: max speedup lands in the paper's band, nowhere near linear
    assert 3.0 < max(rel.values()) < 5.5
    assert rel[8] < 8 * 0.7
    # the machine attributes a visible share of time to Delta contention
    assert contention[8] > 0.10
    # the curve bends early: marginal gain 4 -> 8 threads well below linear
    assert (rel[8] - rel[4]) / 4 < 0.5
