"""Machine-readable fast-path benchmark (BENCH_pr3.json).

Measures wall and virtual time for the example apps under each
execution strategy, in the zero-overhead configuration (compiled plan
cache + ``metering="off"``), plus the legacy sequential configuration
(``plan_cache=False``, metering on) the speedup is quoted against.

Methodology: configurations are run *interleaved*, round-robin, and
the reported wall time is the minimum across rounds — the measure
least sensitive to the machine-noise spikes that dominate sub-second
runs.  A fixed pure-Python spin loop is timed alongside as a
calibration constant so the perf-smoke check can normalise wall times
across machines (see ``check_perf_smoke.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --out BENCH_pr3.json
    PYTHONPATH=src python benchmarks/bench_fastpath.py --pre-pr-src /path/to/old/src

``--pre-pr-src`` additionally measures the pre-PR tree's sequential
wall times (via subprocesses with a different PYTHONPATH) and records
the cross-version speedups — the headline numbers of this PR.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import time

from repro.apps.pvwatts import array_of_hashsets_store, run_pvwatts
from repro.apps.shortestpath import (
    GraphSpec,
    recommended_options,
    run_shortestpath,
)
from repro.core import ExecOptions
from repro.csvio import generate_csv_bytes

SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)
CSV = generate_csv_bytes(n_years=1, seed=42, order="by-month")

#: strategy label -> ExecOptions kwargs merged into each app's base
STRATEGIES = {
    "sequential": dict(strategy="sequential"),
    "forkjoin-4": dict(strategy="forkjoin", threads=4),
    "threads-2": dict(strategy="threads", threads=2),
    "chaos": dict(strategy="chaos", chaos_seed=0),
}


def _dijkstra(extra: dict) -> object:
    return run_shortestpath(SPEC, recommended_options(ExecOptions(**extra)))


def _pvwatts(extra: dict, concurrent: bool) -> object:
    return run_pvwatts(
        CSV,
        ExecOptions(
            no_delta=frozenset({"PvWatts"}),
            store_overrides={"PvWatts": array_of_hashsets_store(concurrent=concurrent)},
            **extra,
        ),
        n_readers=8,
    )


def _apps() -> dict:
    """app name -> callable(extra_options_kwargs, parallel) -> result"""
    return {
        "dijkstra": lambda extra, parallel: _dijkstra(extra),
        "pvwatts": lambda extra, parallel: _pvwatts(extra, concurrent=parallel),
    }


def _fingerprint(result) -> str:
    text = result.output_text()
    return hashlib.sha1(text.encode()).hexdigest()


def _calibration(n: int = 2_000_000) -> float:
    t0 = time.perf_counter()
    sum(i * i for i in range(n))
    return time.perf_counter() - t0


_PRE_PR_CHILD = r"""
import json, time, hashlib
from repro.apps.shortestpath import GraphSpec, run_shortestpath, recommended_options
from repro.apps.pvwatts import run_pvwatts, array_of_hashsets_store
from repro.csvio import generate_csv_bytes
from repro.core import ExecOptions
SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)
CSV = generate_csv_bytes(n_years=1, seed=42, order="by-month")
def dij():
    return run_shortestpath(SPEC, recommended_options(ExecOptions()))
def pvw():
    return run_pvwatts(CSV, ExecOptions(
        no_delta=frozenset({"PvWatts"}),
        store_overrides={"PvWatts": array_of_hashsets_store(concurrent=False)},
    ), n_readers=8)
out = {}
for name, fn in [("dijkstra", dij), ("pvwatts", pvw)]:
    fn()  # warmup
    best = 1e9
    r = None
    for _ in range(3):
        t0 = time.perf_counter()
        r = fn()
        best = min(best, time.perf_counter() - t0)
    out[name] = {"wall": best,
                 "fingerprint": hashlib.sha1(r.output_text().encode()).hexdigest()}
print(json.dumps(out))
"""


def _measure_pre_pr(src: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _PRE_PR_CHILD],
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_bench(rounds: int = 3, pre_pr_src: str | None = None) -> dict:
    apps = _apps()
    # config list: (app, strategy label, mode, options kwargs, parallel)
    configs = []
    for app in apps:
        configs.append((app, "sequential", "legacy", dict(plan_cache=False), False))
        for label, strat_kw in STRATEGIES.items():
            parallel = label != "sequential"
            kw = dict(strat_kw, metering="off")
            configs.append((app, label, "fast", kw, parallel))

    walls: dict[tuple, float] = {c[:3]: float("inf") for c in configs}
    virtuals: dict[tuple, float] = {}
    prints: dict[tuple, str] = {}
    calib = float("inf")
    for _ in range(rounds + 1):  # first round is warmup
        warmup = not virtuals
        calib = min(calib, _calibration())
        for app, label, mode, kw, parallel in configs:
            t0 = time.perf_counter()
            r = apps[app](kw, parallel)
            wall = time.perf_counter() - t0
            key = (app, label, mode)
            if not warmup:
                walls[key] = min(walls[key], wall)
            virtuals[key] = r.virtual_time
            prints[key] = _fingerprint(r)

    out: dict = {
        "meta": {
            "bench": "pr3 fast path",
            "rounds": rounds,
            "method": "interleaved, min wall across rounds, 1 warmup round",
            "calibration_wall": calib,
            "dijkstra_spec": {"n_vertices": SPEC.n_vertices, "extra_edges": SPEC.extra_edges},
            "pvwatts_input": "synthetic 1 year, seed 42, 8 readers",
        },
        "apps": {},
    }
    for app in apps:
        entry: dict = {}
        for label in STRATEGIES:
            key = (app, label, "fast")
            entry[label] = {
                "fast_wall": round(walls[key], 4),
                "fast_virtual": round(virtuals[key], 4),
            }
        lkey = (app, "sequential", "legacy")
        fkey = (app, "sequential", "fast")
        entry["sequential"].update(
            legacy_wall=round(walls[lkey], 4),
            legacy_virtual=round(virtuals[lkey], 4),
            speedup_fast_vs_legacy=round(walls[lkey] / walls[fkey], 3),
            outputs_equal=prints[lkey] == prints[fkey],
        )
        out["apps"][app] = entry

    if pre_pr_src:
        pre = _measure_pre_pr(pre_pr_src)
        out["meta"]["pre_pr_src"] = pre_pr_src
        for app, rec in pre.items():
            fkey = (app, "sequential", "fast")
            out["apps"][app]["sequential"].update(
                pre_pr_wall=round(rec["wall"], 4),
                speedup_fast_vs_pre_pr=round(rec["wall"] / walls[fkey], 3),
                outputs_equal_pre_pr=rec["fingerprint"] == prints[fkey],
            )
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_pr3.json")
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--pre-pr-src", default=None,
                    help="PYTHONPATH of a pre-PR checkout to compare against")
    args = ap.parse_args(argv)
    result = run_bench(rounds=args.rounds, pre_pr_src=args.pre_pr_src)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for app, entry in result["apps"].items():
        seq = entry["sequential"]
        line = (
            f"{app}: fast {seq['fast_wall']:.3f}s vs legacy {seq['legacy_wall']:.3f}s "
            f"({seq['speedup_fast_vs_legacy']:.2f}x, outputs equal: {seq['outputs_equal']})"
        )
        if "pre_pr_wall" in seq:
            line += (
                f"; vs pre-PR {seq['pre_pr_wall']:.3f}s "
                f"({seq['speedup_fast_vs_pre_pr']:.2f}x)"
            )
        print(line)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
