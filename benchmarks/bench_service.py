"""Multi-tenant session-service benchmark (BENCH_pr7.json).

Drives hundreds of concurrent tenant sessions through the asyncio
frontend over real sockets — one connection per tenant, every tenant
opened before any feeds — and reports client-observed feed/settle
latency percentiles plus sustained end-to-end throughput (admitted
tuples per wall-clock second, measured from the first feed to the last
close).

The workload is the serving shape: a stream of readings, a threshold
rule, causally ordered log output.  Tenants share a pool of distinct
scripts (the engine work is identical either way; the pool keeps the
event-generation cost flat), fed in causally aligned tick batches with
a settle every other batch.

A fixed pure-Python spin loop is timed alongside as a calibration
constant so ``check_perf_smoke.py`` can normalise the latency gate
across machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_pr7.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick --out /tmp/b.json

The default scale is 200 tenants x 5000 tuples = 1M fed tuples;
``--quick`` drops to 12 x 400 for CI smoke runs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import statistics
import time

from repro.core import Program
from repro.serve import (
    ProgramRegistry,
    ServiceClient,
    ServiceConfig,
    SessionService,
)

HOT = 900
N_SENSORS = 8
TICKS_PER_BATCH = 4
SETTLE_EVERY = 2
DISTINCT_SCRIPTS = 10


def telemetry_factory() -> Program:
    p = Program("telemetry")
    Reading = p.table(
        "Reading",
        "int tick, int sensor -> int value",
        orderby=("Int", "seq tick", "Reading", "par sensor"),
    )
    Alert = p.table(
        "Alert",
        "int tick, int sensor -> int value",
        orderby=("Int", "seq tick", "Alert", "par sensor"),
    )
    Println = p.table(
        "Println",
        "int tick, int sensor -> str text",
        orderby=("Int", "seq tick", "Out", "seq sensor"),
    )
    p.order("Int", "Out")
    p.order("Reading", "Alert", "Out")

    @p.foreach(Reading)
    def threshold(ctx, r):
        if r.value >= HOT:
            ctx.put(Alert.new(r.tick, r.sensor, r.value))

    @p.foreach(Alert)
    def report(ctx, a):
        ctx.put(Println.new(a.tick, a.sensor,
                            f"tick {a.tick}: sensor {a.sensor} hot at {a.value}"))

    @p.foreach(Println, unsafe=True)
    def emit(ctx, line):
        ctx.println(line.text)

    return p


def script(seed: int, n_tuples: int) -> list[list[list]]:
    """Wire-triple batches, one batch per TICKS_PER_BATCH whole ticks."""
    batches: list[list[list]] = []
    cur: list[list] = []
    tick = 0
    mixer = seed * 2654435761 % 2**31
    for i in range(n_tuples):
        sensor = i % N_SENSORS
        if sensor == 0 and i:
            tick += 1
            if tick % TICKS_PER_BATCH == 0:
                batches.append(cur)
                cur = []
        cur.append(["+", "Reading", [tick, sensor, (i * 1103515245 + mixer) % 1000]])
    if cur:
        batches.append(cur)
    return batches


def _calibration(n: int = 2_000_000) -> float:
    t0 = time.perf_counter()
    sum(i * i for i in range(n))
    return time.perf_counter() - t0


def _percentiles(samples_ms: list[float]) -> dict:
    ordered = sorted(samples_ms)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, max(0, round(q * (n - 1))))]

    return {
        "count": n,
        "p50": round(pct(0.50), 3),
        "p90": round(pct(0.90), 3),
        "p99": round(pct(0.99), 3),
        "max": round(ordered[-1], 3),
        "mean": round(statistics.fmean(ordered), 3),
    }


async def _bench(n_tenants: int, tuples_per_tenant: int, workers: int) -> dict:
    registry = ProgramRegistry()
    registry.register("telemetry", telemetry_factory)
    scripts = {
        seed: script(seed, tuples_per_tenant)
        for seed in range(min(DISTINCT_SCRIPTS, n_tenants))
    }

    service = SessionService(
        registry,
        ServiceConfig(
            max_tenants=n_tenants + 8,
            executor_workers=workers,
            checkpoint_every_settles=0,
        ),
    )
    await service.start()

    feed_ms: list[float] = []
    settle_ms: list[float] = []
    gate_remaining = n_tenants
    gate = asyncio.Event()
    fed_total = 0

    async def drive(i: int) -> None:
        nonlocal gate_remaining, fed_total
        batches = scripts[i % len(scripts)]
        tenant = f"tenant-{i:05d}"
        async with await ServiceClient.connect("127.0.0.1", service.port) as c:
            await c.open(tenant, "telemetry")
            gate_remaining -= 1
            if gate_remaining == 0:
                gate.set()
            await gate.wait()
            for j, batch in enumerate(batches):
                t0 = time.perf_counter()
                fed = await c.feed(tenant, batch, retries=8, backoff=0.05)
                feed_ms.append((time.perf_counter() - t0) * 1e3)
                fed_total += fed["admitted"]
                if (j + 1) % SETTLE_EVERY == 0:
                    t0 = time.perf_counter()
                    await c.settle(tenant)
                    settle_ms.append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            await c.settle(tenant)
            settle_ms.append((time.perf_counter() - t0) * 1e3)
            await c.close(tenant)

    t_start = time.perf_counter()
    try:
        await asyncio.gather(*(drive(i) for i in range(n_tenants)))
    finally:
        await service.stop(checkpoint=False)
    wall = time.perf_counter() - t_start

    assert fed_total == sum(
        sum(len(b) for b in scripts[i % len(scripts)]) for i in range(n_tenants)
    ), "lost or duplicated tuples during the benchmark"

    return {
        "tenants": n_tenants,
        "tuples_per_tenant": tuples_per_tenant,
        "total_tuples": fed_total,
        "distinct_scripts": len(scripts),
        "executor_workers": workers,
        "settle_every_batches": SETTLE_EVERY,
        "wall": round(wall, 3),
        "tuples_per_sec": round(fed_total / wall, 1),
        "feed_ms": _percentiles(feed_ms),
        "settle_ms": _percentiles(settle_ms),
        "service_stats": service.stats.as_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_pr7.json")
    ap.add_argument("--tenants", type=int, default=200)
    ap.add_argument("--tuples", type=int, default=5000,
                    help="tuples fed per tenant")
    ap.add_argument("--workers", type=int, default=8)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke scale: 12 tenants x 400 tuples")
    args = ap.parse_args(argv)
    if args.quick:
        args.tenants, args.tuples = 12, 400

    calibration = min(_calibration() for _ in range(3))
    result = asyncio.run(_bench(args.tenants, args.tuples, args.workers))

    doc = {
        "meta": {
            "benchmark": "service",
            "created_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calibration_wall": round(calibration, 4),
            "quick": args.quick,
        },
        "service": result,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"{result['tenants']} tenants, {result['total_tuples']} tuples in "
        f"{result['wall']}s  ->  {result['tuples_per_sec']} tuples/s, "
        f"settle p50 {result['settle_ms']['p50']}ms "
        f"p99 {result['settle_ms']['p99']}ms  ({args.out})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
