"""Ablation — lifetime hints (§5 step 4) on a long event stream.

Paper: "If program analysis makes it possible to determine that this
tuple can never participate in future queries, then it can be removed
from the Gamma database and garbage collected.  Currently, this
program analysis is not automated, so we simply retain all tuples, or
use manual lifetime hints from the user to determine when tuples can
be discarded."

The sensor-monitoring program only ever queries the previous tick, so
a ``RetentionHint("tick", 2)`` is a sound manual hint.  The ablation
measures what the hint buys on a long stream: bounded heap, lower GC
tax, better parallel efficiency — identical output.
"""

from __future__ import annotations

import pytest

from repro.apps.sensors import run_sensors
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions
from repro.simcore.gc import GcModel

TICKS = 150
SENSORS = 8
# the GC model's half-full point is calibrated for the paper-scale
# heaps (hundreds of thousands of tuples); this stream is scaled down
# ~100x, so the model is scaled with it
OPTS = ExecOptions(strategy="forkjoin", threads=8, gc_model=GcModel(half_full=600.0))


@pytest.fixture(scope="module")
def runs():
    plain = run_sensors(TICKS, SENSORS, OPTS)
    bounded = run_sensors(TICKS, SENSORS, OPTS, bounded_memory=True)
    assert bounded.output == plain.output  # semantics untouched
    return plain, bounded


def test_ablation_retention_wall(benchmark):
    benchmark.pedantic(
        lambda: run_sensors(TICKS, SENSORS, OPTS, bounded_memory=True),
        rounds=2,
        warmup_rounds=1,
    )


def test_ablation_retention_report(benchmark, runs, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    plain, bounded = runs
    rows = [
        FigureRow("retained Reading tuples, no hint", float(plain.table_sizes["Reading"])),
        FigureRow("retained Reading tuples, hint keep-2", float(bounded.table_sizes["Reading"])),
        FigureRow("tuples discarded by the hint", float(bounded.stats.tables["Reading"].gamma_discarded)),
        FigureRow("GC time, no hint (wu)", plain.report.gc_time),
        FigureRow("GC time, hint (wu)", bounded.report.gc_time),
        FigureRow("elapsed, no hint (wu)", plain.virtual_time),
        FigureRow("elapsed, hint (wu)", bounded.virtual_time),
    ]
    emit(
        "ablation_retention",
        figure_block(
            "Ablation — §5 step 4 lifetime hints on a 150-tick event stream",
            rows,
            note="output is byte-identical; the hint bounds the heap at two "
            "ticks and removes most of the GC tax",
        ),
    )
    assert bounded.table_sizes["Reading"] == 2 * SENSORS
    assert plain.table_sizes["Reading"] == TICKS * SENSORS
    assert bounded.report.gc_time < plain.report.gc_time * 0.8
    assert bounded.virtual_time < plain.virtual_time
