"""Machine-readable codegen-execution benchmark (BENCH_pr9.json).

Measures sequential wall time for the two fig-workload apps (fig12
Dijkstra, fig08 PvWatts) in the zero-overhead scalar configuration
(compiled plans + ``metering="off"``, exactly the ``fast_wall`` legs of
``bench_fastpath.py``), in the columnar batch tier, and in the codegen
tier (``execution="codegen"`` on the same configuration), and records
the speedups.  For cross-machine context it also normalises the codegen
walls against the committed PR 3 fast walls via each file's spin-loop
calibration constant.

Methodology matches ``bench_fastpath.py``/``bench_columnar.py``: legs
run interleaved, round-robin, reporting the minimum wall across rounds
after one warmup round.  Result equality between the legs (output
fingerprint and table sizes) is asserted and recorded; the byte-
identical guarantee is covered separately by
``tests/integration/test_codegen_differential.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_codegen.py --out BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path

from repro.apps.pvwatts import array_of_hashsets_store, run_pvwatts
from repro.apps.shortestpath import (
    GraphSpec,
    recommended_options,
    run_shortestpath,
)
from repro.core import ExecOptions
from repro.csvio import generate_csv_bytes

SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)
CSV = generate_csv_bytes(n_years=1, seed=42, order="by-month")

#: the PR 3 fast-path baseline this PR's speedup target is quoted against
PR3_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr3.baseline.json"

EXECUTIONS = ("scalar", "columnar", "codegen")


def _dijkstra(execution: str):
    return run_shortestpath(
        SPEC,
        recommended_options(ExecOptions(metering="off", execution=execution)),
    )


def _pvwatts(execution: str):
    return run_pvwatts(
        CSV,
        ExecOptions(
            no_delta=frozenset({"PvWatts"}),
            store_overrides={
                "PvWatts": array_of_hashsets_store(concurrent=False)
            },
            metering="off",
            execution=execution,
        ),
        n_readers=8,
    )


APPS = {"dijkstra": _dijkstra, "pvwatts": _pvwatts}


def _fingerprint(result) -> str:
    return hashlib.sha1(result.output_text().encode()).hexdigest()


def _calibration(n: int = 2_000_000) -> float:
    t0 = time.perf_counter()
    sum(i * i for i in range(n))
    return time.perf_counter() - t0


def run_bench(rounds: int = 3) -> dict:
    legs = [(app, execution) for app in APPS for execution in EXECUTIONS]
    walls: dict[tuple[str, str], float] = {leg: float("inf") for leg in legs}
    results: dict[tuple[str, str], object] = {}
    for leg in legs:  # warmup round
        app, execution = leg
        results[leg] = APPS[app](execution)
    for _ in range(rounds):
        for leg in legs:
            app, execution = leg
            t0 = time.perf_counter()
            r = APPS[app](execution)
            walls[leg] = min(walls[leg], time.perf_counter() - t0)
            results[leg] = r

    pr3 = json.loads(PR3_BASELINE.read_text()) if PR3_BASELINE.exists() else None
    calibration = _calibration()
    apps: dict[str, dict] = {}
    for app in APPS:
        scalar = results[(app, "scalar")]
        codegen = results[(app, "codegen")]
        entry = {
            "scalar_wall": round(walls[(app, "scalar")], 4),
            "columnar_wall": round(walls[(app, "columnar")], 4),
            "codegen_wall": round(walls[(app, "codegen")], 4),
            "speedup_codegen_vs_scalar": round(
                walls[(app, "scalar")] / walls[(app, "codegen")], 3
            ),
            "speedup_codegen_vs_columnar": round(
                walls[(app, "columnar")] / walls[(app, "codegen")], 3
            ),
            "outputs_equal": _fingerprint(scalar) == _fingerprint(codegen),
            "table_sizes_equal": scalar.table_sizes == codegen.table_sizes,
        }
        if pr3 is not None:
            pr3_fast = pr3["apps"][app]["sequential"]["fast_wall"]
            pr3_cal = pr3["meta"]["calibration_wall"]
            # normalise both walls to calibration units, so the recorded
            # cross-version speedup measures the engine, not the machine
            entry["pr3_fast_wall"] = pr3_fast
            entry["speedup_vs_pr3_fast_normalized"] = round(
                (pr3_fast / pr3_cal) / (walls[(app, "codegen")] / calibration),
                3,
            )
        apps[app] = entry

    return {
        "apps": apps,
        "meta": {
            "bench": "pr9 codegen execution",
            "calibration_wall": calibration,
            "dijkstra_spec": {
                "n_vertices": SPEC.n_vertices,
                "extra_edges": SPEC.extra_edges,
            },
            "pvwatts_input": "synthetic 1 year, seed 42, 8 readers",
            "method": "interleaved, min wall across rounds, 1 warmup round",
            "rounds": rounds,
            "target": (
                "codegen >= 1.8x over the scalar fast path same-machine on "
                "dijkstra or pvwatts; speedup_vs_pr3_fast_normalized is "
                "calibration-normalised against the committed PR 3 walls "
                "(2x-vs-pr3 shortfalls are noted honestly in meta.notes)"
            ),
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_pr9.json")
    ap.add_argument("--rounds", type=int, default=3)
    args = ap.parse_args(argv)
    bench = run_bench(rounds=args.rounds)
    # the honest-shortfall note: the acceptance target is 1.8x over
    # same-machine scalar; the stretch target is 2x over the committed
    # PR 3 fast walls after calibration normalisation
    notes = []
    for app, entry in bench["apps"].items():
        norm = entry.get("speedup_vs_pr3_fast_normalized")
        if norm is not None and norm < 2.0:
            notes.append(
                f"{app}: normalized speedup vs BENCH_pr3 fast_wall is "
                f"{norm}x, short of the 2x stretch target "
                f"(same-machine codegen-vs-scalar: "
                f"{entry['speedup_codegen_vs_scalar']}x)"
            )
    if notes:
        bench["meta"]["notes"] = notes
    Path(args.out).write_text(json.dumps(bench, indent=1, sort_keys=True) + "\n")
    for app, entry in bench["apps"].items():
        print(
            f"{app}: scalar {entry['scalar_wall']}s, columnar "
            f"{entry['columnar_wall']}s, codegen {entry['codegen_wall']}s, "
            f"codegen speedup {entry['speedup_codegen_vs_scalar']}x vs scalar"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
