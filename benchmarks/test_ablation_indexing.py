"""Ablation — rule-driven secondary indexing (``index_mode="auto"``).

§1.4's late commitment to data structures: the programs stay untouched
while the planner reads each rule's query shapes and attaches hash /
sorted indexes to the Gamma tables they probe.  This bench runs the two
query-heavy workloads — Fig 12's Dijkstra (Edge probed per settled
vertex) and Fig 8's PvWatts (per-month aggregation queries) — with
indexing off and auto, on otherwise *default* stores (no §6.5 / §6.2
hand overrides: the point is what the planner buys unaided), and
reports the virtual-time lookup ledger for both.

Determinism is asserted here too (byte-identical output), but the
exhaustive strategy × threads × index-mode matrix lives in
``tests/integration/test_differential.py``.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import run_pvwatts
from repro.apps.shortestpath import GraphSpec, run_shortestpath
from repro.core import ExecOptions
from repro.stats import index_report

SPEC = GraphSpec(n_vertices=2000, extra_edges=4000)


def _lookup_ledger(result) -> dict[str, float]:
    """The parts of the virtual-time bill that indexing can move."""
    m = result.meter
    return {
        "lookup": m.cost_by_prefix("gamma_lookup:"),
        "ixlookup": m.cost_by_prefix("gamma_ixlookup:"),
        "insert": m.cost_by_prefix("gamma_insert:"),
        "total": m.total_cost,
    }


def _ablate(run):
    off = run(ExecOptions(index_mode="off"))
    auto = run(ExecOptions(index_mode="auto"))
    assert auto.output_text() == off.output_text()
    assert auto.table_sizes == off.table_sizes
    return off, auto


def _format(name: str, off, auto) -> str:
    a, b = _lookup_ledger(off), _lookup_ledger(auto)
    select_off = a["lookup"] + a["ixlookup"]
    select_auto = b["lookup"] + b["ixlookup"]
    lines = [
        f"{name}",
        f"  select cost   off {select_off:10.1f}   auto {select_auto:10.1f}"
        f"   ({1 - select_auto / select_off:+.0%})",
        f"    as lookup        {a['lookup']:10.1f}        {b['lookup']:10.1f}",
        f"    as ixlookup      {a['ixlookup']:10.1f}        {b['ixlookup']:10.1f}",
        f"  insert cost   off {a['insert']:10.1f}   auto {b['insert']:10.1f}"
        f"   (index maintenance)",
        f"  total cost    off {a['total']:10.1f}   auto {b['total']:10.1f}",
    ]
    for rep in index_report(auto):
        usage = ", ".join(f"{k}={v}" for k, v in sorted(rep.usage.items()))
        lines.append(f"  index usage [{rep.table}] {usage} (hit rate {rep.hit_rate:.0%})")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def dijkstra():
    return _ablate(lambda o: run_shortestpath(SPEC, o))


@pytest.fixture(scope="module")
def pvwatts(csv_by_month):
    return _ablate(lambda o: run_pvwatts(csv_by_month, o, n_readers=8))


def test_ablation_wall(benchmark):
    benchmark.pedantic(
        lambda: run_shortestpath(SPEC, ExecOptions(index_mode="auto")),
        rounds=2,
        warmup_rounds=1,
    )


def test_ablation_report(benchmark, dijkstra, pvwatts, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    blocks = [
        _format("dijkstra |V|=2000 (default stores)", *dijkstra),
        _format("pvwatts 1yr by-month (default stores)", *pvwatts),
    ]
    emit(
        "ablation_indexing",
        "### Ablation — secondary indexing off vs auto (virtual-time cost)\n"
        + "\n\n".join(blocks),
    )

    for off, auto in (dijkstra, pvwatts):
        a, b = _lookup_ledger(off), _lookup_ledger(auto)
        # the planner's indexes measurably cut the select bill...
        assert b["lookup"] + b["ixlookup"] < a["lookup"] + a["ixlookup"]
        # ...and the off-mode run builds no indexes at all
        assert a["ixlookup"] == 0.0
        assert index_report(off) == []

    # every planned index earns its keep: hits, never a full-scan fallback
    for _, auto in (dijkstra, pvwatts):
        reports = index_report(auto)
        assert reports, "auto mode planned no indexes"
        for rep in reports:
            assert rep.hit_rate == 1.0, rep


def test_dijkstra_auto_approaches_hand_tuned_edge_store(dijkstra):
    """§6.5 hand-tunes Edge with a hash index keyed on src; the planner
    must derive the same access path, pricing Edge probes at hash cost
    rather than tree-walk cost."""
    _, auto = dijkstra
    reports = {rep.table: rep for rep in index_report(auto)}
    assert "Edge" in reports
    assert reports["Edge"].usage.get("hash(src)", 0) > 0
