"""CI perf-smoke gate: fail on >25 % wall-time regression.

Compares a freshly measured fast-path benchmark (``bench_fastpath.py``
output) against the committed baseline
(``benchmarks/baselines/BENCH_pr3.baseline.json``).  Wall times are
normalised by each file's spin-loop calibration constant, so the gate
measures *engine* regressions rather than the raw speed of whichever
machine CI landed on.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --out /tmp/bench_current.json
    python benchmarks/check_perf_smoke.py /tmp/bench_current.json

With ``--service-current`` the gate additionally checks a service
benchmark (``bench_service.py --quick`` output) against
``baselines/BENCH_pr7.baseline.json``: normalised settle p99 latency
must not regress past ``--service-tolerance`` and normalised sustained
throughput must not fall below baseline / tolerance.  The service
tolerance is wider than the engine one because client-observed
latencies fold in scheduler and socket noise.

Exit status 1 if any (app, strategy) fast wall regressed by more than
``TOLERANCE`` after calibration, if a sequential fast run no longer
matches the legacy run's output, or if the service gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TOLERANCE = 1.25  # >25 % normalised wall-time regression fails
SERVICE_TOLERANCE = 2.0  # service latency/throughput gate
BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr3.baseline.json"
SERVICE_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr7.baseline.json"
COLUMNAR_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr8.baseline.json"


def check(current: dict, baseline: dict, tolerance: float = TOLERANCE) -> list[str]:
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    for app, entry in baseline["apps"].items():
        cur_entry = current["apps"].get(app)
        if cur_entry is None:
            failures.append(f"{app}: missing from current benchmark")
            continue
        for strategy, rec in entry.items():
            cur = cur_entry.get(strategy)
            if cur is None:
                failures.append(f"{app}/{strategy}: missing from current benchmark")
                continue
            base_norm = rec["fast_wall"] / cal_base
            cur_norm = cur["fast_wall"] / cal_cur
            if cur_norm > base_norm * tolerance:
                failures.append(
                    f"{app}/{strategy}: normalised fast wall {cur_norm:.2f} "
                    f"exceeds baseline {base_norm:.2f} x{tolerance}"
                    f" (raw {cur['fast_wall']:.3f}s vs {rec['fast_wall']:.3f}s)"
                )
            if cur.get("outputs_equal") is False:
                failures.append(
                    f"{app}/{strategy}: fast output diverged from the legacy run"
                )
    return failures


def check_service(
    current: dict, baseline: dict, tolerance: float = SERVICE_TOLERANCE
) -> list[str]:
    """Service gate: normalised settle p99 and sustained throughput.

    Latency normalises by multiplying a faster machine's times up
    (divide by calibration); throughput normalises the other way."""
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    cur, base = current["service"], baseline["service"]

    base_p99 = base["settle_ms"]["p99"] / cal_base
    cur_p99 = cur["settle_ms"]["p99"] / cal_cur
    if cur_p99 > base_p99 * tolerance:
        failures.append(
            f"service: normalised settle p99 {cur_p99:.1f} exceeds baseline "
            f"{base_p99:.1f} x{tolerance} (raw {cur['settle_ms']['p99']}ms "
            f"vs {base['settle_ms']['p99']}ms)"
        )
    base_tps = base["tuples_per_sec"] * cal_base
    cur_tps = cur["tuples_per_sec"] * cal_cur
    if cur_tps < base_tps / tolerance:
        failures.append(
            f"service: normalised throughput {cur_tps:.1f} below baseline "
            f"{base_tps:.1f} / {tolerance} (raw {cur['tuples_per_sec']} "
            f"vs {base['tuples_per_sec']} tuples/s)"
        )
    return failures


def check_columnar(
    current: dict, baseline: dict, tolerance: float = TOLERANCE
) -> list[str]:
    """Columnar gate: per app, the normalised columnar wall must stay
    within ``tolerance`` of the committed BENCH_pr8 baseline, and the
    columnar leg must still produce the scalar leg's results."""
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    for app, rec in baseline["apps"].items():
        cur = current["apps"].get(app)
        if cur is None:
            failures.append(f"columnar/{app}: missing from current benchmark")
            continue
        base_norm = rec["columnar_wall"] / cal_base
        cur_norm = cur["columnar_wall"] / cal_cur
        if cur_norm > base_norm * tolerance:
            failures.append(
                f"columnar/{app}: normalised columnar wall {cur_norm:.2f} "
                f"exceeds baseline {base_norm:.2f} x{tolerance}"
                f" (raw {cur['columnar_wall']:.3f}s vs {rec['columnar_wall']:.3f}s)"
            )
        if cur.get("outputs_equal") is False:
            failures.append(
                f"columnar/{app}: columnar output diverged from the scalar run"
            )
        if cur.get("table_sizes_equal") is False:
            failures.append(
                f"columnar/{app}: columnar table sizes diverged from the scalar run"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="bench_fastpath.py output to check")
    ap.add_argument("--baseline", default=str(BASELINE))
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    ap.add_argument("--service-current", default=None,
                    help="bench_service.py output to gate as well")
    ap.add_argument("--service-baseline", default=str(SERVICE_BASELINE))
    ap.add_argument("--service-tolerance", type=float, default=SERVICE_TOLERANCE)
    ap.add_argument("--columnar-current", default=None,
                    help="bench_columnar.py output to gate as well")
    ap.add_argument("--columnar-baseline", default=str(COLUMNAR_BASELINE))
    args = ap.parse_args(argv)
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(current, baseline, args.tolerance)
    if args.service_current is not None:
        failures += check_service(
            json.loads(Path(args.service_current).read_text()),
            json.loads(Path(args.service_baseline).read_text()),
            args.service_tolerance,
        )
    if args.columnar_current is not None:
        failures += check_columnar(
            json.loads(Path(args.columnar_current).read_text()),
            json.loads(Path(args.columnar_baseline).read_text()),
            args.tolerance,
        )
    if failures:
        print("perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf-smoke OK: all fast walls within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
