"""CI perf-smoke gate: fail on >25 % wall-time regression.

Compares a freshly measured fast-path benchmark (``bench_fastpath.py``
output) against the committed baseline
(``benchmarks/baselines/BENCH_pr3.baseline.json``).  Wall times are
normalised by each file's spin-loop calibration constant, so the gate
measures *engine* regressions rather than the raw speed of whichever
machine CI landed on.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --out /tmp/bench_current.json
    python benchmarks/check_perf_smoke.py /tmp/bench_current.json

With ``--service-current`` the gate additionally checks a service
benchmark (``bench_service.py --quick`` output) against
``baselines/BENCH_pr7.baseline.json``: normalised settle p99 latency
must not regress past ``--service-tolerance`` and normalised sustained
throughput must not fall below baseline / tolerance.  The service
tolerance is wider than the engine one because client-observed
latencies fold in scheduler and socket noise.

``--columnar-current`` and ``--codegen-current`` gate the batch-tier and
codegen-tier benchmarks against ``baselines/BENCH_pr8.baseline.json``
and ``baselines/BENCH_pr9.baseline.json`` the same way: per app, the
tier's normalised wall must stay within tolerance of its committed
baseline and the tier's results must still match the scalar leg's.
All three engine gates share one normalised-wall comparison
(:func:`gate_normalised_wall`), so the calibration arithmetic cannot
drift between them.

``--dist-current`` gates the distributed-runtime benchmark
(``bench_dist.py`` output) against ``baselines/BENCH_pr10.baseline.json``:
per (transport, workers) leg, the normalised wall must stay within the
(wider) ``--dist-tolerance``, every leg's output must still equal the
sequential engine's, and the structural claim of the v2 mesh must keep
holding — coordinator control-plane bytes at 8 workers below half the
embedded PR 5 relay reference (byte counts are machine-independent, so
that bound needs no normalisation).

Exit status 1 if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TOLERANCE = 1.25  # >25 % normalised wall-time regression fails
SERVICE_TOLERANCE = 2.0  # service latency/throughput gate
DIST_TOLERANCE = 2.0  # multiprocess walls fold in fork/scheduler noise
BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr3.baseline.json"
SERVICE_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr7.baseline.json"
COLUMNAR_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr8.baseline.json"
CODEGEN_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr9.baseline.json"
DIST_BASELINE = Path(__file__).parent / "baselines" / "BENCH_pr10.baseline.json"


def gate_normalised_wall(
    label: str,
    wall_key: str,
    cur: dict,
    base: dict,
    cal_cur: float,
    cal_base: float,
    tolerance: float,
) -> str | None:
    """The one calibration-normalised wall comparison every engine gate
    uses: each file's wall is divided by its own spin-loop calibration
    constant and the current run fails if it exceeds the baseline by
    more than ``tolerance``.  Returns the failure line, or None."""
    base_norm = base[wall_key] / cal_base
    cur_norm = cur[wall_key] / cal_cur
    if cur_norm > base_norm * tolerance:
        return (
            f"{label}: normalised {wall_key} {cur_norm:.2f} "
            f"exceeds baseline {base_norm:.2f} x{tolerance}"
            f" (raw {cur[wall_key]:.3f}s vs {base[wall_key]:.3f}s)"
        )
    return None


def _gate_tier(
    tier: str,
    wall_key: str,
    current: dict,
    baseline: dict,
    tolerance: float,
) -> list[str]:
    """Per-app tier gate shared by the columnar and codegen benchmarks:
    normalised ``wall_key`` within tolerance, and the tier's results
    (output fingerprint and table sizes) still equal to the scalar
    leg's measured in the same file."""
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    for app, rec in baseline["apps"].items():
        cur = current["apps"].get(app)
        if cur is None:
            failures.append(f"{tier}/{app}: missing from current benchmark")
            continue
        failure = gate_normalised_wall(
            f"{tier}/{app}", wall_key, cur, rec, cal_cur, cal_base, tolerance
        )
        if failure is not None:
            failures.append(failure)
        if cur.get("outputs_equal") is False:
            failures.append(
                f"{tier}/{app}: {tier} output diverged from the scalar run"
            )
        if cur.get("table_sizes_equal") is False:
            failures.append(
                f"{tier}/{app}: {tier} table sizes diverged from the scalar run"
            )
    return failures


def check(current: dict, baseline: dict, tolerance: float = TOLERANCE) -> list[str]:
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    for app, entry in baseline["apps"].items():
        cur_entry = current["apps"].get(app)
        if cur_entry is None:
            failures.append(f"{app}: missing from current benchmark")
            continue
        for strategy, rec in entry.items():
            cur = cur_entry.get(strategy)
            if cur is None:
                failures.append(f"{app}/{strategy}: missing from current benchmark")
                continue
            failure = gate_normalised_wall(
                f"{app}/{strategy}", "fast_wall", cur, rec,
                cal_cur, cal_base, tolerance,
            )
            if failure is not None:
                failures.append(failure)
            if cur.get("outputs_equal") is False:
                failures.append(
                    f"{app}/{strategy}: fast output diverged from the legacy run"
                )
    return failures


def check_service(
    current: dict, baseline: dict, tolerance: float = SERVICE_TOLERANCE
) -> list[str]:
    """Service gate: normalised settle p99 and sustained throughput.

    Latency normalises by multiplying a faster machine's times up
    (divide by calibration); throughput normalises the other way."""
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    cur, base = current["service"], baseline["service"]

    base_p99 = base["settle_ms"]["p99"] / cal_base
    cur_p99 = cur["settle_ms"]["p99"] / cal_cur
    if cur_p99 > base_p99 * tolerance:
        failures.append(
            f"service: normalised settle p99 {cur_p99:.1f} exceeds baseline "
            f"{base_p99:.1f} x{tolerance} (raw {cur['settle_ms']['p99']}ms "
            f"vs {base['settle_ms']['p99']}ms)"
        )
    base_tps = base["tuples_per_sec"] * cal_base
    cur_tps = cur["tuples_per_sec"] * cal_cur
    if cur_tps < base_tps / tolerance:
        failures.append(
            f"service: normalised throughput {cur_tps:.1f} below baseline "
            f"{base_tps:.1f} / {tolerance} (raw {cur['tuples_per_sec']} "
            f"vs {base['tuples_per_sec']} tuples/s)"
        )
    return failures


def check_columnar(
    current: dict, baseline: dict, tolerance: float = TOLERANCE
) -> list[str]:
    """Columnar gate: per app, the normalised columnar wall must stay
    within ``tolerance`` of the committed BENCH_pr8 baseline, and the
    columnar leg must still produce the scalar leg's results."""
    return _gate_tier("columnar", "columnar_wall", current, baseline, tolerance)


def check_codegen(
    current: dict, baseline: dict, tolerance: float = TOLERANCE
) -> list[str]:
    """Codegen gate: per app, the normalised codegen wall must stay
    within ``tolerance`` of the committed BENCH_pr9 baseline, the
    codegen leg must still produce the scalar leg's results, and the
    codegen tier must keep its speedup edge: at least 1.8x over the
    same-file scalar wall on at least one app."""
    failures = _gate_tier("codegen", "codegen_wall", current, baseline, tolerance)
    speedups = {
        app: cur.get("speedup_codegen_vs_scalar", 0.0)
        for app, cur in current.get("apps", {}).items()
    }
    if speedups and max(speedups.values()) < 1.8:
        failures.append(
            "codegen: no app reached the 1.8x same-machine speedup over "
            f"the scalar fast path (got {speedups})"
        )
    return failures


def check_dist(
    current: dict, baseline: dict, tolerance: float = DIST_TOLERANCE
) -> list[str]:
    """Distributed gate: per (transport, workers) leg, the normalised
    wall stays within tolerance of the committed BENCH_pr10 baseline,
    the distributed output still equals the sequential engine's, and
    the coordinator's control plane stays shuffle-free — at 8 workers
    its byte count must remain below half the PR 5 relay reference
    embedded in the baseline."""
    failures: list[str] = []
    cal_cur = current["meta"]["calibration_wall"]
    cal_base = baseline["meta"]["calibration_wall"]
    for transport, legs in baseline["transports"].items():
        cur_legs = current.get("transports", {}).get(transport)
        if cur_legs is None:
            failures.append(f"dist/{transport}: missing from current benchmark")
            continue
        for w, rec in legs.items():
            cur = cur_legs.get(w)
            if cur is None:
                failures.append(
                    f"dist/{transport} x{w}: missing from current benchmark"
                )
                continue
            failure = gate_normalised_wall(
                f"dist/{transport} x{w}", "wall", cur, rec,
                cal_cur, cal_base, tolerance,
            )
            if failure is not None:
                failures.append(failure)
            if cur.get("outputs_equal") is False:
                failures.append(
                    f"dist/{transport} x{w}: output diverged from the "
                    "sequential engine"
                )
            if cur.get("table_sizes_equal") is False:
                failures.append(
                    f"dist/{transport} x{w}: table sizes diverged from the "
                    "sequential engine"
                )
    relay8 = baseline["relay_reference"]["legs"].get("8")
    cur8 = current.get("transports", {}).get("pipe", {}).get("8")
    if relay8 is not None and cur8 is not None:
        ceiling = relay8["coordinator_bytes"] * 0.5
        if cur8["coordinator_bytes"] > ceiling:
            failures.append(
                f"dist: coordinator control bytes at 8 workers "
                f"({cur8['coordinator_bytes']}) exceed half the PR 5 relay "
                f"reference ({relay8['coordinator_bytes']}) — the shuffle "
                "is leaking back onto the control plane"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="bench_fastpath.py output to check")
    ap.add_argument("--baseline", default=str(BASELINE))
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    ap.add_argument("--service-current", default=None,
                    help="bench_service.py output to gate as well")
    ap.add_argument("--service-baseline", default=str(SERVICE_BASELINE))
    ap.add_argument("--service-tolerance", type=float, default=SERVICE_TOLERANCE)
    ap.add_argument("--columnar-current", default=None,
                    help="bench_columnar.py output to gate as well")
    ap.add_argument("--columnar-baseline", default=str(COLUMNAR_BASELINE))
    ap.add_argument("--codegen-current", default=None,
                    help="bench_codegen.py output to gate as well")
    ap.add_argument("--codegen-baseline", default=str(CODEGEN_BASELINE))
    ap.add_argument("--dist-current", default=None,
                    help="bench_dist.py output to gate as well")
    ap.add_argument("--dist-baseline", default=str(DIST_BASELINE))
    ap.add_argument("--dist-tolerance", type=float, default=DIST_TOLERANCE)
    args = ap.parse_args(argv)
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(current, baseline, args.tolerance)
    if args.service_current is not None:
        failures += check_service(
            json.loads(Path(args.service_current).read_text()),
            json.loads(Path(args.service_baseline).read_text()),
            args.service_tolerance,
        )
    if args.columnar_current is not None:
        failures += check_columnar(
            json.loads(Path(args.columnar_current).read_text()),
            json.loads(Path(args.columnar_baseline).read_text()),
            args.tolerance,
        )
    if args.codegen_current is not None:
        failures += check_codegen(
            json.loads(Path(args.codegen_current).read_text()),
            json.loads(Path(args.codegen_baseline).read_text()),
            args.tolerance,
        )
    if args.dist_current is not None:
        failures += check_dist(
            json.loads(Path(args.dist_current).read_text()),
            json.loads(Path(args.dist_baseline).read_text()),
            args.dist_tolerance,
        )
    if failures:
        print("perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf-smoke OK: all fast walls within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
