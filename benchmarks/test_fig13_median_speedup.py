"""Fig 13 — Median-finding speedup vs fork/join pool size.

Paper (quad-CPU Xeon E7-8837, 32 cores): "we get the speedup results
shown in Fig. 13, with good speedup 8.6X up to 12 cores, and then a
more gradual speedup up to a maximum of 14X with 32 cores."

Scaled array: 200 000 doubles (from 100 M), 24 regions, the §6.6
optimisation stack (two-iteration native-array store, bulk writes, no
Delta transit for Data).  Saturation comes from the per-iteration
barrier plus the serial controller — Amdahl inside every iteration.
"""

from __future__ import annotations

import pytest

from repro.apps.baselines.median_base import median_sort_baseline
from repro.apps.median import median_from_result, random_doubles, run_median
from repro.bench import speedup_series
from repro.core import ExecOptions

N = 200_000
THREADS = (1, 2, 4, 8, 12, 16, 24, 32)
VALS = random_doubles(N, seed=9)


@pytest.fixture(scope="module")
def series():
    truth = median_sort_baseline(VALS)
    seq = run_median(VALS)
    assert median_from_result(seq) == truth

    def run(threads: int) -> float:
        r = run_median(VALS, ExecOptions(strategy="forkjoin", threads=threads))
        assert median_from_result(r) == truth
        return r.virtual_time

    return speedup_series("median n=200k, 24 regions", THREADS, run, sequential=seq.virtual_time)


def test_fig13_wall_12_threads(benchmark):
    benchmark.pedantic(
        lambda: run_median(VALS, ExecOptions(strategy="forkjoin", threads=12)),
        rounds=3,
        warmup_rounds=1,
    )


def test_fig13_report(benchmark, series, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    rel = dict(zip(series.threads, series.relative))
    emit(
        "fig13_median_speedup",
        "### Fig 13 — Median speedup vs pool size (paper: 8.6x @ 12, 14x @ 32)\n"
        + series.format()
        + f"\n\nspeedup at 12: {rel[12]:.2f} (paper 8.6); at 32: {rel[32]:.2f} (paper ~14)",
    )
    assert 6.5 < rel[12] < 11.0    # paper 8.6
    assert 11.0 < rel[32] < 17.0   # paper ~14
    # "more gradual" after 12: per-core gain drops
    early = (rel[12] - rel[1]) / 11
    late = (rel[32] - rel[12]) / 20
    assert late < early
    # monotone
    speeds = [rel[t] for t in THREADS]
    assert all(b >= a * 0.97 for a, b in zip(speeds, speeds[1:]))
