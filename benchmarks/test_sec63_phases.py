"""§6.3 — phase breakdown of the optimised PvWatts program (1 thread).

Paper: "the relative times of the various phases are: 16.9 % reading
and parsing the input file; 63.7 % creating the PvWatts tuples and
inserting them into their Gamma table; 3.8 % creating SumMonth tuples
and inserting into the Delta tree; 15.6 % processing the SumMonth
tuples by running a Statistics reducer over all the PvWatts tuples for
each month."  This split is what motivates the Disruptor redesign
(Amdahl: ≤ 4.2x with one reader and 12 consumers).

We regenerate the same four-way split from the cost meter's counter
ledger and recompute the paper's Amdahl bound from the measured read
fraction.
"""

from __future__ import annotations

from repro.apps.pvwatts import array_of_hashsets_store, run_pvwatts
from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions

PAPER = {"read": 16.9, "gamma": 63.7, "delta": 3.8, "reduce": 15.6}


def phase_fractions(result) -> dict[str, float]:
    m = result.meter
    read = m.costs.get("csv_parse", 0.0) + m.costs.get("io_record", 0.0)
    gamma = (
        m.cost_by_prefix("gamma_insert:PvWatts")
        + m.costs.get("tuple_put", 0.0)  # tuple creation
    )
    delta = (
        m.costs.get("delta_insert", 0.0)
        + m.costs.get("delta_pop", 0.0)
        + m.cost_by_prefix("gamma_insert:SumMonth")
    )
    reduce_ = (
        m.costs.get("reduce_op", 0.0)
        + m.cost_by_prefix("gamma_lookup:PvWatts")
        + m.cost_by_prefix("gamma_result:PvWatts")
        + m.costs.get("query_result", 0.0)
    )
    total = read + gamma + delta + reduce_
    return {
        "read": 100 * read / total,
        "gamma": 100 * gamma / total,
        "delta": 100 * delta / total,
        "reduce": 100 * reduce_ / total,
    }


def test_sec63_phase_breakdown(benchmark, csv_by_month, emit):
    opts = ExecOptions(
        strategy="forkjoin",
        threads=1,
        no_delta=frozenset({"PvWatts"}),
        store_overrides={"PvWatts": array_of_hashsets_store()},
    )
    result = benchmark.pedantic(
        lambda: run_pvwatts(csv_by_month, opts), rounds=2, warmup_rounds=1
    )
    frac = phase_fractions(result)
    amdahl = 1.0 / (frac["read"] / 100 + (1 - frac["read"] / 100) / 12)
    paper_amdahl = 1.0 / (0.169 + (1 - 0.169) / 12)
    rows = [
        FigureRow(f"{name} %", frac[name], paper=PAPER[name]) for name in PAPER
    ] + [
        FigureRow("Amdahl bound (1 reader, 12 consumers)", amdahl, paper=paper_amdahl)
    ]
    emit(
        "sec63_phases",
        figure_block(
            "§6.3 — optimised PvWatts phase breakdown at 1 thread (% of work)",
            rows,
            note="phases attributed from the cost-meter ledger; the Amdahl "
            "bound justifies the Disruptor design exactly as in the paper",
        ),
    )
    # shape: gamma-insert phase dominates, read is a minority, the split
    # ranks the same way as the paper's
    assert frac["gamma"] > frac["read"] > frac["delta"]
    assert frac["gamma"] > 40
    assert 2.5 < amdahl < 7.0
