"""Ablation — the §5.2 'additional parallelism' headroom.

Paper: "this parallel implementation does not take advantage of all
the potential parallelism ... we could create one task per rule that
is triggered.  Also, within a rule, any loop that does not use a
reducer object is known to have independent loop bodies, so these
could be executed in parallel.  Loops that do involve a reducer object
could also be executed in parallel, with a tree-based pass to combine
the final reducer results."  And in §8: "[the graph-generation rewrite]
would be less necessary if our implementation exploited the
embarrassingly parallel for loops within rules."

This bench turns those extensions ON (they are opt-in features here)
and measures the recovered headroom:

* PvWatts with the SumMonth reducer loop run through ``par_reduce`` —
  12 reducer tasks become 12 × chunks of divisible work;
* the §8 claim directly: ShortestPath graph generation as ONE rule
  whose edge loop is a parallel reducer loop vs the paper's manual
  24-task rewrite — the extension makes the rewrite unnecessary.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureRow, figure_block
from repro.core import ExecOptions, Program, Statistics
from repro.csvio import PVWATTS_INT_POSITIONS, read_records_bytes


def pvwatts_parloop_program(data: bytes, use_par_reduce: bool):
    """PvWatts variant whose reduce loop optionally uses par_reduce."""
    p = Program("pvwatts-parloop")
    Req = p.table("Req", "str filename", orderby=("Req",))
    PvWatts = p.table(
        "PvWatts", "int year, int month, int day, str hour, int power",
        orderby=("PvWatts",),
    )
    SumMonth = p.table("SumMonth", "int year, int month", orderby=("SumMonth",))
    p.order("Req", "PvWatts", "SumMonth")

    @p.foreach(Req, unsafe=True)
    def read_loop(ctx, req):
        def on_record(rec):
            y, m, d, hour, power = rec
            ctx.put(PvWatts.new(y, m, d, hour.decode("ascii"), power))
        n = read_records_bytes(data, PVWATTS_INT_POSITIONS, 5, on_record=on_record)
        ctx.charge(0.8 * n, "csv_parse")

    @p.foreach(PvWatts)
    def make_summonth(ctx, pv):
        ctx.put(SumMonth.new(pv.year, pv.month))

    # a deliberately analytics-heavy reducer pass (2 wu/record): the
    # regime where the 12 month-tasks alone cannot fill a large machine
    REDUCE_COST = 2.0

    @p.foreach(SumMonth)
    def average_month(ctx, s):
        rows = ctx.get(PvWatts, s.year, s.month)
        if use_par_reduce:
            stats = ctx.par_reduce(
                (r.power for r in rows), Statistics(), chunks=16,
                cost_per_item=REDUCE_COST,
            )
        else:
            acc = Statistics().zero()
            red = Statistics()
            for r in rows:
                acc = red.step(acc, r.power)
            ctx.charge(REDUCE_COST * len(rows), "reduce_op")
            stats = acc
        ctx.println(f"{s.year}/{s.month}: {stats.mean:.3f}")

    p.put(Req.new("f.csv"))
    return p


def shortestpath_single_rule_program(parallel_loop: bool):
    """Graph generation as ONE rule (the paper's original design that
    became a >60% bottleneck), with the edge loop optionally divisible."""
    from repro.apps.shortestpath import GraphSpec, make_graph
    from repro.core import SumReducer

    spec = GraphSpec(n_vertices=1000, extra_edges=2000)
    edges = make_graph(spec)

    p = Program("gen-single-rule")
    Cmd = p.table("Cmd", "int n", orderby=("Gen",))
    Edge = p.table("Edge", "int src, int dst, int value", orderby=("Edge",))
    p.order("Gen", "Edge")

    @p.foreach(Cmd, unsafe=True)
    def generate(ctx, cmd):
        store = ctx.native(Edge)
        for s, d, w in edges:
            store.insert(Edge.new(s, d, w))
        if parallel_loop:
            # "any loop that does not use a reducer object is known to
            # have independent loop bodies" — meter it as divisible
            # (1.2 wu/edge, the same RNG+alloc cost the 24-task version
            # charges)
            ctx.par_reduce(range(len(edges)), SumReducer(), chunks=24, cost_per_item=1.2)
        else:
            ctx.charge(1.2 * len(edges), "user_work")

    p.put(Cmd.new(spec.n_vertices))
    return p


def reduce_phase_probe(par: bool) -> float:
    """The reduce phase in isolation: 12 month-tasks on 32 cores, each
    folding ~730 records (2 wu each) — with and without par_reduce."""
    from repro.core import SumReducer

    p = Program("reduce-phase")
    Go = p.table("Go", "int month", orderby=("B", "par month"))

    @p.foreach(Go)
    def agg(ctx, go):
        if par:
            ctx.par_reduce(range(730), SumReducer(), chunks=16, cost_per_item=2.0)
        else:
            ctx.charge(2.0 * 730)

    for m in range(12):
        p.put(Go.new(m))
    return p.run(ExecOptions(strategy="forkjoin", threads=32)).virtual_time


@pytest.fixture(scope="module")
def measurements(csv_by_month):
    # 32 cores: 12 month-tasks alone leave most of the machine idle —
    # exactly when in-rule loop parallelism matters.  The custom
    # per-month store removes read contention (as in Fig 8), leaving
    # the reducer loop itself as the phase bottleneck.
    from repro.apps.pvwatts import array_of_hashsets_store

    opts32 = ExecOptions(
        strategy="forkjoin",
        threads=32,
        no_delta=frozenset({"PvWatts"}),
        store_overrides={"PvWatts": array_of_hashsets_store()},
    )
    opts8 = opts32.with_(threads=8)
    pv_plain = pvwatts_parloop_program(csv_by_month, False).run(opts32)
    pv_par = pvwatts_parloop_program(csv_by_month, True).run(opts32)
    assert sorted(pv_plain.output) == sorted(pv_par.output)

    gen_plain = shortestpath_single_rule_program(False).run(opts8)
    gen_par = shortestpath_single_rule_program(True).run(opts8)
    phase_plain = reduce_phase_probe(False)
    phase_par = reduce_phase_probe(True)
    return pv_plain, pv_par, gen_plain, gen_par, phase_plain, phase_par


def test_ablation_extensions_report(benchmark, measurements, emit):
    benchmark.pedantic(lambda: None, rounds=1)
    pv_plain, pv_par, gen_plain, gen_par, phase_plain, phase_par = measurements
    rows = [
        FigureRow("reduce phase @32, 12 serial loops (wu)", phase_plain),
        FigureRow("reduce phase @32, par_reduce loops (wu)", phase_par),
        FigureRow("  phase-level gain", phase_plain / phase_par),
        FigureRow("PvWatts @32, sequential reducer loops (wu)", pv_plain.virtual_time),
        FigureRow("PvWatts @32, par_reduce loops (wu)", pv_par.virtual_time),
        FigureRow("  reducer-loop gain", pv_plain.virtual_time / pv_par.virtual_time),
        FigureRow("graph-gen @8, single rule, serial loop (wu)", gen_plain.virtual_time),
        FigureRow("graph-gen @8, single rule, parallel loop (wu)", gen_par.virtual_time),
        FigureRow("  §8 claim: gain w/o manual 24-task rewrite",
                  gen_plain.virtual_time / gen_par.virtual_time),
    ]
    emit(
        "ablation_extensions",
        figure_block(
            "Ablation — §5.2 extensions (per-rule loops as divisible work)",
            rows,
            note="the parallel-loop extension recovers the parallelism the "
            "paper otherwise obtained by manually splitting rules (§6.5/§8)",
        ),
    )
    # the reduce *phase* gains >2x; the whole program a few percent
    # (its read phase dominates, which is §6.3's motivation for the
    # Disruptor redesign rather than more in-rule parallelism)
    assert phase_plain / phase_par > 2.0
    assert pv_par.virtual_time < pv_plain.virtual_time * 0.99
    # the single-rule generator parallelises without the manual rewrite
    assert gen_par.virtual_time < gen_plain.virtual_time / 3
