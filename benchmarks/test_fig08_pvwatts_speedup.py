"""Fig 8 — PvWatts relative speedup vs fork/join pool size, with
alternative data structures for the PvWatts Gamma table.

Paper (dual-CPU Xeon W5590, 8 cores): "The relative speedup is
average, reaching nearly 4X speedup with 8 threads.  The absolute
speedup figures are about 35 % lower, because the sequential Java data
structures (eg. TreeMap) are significantly faster than the equivalent
concurrent data structures."

Three Gamma backends are swept, per §6.2's data-structure discussion:
the default concurrent skip list, the (year, month) hash index, and
the custom array-of-hashsets — all via ``store_overrides``, the program
source untouched.
"""

from __future__ import annotations

import pytest

from repro.apps.pvwatts import (
    array_of_hashsets_store,
    hash_index_store,
    run_pvwatts,
)
from repro.bench import speedup_series
from repro.core import ExecOptions

THREADS = (1, 2, 4, 6, 8)
PAPER_RELATIVE_AT_8 = 4.0
PAPER_ABS_DISCOUNT = 0.35

BACKENDS = {
    "concurrent-skiplist (default)": None,
    "hash-index(year,month)": hash_index_store(),
    "array-of-hashsets (custom, §6.2)": array_of_hashsets_store(),
}


def _options(threads: int, backend) -> ExecOptions:
    overrides = {} if backend is None else {"PvWatts": backend}
    return ExecOptions(
        strategy="forkjoin",
        threads=threads,
        no_delta=frozenset({"PvWatts"}),
        store_overrides=overrides,
    )


#: each backend's -sequential reference uses its own sequential variant
#: (footnote 11: absolute speedup is vs the fastest sequential version)
SEQ_BACKENDS = {
    "concurrent-skiplist (default)": None,  # TreeSet default
    "hash-index(year,month)": hash_index_store(concurrent=False),
    "array-of-hashsets (custom, §6.2)": array_of_hashsets_store(concurrent=False),
}


@pytest.fixture(scope="module")
def series(csv_by_month):
    out = {}
    for label, backend in BACKENDS.items():
        seq_backend = SEQ_BACKENDS[label]
        seq = run_pvwatts(
            csv_by_month,
            ExecOptions(
                no_delta=frozenset({"PvWatts"}),
                store_overrides={} if seq_backend is None else {"PvWatts": seq_backend},
            ),
            n_readers=8,
        ).virtual_time
        out[label] = speedup_series(
            label,
            THREADS,
            lambda t, b=backend: run_pvwatts(
                csv_by_month, _options(t, b), n_readers=8
            ).virtual_time,
            sequential=seq,
        )
    return out


def test_fig08_wall_at_8_threads(benchmark, csv_by_month):
    benchmark.pedantic(
        lambda: run_pvwatts(
            csv_by_month, _options(8, array_of_hashsets_store()), n_readers=8
        ),
        rounds=3,
        warmup_rounds=1,
    )


def test_fig08_report(benchmark, series, emit, csv_by_month):
    benchmark.pedantic(lambda: None, rounds=1)
    blocks = [s.format() for s in series.values()]
    custom = series["array-of-hashsets (custom, §6.2)"]
    default = series["concurrent-skiplist (default)"]
    rel8 = custom.relative[-1]
    discount = 1 - default.absolute[-1] / default.relative[-1]
    blocks.append(
        f"custom-store relative speedup at 8 threads: {rel8:.2f} (paper ~{PAPER_RELATIVE_AT_8})\n"
        f"default-store absolute/relative discount: {discount:.0%} "
        f"(paper ~{PAPER_ABS_DISCOUNT:.0%}: TreeMap vs ConcurrentSkipListMap)"
    )

    # index-mode note: the hand overrides above pick the (year, month)
    # hash index; on default stores, index_mode="auto" plans the same
    # index from the per-month aggregation query
    off = run_pvwatts(csv_by_month, ExecOptions(index_mode="off"), n_readers=8)
    auto = run_pvwatts(csv_by_month, ExecOptions(index_mode="auto"), n_readers=8)
    assert auto.output_text() == off.output_text()
    sel_off = off.meter.cost_by_prefix("gamma_lookup:")
    sel_auto = auto.meter.cost_by_prefix("gamma_lookup:") + auto.meter.cost_by_prefix(
        "gamma_ixlookup:"
    )
    assert auto.meter.cost_by_prefix("gamma_ixlookup:PvWatts") > 0
    assert sel_auto < sel_off
    blocks.append(
        f"auto-index on default stores: select cost {sel_off:.1f} -> {sel_auto:.1f} "
        "(planner derives the (year, month) hash index by itself)"
    )
    emit("fig08_pvwatts_speedup", "### Fig 8 — PvWatts speedup by Gamma backend\n" + "\n\n".join(blocks))

    assert 3.0 < rel8 < 5.5           # "nearly 4X with 8 threads"
    assert 0.15 < discount < 0.50     # paper: ~35 %
    # custom store is the fastest backend in absolute time at 8 threads
    assert custom.elapsed[-1] <= min(s.elapsed[-1] for s in series.values())
    # monotone-ish speedup in threads
    assert custom.relative[0] == pytest.approx(1.0)
    assert custom.relative[-1] > custom.relative[1]
