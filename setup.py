"""Shim so `pip install -e .` works on hosts without the `wheel`
package (legacy setup.py develop path); all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
