"""repro — a Python reproduction of "The JStar Language Philosophy"
(Utting, Weng & Cleary, 2013).

JStar is a declarative, implicitly-parallel language: Datalog with
negation plus explicit causality timestamps, executed bottom-up through
a Delta/Gamma tuple database, with all parallelism and data-structure
decisions made *outside* the program source.

Subpackages
-----------
``repro.core``
    The language runtime: tables, rules, timestamps, Delta tree,
    Gamma database, the pseudo-naive engine.
``repro.solver``
    SMT-style prover discharging the paper's causality obligations.
``repro.simcore`` / ``repro.exec``
    Virtual-time multicore machine and the execution strategies
    (sequential / simulated fork-join / real threads).
``repro.gamma``
    Swappable Gamma data-structure backends (skip lists, hash indexes,
    numpy native arrays, ...).
``repro.disruptor``
    LMAX-Disruptor-style ring-buffer substrate (§6.3).
``repro.csvio``
    Byte-oriented CSV substrate + synthetic PVWatts data generator.
``repro.stats`` / ``repro.viz``
    Run statistics and dependency-graph visualisation (Figs 7/9).
``repro.apps``
    The four case-study programs and their hand-coded baselines.
``repro.bench``
    Benchmark harness utilities shared by ``benchmarks/``.
"""

from repro.core import ExecOptions, Program

__version__ = "1.0.0"
__all__ = ["Program", "ExecOptions", "__version__"]
