"""The Disruptor redesign of PvWatts (§6.3, Fig 9, Fig 10, Table 1).

"Our Disruptor version of PvWatts parallelizes the PvWatts program into
a two-phase workflow ... a single producer and multiple consumers to
process all PvWatts tuples. ... To reduce the workload of the reducer
loop and improve the parallelism, we assign a separate month to each
consumer.  Thus, each consumer just needs to process the PvWatts
tuples of one month and puts these tuples into its own Gamma database.
... When a consumer receives the sentinel tuple, it processes the
SumMonth tuple from its own Delta tree, which triggers the reducer loop
to query the PvWatts tuples in the Gamma table, and output their
average monthly power generation."

Two realisations, one design (Fig 9):

* :func:`run_disruptor_threaded` — the real
  :class:`~repro.disruptor.dsl.Disruptor` with 12 consumer threads,
  each owning a **local** Gamma store and Statistics reducer; used for
  functional validation (GIL-bound, so wall time is meaningless);
* :func:`run_disruptor_simulated` — the virtual-time pipeline model
  (:func:`~repro.disruptor.simulated.simulate_pipeline`) fed with the
  actual record stream's month keys, which regenerates Fig 10 and the
  Table 1 tuning sweeps.

The paper's configuration (Table 1) is the default here: ring 1024,
single producer claiming batches of 256, 12 consumers,
BlockingWaitStrategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reducers import Statistics, StatisticsAcc
from repro.csvio import PVWATTS_INT_POSITIONS
from repro.csvio.reader import read_records_bytes
from repro.disruptor import (
    BlockingWaitStrategy,
    Disruptor,
    EventHandler,
    PipelineCosts,
    PipelineResult,
    SingleThreadedClaimStrategy,
    WaitStrategy,
    simulate_pipeline,
)

__all__ = [
    "DisruptorConfig",
    "MonthConsumer",
    "run_disruptor_threaded",
    "run_disruptor_simulated",
    "PVWATTS_PIPELINE_COSTS",
]

_N_FIELDS = 5
_SENTINEL = None  # end-of-input marker, the paper's "sentinel tuple"


@dataclass(frozen=True)
class DisruptorConfig:
    """Table 1's tuning surface."""

    ring_size: int = 1024
    batch: int = 256
    n_consumers: int = 12
    wait_strategy_factory: type = BlockingWaitStrategy

    def wait_strategy(self) -> WaitStrategy:
        return self.wait_strategy_factory()


class MonthConsumer(EventHandler):
    """One consumer owning one month: local Gamma (a plain list — no
    shared structure to contend on) + a Statistics reducer fired by the
    sentinel, per §6.3."""

    def __init__(self, month: int):
        self.month = month
        self.local_gamma: list[tuple] = []
        self.result: dict[tuple[int, int], StatisticsAcc] = {}

    def on_event(self, value, sequence: int, end_of_batch: bool) -> None:
        if value is _SENTINEL:
            self._reduce()
            return
        if value[1] == self.month:
            self.local_gamma.append(value)

    def _reduce(self) -> None:
        stats = Statistics()
        by_year: dict[int, StatisticsAcc] = {}
        for rec in self.local_gamma:
            acc = by_year.get(rec[0])
            if acc is None:
                acc = stats.zero()
            by_year[rec[0]] = stats.step(acc, rec[4])
        for year, acc in by_year.items():
            self.result[(year, self.month)] = acc


def run_disruptor_threaded(
    data: bytes, config: DisruptorConfig | None = None
) -> dict[tuple[int, int], float]:
    """Real-threads run; returns {(year, month): mean power}."""
    cfg = config or DisruptorConfig()
    d = Disruptor(cfg.ring_size, cfg.wait_strategy(), SingleThreadedClaimStrategy(cfg.ring_size))
    consumers = [MonthConsumer(m) for m in range(1, cfg.n_consumers + 1)]
    d.handle_events_with(*consumers)
    d.start()

    # the producer: read + parse + publish in batches, then the sentinel
    batch: list = []

    def on_record(rec: tuple) -> None:
        batch.append(rec)
        if len(batch) >= cfg.batch:
            d.ring.publish_batch(batch)
            batch.clear()

    read_records_bytes(data, PVWATTS_INT_POSITIONS, _N_FIELDS, on_record=on_record)
    if batch:
        d.ring.publish_batch(batch)
    d.publish(_SENTINEL)
    d.halt_when_drained()

    means: dict[tuple[int, int], float] = {}
    for c in consumers:
        for key, acc in c.result.items():
            means[key] = acc.mean
    return means


#: application-layer costs calibrated so the virtual-time pipeline
#: reproduces Fig 10's 3.31x (by-month) speedup at 8 threads.  The
#: consumer's per-owned-record work dominates the producer's parse —
#: §6.3 measured 63.7 % of time in tuple creation + Gamma insertion vs
#: 16.9 % reading/parsing.
PVWATTS_PIPELINE_COSTS = PipelineCosts(
    parse=1.0,
    proc=3.8,
    scan=0.12,
    flush_per_owned=0.9,
)


def run_disruptor_simulated(
    data: bytes,
    threads: int,
    config: DisruptorConfig | None = None,
    costs: PipelineCosts | None = None,
) -> PipelineResult:
    """Virtual-time run over the actual record stream (Fig 10 engine).

    ``threads`` is the machine's core count; the 1 producer + 12
    consumers are multiplexed onto it by the pipeline model.
    """
    cfg = config or DisruptorConfig()
    recs = read_records_bytes(data, PVWATTS_INT_POSITIONS, _N_FIELDS)
    assert isinstance(recs, list)
    keys = [r[1] - 1 for r in recs]  # month -> consumer index
    return simulate_pipeline(
        keys,
        n_consumers=cfg.n_consumers,
        cores=threads,
        ring_size=cfg.ring_size,
        batch=cfg.batch,
        wait=cfg.wait_strategy(),
        claim=SingleThreadedClaimStrategy(cfg.ring_size),
        costs=costs if costs is not None else PVWATTS_PIPELINE_COSTS,
    )
