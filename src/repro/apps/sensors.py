"""Event-driven sensor monitoring — the §3 idioms in one program.

§3: "Event-driven programming with external input tuples fits
elegantly into this framework — the input tuples are added to the
Delta Set, and can then trigger various rules before being stored into
a table."  And footnote 8: "The kosher way of printing is to put
Println tuples into the Delta Set, so that the printing side effects
take place when those tuples are removed from the Delta Set, which
follows the causality ordering.  This also allows one to define an
output sorting order for the Println tuples."

The program: a stream of ``Reading(tick, sensor, value)`` tuples (the
external events).  A rule compares each reading with the same sensor's
previous tick and raises an ``Alert``; alerts become ``Println`` tuples
whose orderby sorts output by tick then sensor — so the printed log is
deterministic and causally ordered *no matter how the input arrived or
how many cores ran the rules*.

Old readings are dead after one tick, so the program is the natural
customer for a :class:`~repro.core.RetentionHint` (§5 step 4): with
``retention={"Reading": RetentionHint("tick", 2)}`` the Gamma heap
stays bounded by two ticks however long the stream runs — the ablation
benchmark quantifies the GC relief.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ExecOptions, Program, RetentionHint, RunResult
from repro.core.tuples import TableHandle
from repro.solver import RuleMeta

__all__ = [
    "SensorHandles",
    "build_sensor_program",
    "build_sensor_stream",
    "sensor_events",
    "run_sensors",
    "run_sensors_streaming",
    "alerts_from_output",
]


@dataclass
class SensorHandles:
    program: Program
    Reading: TableHandle
    Alert: TableHandle
    Println: TableHandle


def build_sensor_program(
    n_ticks: int = 50,
    n_sensors: int = 8,
    spike_factor: float = 2.0,
    seed: int = 5,
) -> SensorHandles:
    """Build the monitoring program over a synthetic event stream."""
    p = Program("sensors")
    Reading = p.table(
        "Reading",
        "int tick, int sensor -> int value",
        orderby=("Int", "seq tick", "Reading", "par sensor"),
    )
    Alert = p.table(
        "Alert",
        "int tick, int sensor -> int value, int previous",
        orderby=("Int", "seq tick", "Alert", "par sensor"),
    )
    # the Out stratum is *interleaved per tick* (first level "Int", like
    # the inputs), not ordered after the whole stream: tick t's log
    # lines leave Delta before tick t+1's readings, which is what lets a
    # session settle mid-stream and still produce the single-shot log
    # byte-for-byte — the printed order is (tick, sensor) either way
    Println = p.table(
        "Println",
        "int tick, int sensor -> str text",
        orderby=("Int", "seq tick", "Out", "seq sensor"),
    )
    p.order("Int", "Out")
    p.order("Reading", "Alert", "Out")

    meta = RuleMeta(Reading)
    t = meta.trigger
    b = meta.branch()
    # reads the strictly-previous tick: a negative/aggregate-safe region
    from repro.core.query import QueryKind

    b.query(Reading, kind=QueryKind.NEGATIVE, tick=t["tick"] - 1, sensor=t["sensor"])
    b.put(Alert, tick=t["tick"], sensor=t["sensor"])

    @p.foreach(Reading, meta=meta)
    def detect_spike(ctx, r):
        prev = ctx.get_uniq(Reading, tick=r.tick - 1, sensor=r.sensor)
        if prev is not None and r.value > spike_factor * max(1, prev.value):
            ctx.put(Alert.new(r.tick, r.sensor, r.value, prev.value))

    @p.foreach(Alert)
    def report(ctx, a):
        # the kosher println: emit a Println tuple; the Out literal and
        # its (tick, sensor) orderby define the output sorting order
        ctx.put(
            Println.new(
                a.tick, a.sensor,
                f"tick {a.tick}: sensor {a.sensor} spiked {a.previous} -> {a.value}",
            )
        )

    @p.foreach(Println, unsafe=True)
    def emit(ctx, line):
        # side effect happens when the tuple leaves the Delta set —
        # i.e. in Println's causal output order (footnote 8)
        ctx.println(line.text)

    # the external event stream, deliberately shuffled
    for ev in sensor_events(Reading, n_ticks, n_sensors, spike_factor, seed):
        p.put(ev)
    return SensorHandles(p, Reading, Alert, Println)


def build_sensor_stream(
    n_ticks: int = 50,
    n_sensors: int = 8,
    spike_factor: float = 2.0,
    seed: int = 5,
) -> tuple[SensorHandles, list]:
    """The streaming variant: the same program with *no* initial puts,
    plus the (shuffled) event stream as a list — the caller owns the
    input and feeds it through an :class:`~repro.core.EngineSession`."""
    handles = build_sensor_program(n_ticks=0, n_sensors=n_sensors,
                                   spike_factor=spike_factor, seed=seed)
    events = sensor_events(handles.Reading, n_ticks, n_sensors, spike_factor, seed)
    return handles, events


def sensor_events(
    Reading: TableHandle,
    n_ticks: int,
    n_sensors: int,
    spike_factor: float = 2.0,
    seed: int = 5,
) -> list:
    """The synthetic event stream, in shuffled arrival order."""
    rng = np.random.default_rng(seed)
    base = rng.integers(50, 100, size=n_sensors)
    events = []
    for tick in range(n_ticks):
        for sensor in range(n_sensors):
            value = int(base[sensor] + rng.integers(-5, 6))
            if rng.random() < 0.04:
                value = int(value * (spike_factor + 0.5))
            events.append(Reading.new(tick, sensor, value))
    order = rng.permutation(len(events))
    return [events[int(i)] for i in order]


def run_sensors(
    n_ticks: int = 50,
    n_sensors: int = 8,
    options: ExecOptions | None = None,
    bounded_memory: bool = False,
    seed: int = 5,
) -> RunResult:
    """Run the monitor; ``bounded_memory=True`` adds the retention hint
    that keeps only the last two ticks of readings in Gamma."""
    handles = build_sensor_program(n_ticks, n_sensors, seed=seed)
    opts = options or ExecOptions()
    if bounded_memory:
        opts = opts.with_(
            retention={**dict(opts.retention), "Reading": RetentionHint("tick", 2)}
        )
    return handles.program.run(opts)


def run_sensors_streaming(
    n_ticks: int = 50,
    n_sensors: int = 8,
    options: ExecOptions | None = None,
    bounded_memory: bool = False,
    seed: int = 5,
    chunks: int = 5,
) -> RunResult:
    """The session-API twin of :func:`run_sensors`: the event stream
    arrives in ``chunks`` causally-aligned feeds with a ``settle()``
    after each — a long-running monitor absorbing traffic in bursts.
    The cumulative result is byte-identical to the single-shot run."""
    from repro.core import causal_chunks

    handles, events = build_sensor_stream(n_ticks, n_sensors, seed=seed)
    opts = options or ExecOptions()
    if bounded_memory:
        opts = opts.with_(
            retention={**dict(opts.retention), "Reading": RetentionHint("tick", 2)}
        )
    with handles.program.session(opts) as s:
        for chunk in causal_chunks(s.database, events, chunks):
            s.feed(chunk)
            s.settle()
    return s.result


def alerts_from_output(result: RunResult) -> list[str]:
    return list(result.output)
