"""The PvWatts case study (Fig 4, §6.1–§6.3).

A map-reduce style program: read a CSV of hourly solar-power records,
average the power per month.  Transliteration of Fig 4::

    table PvWattsRequest(String filename) orderby (Req);
    table PvWatts(int year, int month, int day, String hour, int power)
        orderby (PvWatts);
    table SumMonth(int year, int month) orderby (SumMonth);
    order Req < PvWatts < SumMonth;

    put PvWattsRequest("large1000.csv");
    foreach (PvWattsRequest req) { ...read PvWatts tuples from *.csv... }
    foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
    foreach (SumMonth s)  { ...Statistics over get PvWatts(s.year, s.month)... }

Additions the paper describes around the core program:

* **parallel readers** (§6.2/Fig 7): the request rule splits the file
  into ``n_readers`` byte regions and puts one ``ReadRegion`` tuple per
  region; region tuples are mutually ``par`` so all readers run in one
  all-minimums step — Fig 7's phase 1.  Region boundary handling uses
  the Hadoop-style read-past-the-end protocol (:mod:`repro.csvio.split`).
* **-noDelta PvWatts** (§5.1/§6.2): pass
  ``no_delta={"PvWatts"}`` in :class:`ExecOptions` — tuples go straight
  to Gamma and the SumMonth rule fires inside the reader task.
* **custom Gamma store** (§6.2): :func:`array_of_hashsets_store` /
  :func:`hash_index_store` give the month-array and hash-index
  replacements for the PvWatts table benchmarked in Fig 8.

Since file I/O is a side effect, the reading rules are ``unsafe``
system rules (§1.2 footnote 1); "files" are provided through an
in-memory registry (filename → bytes), keeping runs hermetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core import ExecOptions, Program, RunResult, Statistics
from repro.core.tuples import TableHandle
from repro.csvio import PVWATTS_INT_POSITIONS, read_region, split_regions
from repro.gamma import ArrayOfHashSetsStore, HashIndexStore
from repro.solver import RuleMeta

__all__ = [
    "PvWattsHandles",
    "build_pvwatts_program",
    "run_pvwatts",
    "month_means_from_output",
    "array_of_hashsets_store",
    "hash_index_store",
]

_N_FIELDS = 5


@dataclass
class PvWattsHandles:
    program: Program
    PvWattsRequest: TableHandle
    ReadRegion: TableHandle
    PvWatts: TableHandle
    SumMonth: TableHandle


def build_pvwatts_program(
    files: Mapping[str, bytes],
    filename: str = "large1000.csv",
    n_readers: int = 1,
    declare_order: bool = True,
) -> PvWattsHandles:
    """Build the Fig 4 program over an in-memory file registry.

    ``declare_order=False`` omits the ``order Req < PvWatts < SumMonth``
    declaration — reproducing the paper's remark that the program then
    fails stratification (§6.1); the static checker and the runtime
    warner both flag it.
    """
    p = Program("pvwatts")
    PvWattsRequest = p.table("PvWattsRequest", "str filename", orderby=("Req",))
    ReadRegion = p.table(
        "ReadRegion", "str filename, int start, int end", orderby=("Req", "par start")
    )
    PvWatts = p.table(
        "PvWatts",
        "int year, int month, int day, str hour, int power",
        orderby=("PvWatts",),
    )
    SumMonth = p.table("SumMonth", "int year, int month", orderby=("SumMonth",))
    if declare_order:
        p.order("Req", "PvWatts", "SumMonth")

    @p.foreach(PvWattsRequest, unsafe=True)
    def split_input(ctx, req):
        """Cut the input file into reader regions (Fig 7 phase 1)."""
        ctx.io_allowed()
        data = files[req.filename]
        for start, end in split_regions(len(data), n_readers):
            ctx.put(ReadRegion.new(req.filename, start, end))

    @p.foreach(ReadRegion, unsafe=True)
    def read_loop(ctx, region):
        """One parallel CSV reader (byte-oriented, §6.1)."""
        ctx.io_allowed()
        data = files[region.filename]

        def on_record(rec: tuple) -> None:
            y, m, d, hour, power = rec
            ctx.put(PvWatts.new(y, m, d, hour.decode("ascii"), power))

        n = read_region(
            data, region.start, region.end, PVWATTS_INT_POSITIONS, _N_FIELDS, on_record
        )
        ctx.charge(0.6 * n, "csv_parse")
        ctx.charge(0.2 * n, "io_record")

    # solver metadata for the two pure rules (the paper's SMT targets)
    meta_sum = RuleMeta(PvWatts)
    ts = meta_sum.trigger
    meta_sum.branch().put(SumMonth, year=ts["year"], month=ts["month"])

    @p.foreach(PvWatts, meta=meta_sum)
    def make_summonth(ctx, pv):
        ctx.put(SumMonth.new(pv.year, pv.month))

    from repro.core.query import QueryKind

    meta_avg = RuleMeta(SumMonth)
    tm = meta_avg.trigger
    meta_avg.branch().query(
        PvWatts, kind=QueryKind.AGGREGATE, year=tm["year"], month=tm["month"]
    )

    @p.foreach(SumMonth, meta=meta_avg)
    def average_month(ctx, s):
        stats = ctx.reduce(
            PvWatts,
            s.year,
            s.month,
            reducer=Statistics(),
            value=lambda rec: rec.power,
        )
        ctx.println(f"{s.year}/{s.month}: {stats.mean:.3f}")

    p.put(PvWattsRequest.new(filename))
    return PvWattsHandles(p, PvWattsRequest, ReadRegion, PvWatts, SumMonth)


# -- Gamma store alternatives for the PvWatts table (Fig 8) -----------------


def array_of_hashsets_store(concurrent: bool = True):
    """The paper's custom month-array store (§6.2)."""

    def factory(schema):
        return ArrayOfHashSetsStore(schema, "month", 1, 12, concurrent=concurrent)

    return factory


def hash_index_store(concurrent: bool = True):
    """HashSet/ConcurrentHashMap indexed by (year, month)."""

    def factory(schema):
        return HashIndexStore(schema, ("year", "month"), concurrent=concurrent)

    return factory


# -- convenience runners ------------------------------------------------------


def run_pvwatts(
    data: bytes,
    options: ExecOptions | None = None,
    n_readers: int = 1,
    filename: str = "large1000.csv",
) -> RunResult:
    handles = build_pvwatts_program({filename: data}, filename, n_readers)
    return handles.program.run(options or ExecOptions())


def month_means_from_output(output: list[str]) -> dict[tuple[int, int], float]:
    """Parse the program's println lines back into {(year, month): mean}."""
    out: dict[tuple[int, int], float] = {}
    for line in output:
        head, _, mean = line.partition(": ")
        y, _, m = head.partition("/")
        out[(int(y), int(m))] = float(mean)
    return out
