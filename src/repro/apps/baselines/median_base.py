"""Hand-coded median baselines (§6.1's Java comparator).

"The JStar Median program is twice as fast as the Java version, because
the Java program uses ``Arrays.sort`` (a double-pivot quicksort) to
find the median, whereas the JStar program uses a median-specific
variant of quicksort that partitions the whole array, but then recurses
only into the half of the array that contains the median."

Baseline mapping (consistent with the other Fig 6 baselines, which are
hand-coded *Python* idioms):

* :func:`median_sort_baseline` — the hand-coded idiom: standard-library
  full sort, then index (``Arrays.sort`` ↦ ``sorted``).
* :func:`median_npsort_baseline` — the same algorithm on the unboxed
  substrate (numpy introsort); paired with ``np.partition`` in
  :func:`kernel_comparison` it isolates the paper's algorithmic claim
  (selection beats full sort ≈2×) from interpreter effects.
* :func:`quickselect_reference` — sequential selection reference used
  as ground truth by tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "median_sort_baseline",
    "median_npsort_baseline",
    "quickselect_reference",
    "kernel_comparison",
]


def median_sort_baseline(values: np.ndarray) -> float:
    """Hand-coded idiom: full standard-library sort, then take the
    lower median (the ``Arrays.sort`` way)."""
    ordered = sorted(values.tolist())
    return float(ordered[(len(ordered) - 1) // 2])


def median_npsort_baseline(values: np.ndarray) -> float:
    """Full sort on the unboxed substrate (numpy introsort)."""
    return float(np.sort(values)[(len(values) - 1) // 2])


def quickselect_reference(values: np.ndarray) -> float:
    """Iterative quickselect, recursing only into the half containing
    the median — the algorithm the JStar program distributes."""
    arr = values.copy()
    k = (len(arr) - 1) // 2
    while True:
        if len(arr) == 1:
            return float(arr[0])
        pivot = arr[0]
        below = arr[arr < pivot]
        equal = arr[arr == pivot]
        if k < len(below):
            arr = below
        elif k < len(below) + len(equal):
            return float(pivot)
        else:
            k -= len(below) + len(equal)
            arr = arr[arr > pivot]


def kernel_comparison(values: np.ndarray) -> tuple[float, float]:
    """(selection result, full-sort result) computed with the two C
    kernels (``np.partition`` vs ``np.sort``) — the §6.1 algorithmic
    claim in isolation; both must agree."""
    k = (len(values) - 1) // 2
    sel = float(np.partition(values, k)[k])
    srt = float(np.sort(values)[k])
    return sel, srt
