"""Hand-coded Dijkstra baseline (§6.1's Java comparator).

"The JStar Dijkstra program is twice as slow as the Java version,
because it pushes several million Estimate tuples through the JStar
Delta tree data structures, and these are slightly less efficient than
the PriorityQueue that the Java program uses."  The baseline therefore
uses the binary-heap priority queue (:mod:`heapq`, Java's
``PriorityQueue`` analogue) over a plain adjacency list.
"""

from __future__ import annotations

import heapq

__all__ = ["dijkstra_baseline", "adjacency"]


def adjacency(edges: list[tuple[int, int, int]], n: int) -> list[list[tuple[int, int]]]:
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for s, d, w in edges:
        adj[s].append((d, w))
    return adj


def dijkstra_baseline(
    edges: list[tuple[int, int, int]], n: int, source: int = 0
) -> dict[int, int]:
    """Classic lazy-deletion heap Dijkstra; returns vertex -> distance
    for every reachable vertex."""
    adj = adjacency(edges, n)
    dist: dict[int, int] = {}
    heap: list[tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for u, w in adj[v]:
            if u not in dist:
                heapq.heappush(heap, (d + w, u))
    return dist
