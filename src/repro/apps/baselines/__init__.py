"""Hand-coded imperative baselines — the 'Java' side of Fig 6."""

from repro.apps.baselines.matmul_base import matmul_naive, matmul_transposed
from repro.apps.baselines.median_base import median_sort_baseline, quickselect_reference
from repro.apps.baselines.pvwatts_base import baseline_output_lines, pvwatts_baseline
from repro.apps.baselines.shortestpath_base import adjacency, dijkstra_baseline

__all__ = [
    "matmul_naive",
    "matmul_transposed",
    "median_sort_baseline",
    "quickselect_reference",
    "pvwatts_baseline",
    "baseline_output_lines",
    "dijkstra_baseline",
    "adjacency",
]
