"""Hand-coded matrix-multiplication baselines (Fig 6's Java bars).

* :func:`matmul_naive` — the "naive Java matrix multiplication
  program" (7.5 s in the paper): triple loop over row-major arrays,
  with the inner loop striding down B's columns (the cache-unfriendly
  access the paper calls out).  Python analogue: per-element double
  indexing ``b[k][j]``.
* :func:`matmul_transposed` — "an obvious improvement ... of
  transposing one of the matrices before multiplying them (so that the
  inner loop is going sequentially through both matrices and is more
  cache-friendly)" (1.0 s).  Python analogue: transpose once, then run
  the inner loop as a ``zip`` product over two flat sequences — the
  same sequential-traversal payoff, realised through iterator speed
  instead of cache lines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["matmul_naive", "matmul_transposed"]


def matmul_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple loop, column-striding inner access (the 7.5 s bar)."""
    n = a.shape[0]
    al = a.tolist()
    bl = b.tolist()
    out = [[0] * n for _ in range(n)]
    for i in range(n):
        ai = al[i]
        oi = out[i]
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += ai[k] * bl[k][j]
            oi[j] = acc
    return np.array(out, dtype=np.int64)


def matmul_transposed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Transpose-then-multiply, sequential inner traversal (the 1.0 s bar).

    The inner product runs as ``sum(map(mul, ai, bj))`` over two flat
    row lists — CPython's fastest pure-interpreter sequential traversal.
    The *direction* of the paper's 7.5× gap reproduces; the magnitude
    does not, because it comes from cache-line behaviour that a bytecode
    interpreter cannot exhibit (documented in EXPERIMENTS.md).
    """
    from operator import mul

    al = a.tolist()
    btl = b.T.tolist()  # one transposition up front
    out = [[sum(map(mul, ai, bj)) for bj in btl] for ai in al]
    return np.array(out, dtype=np.int64)
