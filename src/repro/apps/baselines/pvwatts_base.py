"""Hand-coded PvWatts baseline — the paper's Java comparator (§6.1).

"The Java program uses the typical input reading style of
``BufferedReader.readline`` plus ``String.split`` to read the input CSV
file": the Python analogue decodes the whole buffer and splits
per-line strings (:func:`repro.csvio.reader.read_records_text`), then
accumulates per-month sums imperatively.  Fig 6 compares this against
the JStar program, whose byte-oriented reader skips the decode — the
reproduction keeps that exact asymmetry.
"""

from __future__ import annotations

from repro.csvio import PVWATTS_INT_POSITIONS
from repro.csvio.reader import read_records_text

__all__ = ["pvwatts_baseline", "baseline_output_lines"]

_N_FIELDS = 5


def pvwatts_baseline(data: bytes) -> dict[tuple[int, int], float]:
    """Per-(year, month) mean power, hand-coded imperative style."""
    sums: dict[tuple[int, int], int] = {}
    counts: dict[tuple[int, int], int] = {}
    for rec in read_records_text(data, PVWATTS_INT_POSITIONS, _N_FIELDS):
        y, m = rec[0], rec[1]
        p = rec[4]
        key = (y, m)
        if key in sums:
            sums[key] += p
            counts[key] += 1
        else:
            sums[key] = p
            counts[key] = 1
    return {k: sums[k] / counts[k] for k in sums}


def baseline_output_lines(means: dict[tuple[int, int], float]) -> list[str]:
    """Same formatting as the JStar program's println, for comparison."""
    return [f"{y}/{m}: {v:.3f}" for (y, m), v in sorted(means.items())]
