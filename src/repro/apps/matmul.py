"""The naive matrix-multiplication case study (§6.1, §6.4, Fig 11).

"Each matrix multiplication is requested via a tuple, and that tuple
generates one row request tuple for each output row of the matrix.
Each row request tuple triggers a rule that loops over all the columns
of that row, and uses a nested loop with a summation reducer to
calculate the dot product results."  (§6)

Tables::

    table Matrix(int mat, int row, int col -> int value)   # §6.4's example
    table MultRequest(int a, int b, int c, int n) orderby (Req)
    table RowRequest(int c, int row) orderby (Row, par row)
    order Mat < Req < Row

The Matrix table uses the **native-arrays** Gamma optimisation (§6.4:
"we used a Java 2D array of integers for the gamma set of each
matrix") — a numpy-backed :class:`NativeArrayStore` here — and is
``-noDelta``/non-triggering, so "only one tuple per row of the output
matrix needs to go through the delta set".

Three inner-loop variants reproduce Fig 6's three JStar/Java bars:

* ``boxed`` — every element access goes through the Gamma store's
  per-element lookup (the XText 2.3 boxed-Integer code, 21.9 s);
* ``unboxed`` — rows are pulled into plain Python int lists once and
  the dot products loop over those (the hand-corrected primitive-int
  version, 8.1 s — comparable to naive Java);
* ``native`` — the row is one numpy mat-vec (what generated code could
  do with full native-array awareness; used for the big Fig 11 runs).

RowRequest tasks are mutually ``par``, so one all-minimums step runs
every row in parallel — the "embarrassingly parallel" structure with a
"high computation to communication ratio" behind Fig 11's near-linear
speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core import ExecOptions, Program, RunResult
from repro.core.tuples import TableHandle
from repro.gamma import NativeArrayStore
from repro.solver import RuleMeta

__all__ = ["MatMulHandles", "build_matmul_program", "run_matmul", "random_matrix"]

Variant = Literal["boxed", "unboxed", "native"]

#: per-multiply abstract work (drives Fig 11's virtual time)
_MUL_COST = {"boxed": 3.0, "unboxed": 1.0, "native": 0.08}


def random_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-10, 11, size=(n, n), dtype=np.int64)


@dataclass
class MatMulHandles:
    program: Program
    Matrix: TableHandle
    MultRequest: TableHandle
    RowRequest: TableHandle


def build_matmul_program(
    a: np.ndarray,
    b: np.ndarray,
    variant: Variant = "unboxed",
) -> MatMulHandles:
    """Multiply ``a @ b`` (matrix ids: a=0, b=1, result c=2)."""
    if a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise ValueError("square same-shape matrices required")
    n = a.shape[0]

    p = Program("matmul")
    Matrix = p.table("Matrix", "int mat, int row, int col -> int value", orderby=("Mat",))
    MultRequest = p.table("MultRequest", "int a, int b, int c, int n", orderby=("Req",))
    RowRequest = p.table("RowRequest", "int c, int row", orderby=("Row", "par row"))
    p.order("Mat", "Req", "Row")

    @p.foreach(MultRequest, unsafe=True)
    def load_and_split(ctx, req):
        """Load the operand matrices in bulk (native arrays) and put one
        RowRequest per output row."""
        store: NativeArrayStore = ctx.native(Matrix)  # type: ignore[assignment]
        store.bulk_set((0,), a)
        store.bulk_set((1,), b)
        ctx.charge(0.05 * 2 * n * n, "user_work")
        for row in range(req.n):
            ctx.put(RowRequest.new(req.c, row))

    meta_row = RuleMeta(RowRequest)
    # RowRequest puts nothing through the engine (native result writes),
    # and only reads Mat < Row — declared as a positive query.
    from repro.core.query import QueryKind

    meta_row.branch().query(Matrix, kind=QueryKind.POSITIVE)

    @p.foreach(RowRequest, meta=meta_row, unsafe=True)
    def compute_row(ctx, rr):
        """One output row: n dot products (the §6 nested reducer loop)."""
        store: NativeArrayStore = ctx.native(Matrix)  # type: ignore[assignment]
        arr = store.array
        row = rr.row
        if variant == "native":
            out = arr[0, row, :] @ arr[1]
        elif variant == "unboxed":
            # primitive-int analogue: plain Python ints in lists
            a_row = arr[0, row, :].tolist()
            b_rows = [arr[1, k, :].tolist() for k in range(n)]
            out = [
                sum(a_row[k] * b_rows[k][col] for k in range(n))
                for col in range(n)
            ]
            out = np.array(out, dtype=np.int64)
        else:  # boxed: arithmetic on boxed scalars, as XText 2.3 generated.
            # Indexing a numpy array element-wise yields boxed np.int64
            # objects whose arithmetic pays the same allocate-and-unbox
            # tax as Java's Integer in the paper's inner loop.
            a_row = arr[0, row]
            b_mat = arr[1]
            out = np.zeros(n, dtype=np.int64)
            for col in range(n):
                acc = 0
                for k in range(n):
                    acc += a_row[k] * b_mat[k][col]
                out[col] = acc
        store.bulk_set((2, row), out)
        work = _MUL_COST[variant] * n * n
        ctx.charge(work, "user_work")
        # a dot-product row streams 2N^2 operand elements: ~2 % of its
        # work is memory-bandwidth-bound, the shared resource that
        # flattens Fig 11 beyond ~20 cores
        ctx.charge_shared("membw", 0.02 * work)

    p.put(MultRequest.new(0, 1, 2, n))
    return MatMulHandles(p, Matrix, MultRequest, RowRequest)


def run_matmul(
    a: np.ndarray,
    b: np.ndarray,
    options: ExecOptions | None = None,
    variant: Variant = "unboxed",
) -> tuple[RunResult, np.ndarray]:
    """Run the program; returns (result, the product matrix C)."""
    n = a.shape[0]
    handles = build_matmul_program(a, b, variant)
    opts = options or ExecOptions()
    opts = opts.with_(
        store_overrides={
            **dict(opts.store_overrides),
            "Matrix": lambda schema: NativeArrayStore(schema, (3, n, n)),
        }
    )
    result = handles.program.run(opts)
    store = result.require_database().store("Matrix")
    assert isinstance(store, NativeArrayStore)
    return result, store.array[2].copy()
