"""The Space-Invaders Ship walkthrough (§3, Fig 2).

A single ship moves right across the screen in 150-pixel jumps, then
descends slowly, then moves left — all recorded as immutable tuples
with the ``frame`` field as timestamp.  The program reproduces Fig 2's
table exactly (8 frames) and carries full solver metadata, so it also
serves as the quickstart example and the causality-prover demo.
"""

from __future__ import annotations

from repro.core import ExecOptions, Program, RunResult
from repro.core.tuples import TableHandle
from repro.solver import RuleMeta

__all__ = ["FIG2_TRACE", "build_ship_program", "run_ship", "ship_trace"]

#: the Ship table of Fig 2: (frame, x, y, dx, dy)
FIG2_TRACE: list[tuple[int, int, int, int, int]] = [
    (0, 10, 10, 150, 0),
    (1, 160, 10, 150, 0),
    (2, 310, 10, 150, 0),
    (3, 460, 10, 0, 10),
    (4, 460, 20, 0, 10),
    (5, 460, 30, -150, 0),
    (6, 310, 30, -150, 0),
    (7, 160, 30, -150, 0),
]

RIGHT_EDGE = 460
BOTTOM = 30
LEFT_EDGE = 10


def build_ship_program() -> tuple[Program, TableHandle]:
    """The Ship program: one table, one rule, one initial put."""
    p = Program("ship")
    Ship = p.table(
        "Ship",
        "int frame -> int x, int y, int dx, int dy",
        orderby=("Int", "seq frame"),
    )

    # solver metadata: every branch puts into frame + 1
    meta = RuleMeta(Ship)
    t = meta.trigger
    for when in (
        [t["dx"] > 0, t["x"] + t["dx"] >= RIGHT_EDGE],
        [t["dx"] > 0, t["x"] + t["dx"] < RIGHT_EDGE],
        [t["dy"] > 0, t["y"] + t["dy"] >= BOTTOM],
        [t["dy"] > 0, t["y"] + t["dy"] < BOTTOM],
        [t["dx"] < 0, t["x"] + t["dx"] > LEFT_EDGE],
    ):
        meta.branch(when=when).put(Ship, frame=t["frame"] + 1)

    @p.foreach(Ship, meta=meta)
    def fly(ctx, s):
        """Right until the edge, down twice, then left until done."""
        if s.dx > 0:  # moving right
            nx = s.x + s.dx
            if nx >= RIGHT_EDGE:
                ctx.put(Ship.new(s.frame + 1, RIGHT_EDGE, s.y, 0, 10))
            else:
                ctx.put(Ship.new(s.frame + 1, nx, s.y, s.dx, s.dy))
        elif s.dy > 0:  # descending
            ny = s.y + s.dy
            if ny >= BOTTOM:
                ctx.put(Ship.new(s.frame + 1, s.x, BOTTOM, -150, 0))
            else:
                ctx.put(Ship.new(s.frame + 1, s.x, ny, s.dx, s.dy))
        elif s.dx < 0:  # moving left; stop once the left edge is reached
            nx = s.x + s.dx
            if nx > LEFT_EDGE:
                ctx.put(Ship.new(s.frame + 1, nx, s.y, s.dx, s.dy))

    p.put(Ship.new(*FIG2_TRACE[0]))
    return p, Ship


def run_ship(options: ExecOptions | None = None) -> RunResult:
    p, _ = build_ship_program()
    return p.run(options or ExecOptions())


def ship_trace(result: RunResult) -> list[tuple[int, int, int, int, int]]:
    """Extract the Ship table from a finished run, frame-ordered."""
    store = result.require_database().store("Ship")
    return sorted(tuple(t.values) for t in store.scan())
