"""The paper's case-study programs (§6) and the Fig 2 Ship walkthrough,
written in the embedded JStar DSL, plus hand-coded baselines
(`repro.apps.baselines`) standing in for the paper's Java comparators.
"""

from repro.apps import baselines
from repro.apps.matmul import build_matmul_program, random_matrix, run_matmul
from repro.apps.median import (
    build_median_program,
    median_from_result,
    random_doubles,
    run_median,
)
from repro.apps.pvwatts import (
    array_of_hashsets_store,
    build_pvwatts_program,
    hash_index_store,
    month_means_from_output,
    run_pvwatts,
)
from repro.apps.pvwatts_disruptor import (
    DisruptorConfig,
    run_disruptor_simulated,
    run_disruptor_threaded,
)
from repro.apps.sensors import alerts_from_output, build_sensor_program, run_sensors
from repro.apps.ship import FIG2_TRACE, build_ship_program, run_ship, ship_trace
from repro.apps.shortestpath import (
    GraphSpec,
    build_shortestpath_program,
    distances_from_result,
    make_graph,
    recommended_options,
    run_shortestpath,
)

__all__ = [
    "baselines",
    "FIG2_TRACE",
    "build_ship_program",
    "run_ship",
    "ship_trace",
    "build_pvwatts_program",
    "run_pvwatts",
    "month_means_from_output",
    "array_of_hashsets_store",
    "hash_index_store",
    "DisruptorConfig",
    "run_disruptor_threaded",
    "run_disruptor_simulated",
    "build_matmul_program",
    "run_matmul",
    "random_matrix",
    "GraphSpec",
    "make_graph",
    "build_shortestpath_program",
    "run_shortestpath",
    "recommended_options",
    "distances_from_result",
    "build_median_program",
    "run_median",
    "median_from_result",
    "random_doubles",
    "build_sensor_program",
    "run_sensors",
    "alerts_from_output",
]
