"""The Median-Finding case study (§6, §6.6, Fig 13).

"Unlike most JStar programs ... this program uses a more explicitly
parallel algorithm.  It chooses a global pivot value, divides the
array into N consecutive regions, partitions each of those regions
using the pivot value (similar to a Quicksort) and reports the size of
those partitions back to a central controller.  The controller then
repeats this process (each time focusing on the partitions that must
contain the median value) until only one value is left in the
partition, which is the median."

Tables (all under the per-iteration timestamp ``(Int, seq iter, L)``
with literal order ``Data < Pivot < Region < Result < Ctrl``)::

    table Data(int iter, int index -> double value)
        orderby (Int, seq iter, Data, seq index)           # §6.6 verbatim
    table Pivot(int iter -> double value)
    table Region(int iter, int region, int lo, int hi)     # par region
    table RegionResult(int iter, int region -> ...)        # par region
    table Ctrl(int iter -> int k)
    table MedianResult(double value)

Within one iteration the Delta ordering alone sequences the phases:
pivot and region tasks pop first, their results next, the controller
last — no other synchronisation exists in the program.  Across
iterations the ``seq iter`` level advances time.

Data storage uses the paper's combined optimisation (§6.6): a
:class:`~repro.gamma.nativearray.TwoIterationArrayStore`
(``double[2][N]``, ``iter % 2`` plane selection — native arrays + the
keep-two-iterations Gamma GC hint), written in bulk by unsafe rules
through ``ctx.native`` instead of per-tuple puts.  Each region task
partitions its slice of plane *i* into plane *i+1* at the same
positions; the kept side stays contiguous *within each region*, so the
controller can narrow every region's active slice without ever
compacting the array.  Each region's result carries a sample from both
sides, so the next pivot is chosen causally (from data already
reported), never by peeking at iteration *i+1*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ExecOptions, Program, RunResult
from repro.core.tuples import TableHandle
from repro.gamma import TwoIterationArrayStore

__all__ = [
    "MedianHandles",
    "build_median_program",
    "run_median",
    "median_from_result",
    "random_doubles",
]


def random_doubles(n: int, seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).random(n)


@dataclass
class MedianHandles:
    program: Program
    Data: TableHandle
    Region: TableHandle
    RegionResult: TableHandle
    Ctrl: TableHandle
    MedianResult: TableHandle


def build_median_program(values: np.ndarray, n_regions: int = 24) -> MedianHandles:
    """Find the lower median (index ``(n-1)//2`` of the sorted order)."""
    n = len(values)
    if n == 0:
        raise ValueError("median of an empty array")
    n_regions = max(1, min(n_regions, n))

    p = Program("median")
    MedianRequest = p.table("MedianRequest", "int n", orderby=("Req",))
    Data = p.table(
        "Data",
        "int iter, int index -> float value",
        orderby=("Int", "seq iter", "Data", "seq index"),
    )
    Pivot = p.table("Pivot", "int iter -> float value", orderby=("Int", "seq iter", "Pivot"))
    Region = p.table(
        "Region",
        "int iter, int region, int lo, int hi",
        orderby=("Int", "seq iter", "Region", "par region"),
    )
    RegionResult = p.table(
        "RegionResult",
        "int iter, int region -> int lo, int hi, int below, int equal, "
        "float sample_below, float sample_above",
        orderby=("Int", "seq iter", "Result", "par region"),
    )
    Ctrl = p.table("Ctrl", "int iter -> int k", orderby=("Int", "seq iter", "Ctrl"))
    MedianResult = p.table("MedianResult", "float value", orderby=("Out",))
    p.order("Req", "Int", "Out")
    p.order("Data", "Pivot", "Region", "Result", "Ctrl")

    @p.foreach(MedianRequest, unsafe=True)
    def init(ctx, req):
        """Bulk-load plane 0, pick the first pivot, spawn the regions."""
        store: TwoIterationArrayStore = ctx.native(Data)  # type: ignore[assignment]
        store.bulk_set(0, 0, values)
        ctx.charge(0.05 * n, "user_work")
        ctx.put(Pivot.new(0, float(values[0])))
        chunk = (n + n_regions - 1) // n_regions
        for r in range(n_regions):
            lo, hi = r * chunk, min((r + 1) * chunk, n)
            if lo < hi:
                ctx.put(Region.new(0, r, lo, hi))
        ctx.put(Ctrl.new(0, (n - 1) // 2))

    @p.foreach(Region, unsafe=True)
    def partition_region(ctx, reg):
        """Partition this region's slice of plane ``iter`` around the
        global pivot into plane ``iter + 1`` (same positions)."""
        store: TwoIterationArrayStore = ctx.native(Data)  # type: ignore[assignment]
        pivot_t = ctx.get_uniq(Pivot, iter=reg.iter)
        assert pivot_t is not None, "pivot must precede regions in the Delta order"
        pivot = pivot_t.value
        src = store.plane_for(reg.iter, create=False)
        assert src is not None
        dst = store.plane_for(reg.iter + 1)
        assert dst is not None
        sl = src[reg.lo : reg.hi]
        below = sl[sl < pivot]
        above = sl[sl > pivot]
        nb, na = below.size, above.size
        ne = sl.size - nb - na
        # write the partitioned arrangement straight into this region's
        # slice of the next plane (no concatenate allocation)
        dst[reg.lo : reg.lo + nb] = below
        dst[reg.lo + nb : reg.lo + nb + ne] = pivot
        dst[reg.lo + nb + ne : reg.hi] = above
        store.note_written(reg.iter + 1, reg.hi)
        ctx.charge(1.0 * (reg.hi - reg.lo), "user_work")
        ctx.put(
            RegionResult.new(
                reg.iter,
                reg.region,
                reg.lo,
                reg.hi,
                int(nb),
                int(ne),
                float(below[0]) if nb else 0.0,
                float(above[0]) if na else 0.0,
            )
        )

    @p.foreach(RegionResult)
    def request_control(ctx, res):
        """Every result pings the controller; set semantics collapse the
        pings to one Ctrl firing per iteration (the SumMonth pattern)."""
        # Ctrl(iter, k) was already put by the previous controller (or
        # init); nothing to do — this rule exists for fidelity with the
        # paper's 'reports back to a central controller' description and
        # gives the stats/graph view the Result -> Ctrl edge.
        ctx.charge(0.2, "user_work")

    @p.foreach(Ctrl, assume_stratified=True)
    def control(ctx, c):
        """The central controller: pick the side containing index k."""
        results = ctx.get(RegionResult, iter=c.iter)
        results.sort(key=lambda r: r.region)
        total = sum(r.hi - r.lo for r in results)
        below = sum(r.below for r in results)
        equal = sum(r.equal for r in results)
        ctx.charge(2.0 * len(results) + 5.0, "user_work")
        k = c.k
        if below <= k < below + equal:
            # the pivot IS the median
            pivot_t = ctx.get_uniq(Pivot, iter=c.iter)
            assert pivot_t is not None
            ctx.put(MedianResult.new(pivot_t.value))
            ctx.println(f"median is {pivot_t.value!r}")
            return
        keep_below = k < below
        nxt = c.iter + 1
        new_k = k if keep_below else k - below - equal
        pivot_value = None
        new_regions = []
        for r in results:
            if keep_below:
                lo, hi = r.lo, r.lo + r.below
                sample = r.sample_below
            else:
                lo, hi = r.lo + r.below + r.equal, r.hi
                sample = r.sample_above
            if lo < hi:
                new_regions.append((r.region, lo, hi))
                if pivot_value is None:
                    pivot_value = sample
        assert new_regions, "median index must fall in some region"
        if sum(hi - lo for _, lo, hi in new_regions) == 1:
            # single survivor: it is the median; its value is the sample
            assert new_k == 0
            ctx.put(MedianResult.new(pivot_value))
            ctx.println(f"median is {pivot_value!r}")
            return
        ctx.put(Pivot.new(nxt, pivot_value))
        for region, lo, hi in new_regions:
            ctx.put(Region.new(nxt, region, lo, hi))
        ctx.put(Ctrl.new(nxt, new_k))
        del total

    p.put(MedianRequest.new(n))
    return MedianHandles(p, Data, Region, RegionResult, Ctrl, MedianResult)


def run_median(
    values: np.ndarray,
    options: ExecOptions | None = None,
    n_regions: int = 24,
) -> RunResult:
    handles = build_median_program(values, n_regions)
    opts = options or ExecOptions()
    n = len(values)
    opts = opts.with_(
        store_overrides={
            **dict(opts.store_overrides),
            "Data": lambda schema: TwoIterationArrayStore(schema, n),
        },
        # RegionResult/Region/Pivot tuples are consumed within their
        # iteration only; Ctrl is keyed per iteration. Data never
        # transits the Delta tree at all (native bulk writes).
    )
    return handles.program.run(opts)


def median_from_result(result: RunResult) -> float:
    rows = list(result.require_database().store("MedianResult").scan())
    if len(rows) != 1:
        raise AssertionError(f"expected one MedianResult, got {rows}")
    return rows[0].value
