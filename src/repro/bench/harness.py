"""Benchmark harness utilities shared by ``benchmarks/``.

Implements the paper's measurement protocol (§6.2): "Each program was
run at least 20 times, the first 6 measurements (while the Hotspot
compiler optimises the code) were ignored and then the average of the
remaining times was taken" — :func:`timed_average` (scaled-down counts
by default; CPython has no JIT warm-up, but the discard protocol is
kept for fidelity and to shed cold-cache noise).

Speedup bookkeeping follows footnote 11: "Relative speedup is the
speedup relative to the parallel version running with one thread, while
absolute speedup is relative to the fastest sequential or
single-threaded parallel version."
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["timed_average", "SpeedupSeries", "speedup_series"]


def timed_average(
    fn: Callable[[], object],
    runs: int = 8,
    discard: int = 2,
) -> float:
    """Mean wall-clock seconds over ``runs`` calls, first ``discard``
    ignored (the paper's ≥20-run / drop-6 protocol, scaled)."""
    if runs <= discard:
        raise ValueError("need runs > discard")
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    kept = times[discard:]
    return sum(kept) / len(kept)


@dataclass(frozen=True)
class SpeedupSeries:
    """One speedup-vs-threads curve (one line of Figs 8/11/12/13)."""

    label: str
    threads: tuple[int, ...]
    elapsed: tuple[float, ...]  # virtual time per thread count
    sequential: float | None = None  # the -sequential reference, if any

    @property
    def relative(self) -> tuple[float, ...]:
        """Speedup vs the 1-thread parallel run (footnote 11)."""
        base = self.elapsed[self.threads.index(1)] if 1 in self.threads else self.elapsed[0]
        return tuple(base / e for e in self.elapsed)

    @property
    def absolute(self) -> tuple[float, ...]:
        """Speedup vs the fastest of {sequential, 1-thread parallel}."""
        candidates = [self.elapsed[self.threads.index(1)]] if 1 in self.threads else [self.elapsed[0]]
        if self.sequential is not None:
            candidates.append(self.sequential)
        base = min(candidates)
        return tuple(base / e for e in self.elapsed)

    def rows(self) -> list[tuple[int, float, float, float]]:
        rel, ab = self.relative, self.absolute
        return [
            (t, e, r, a)
            for t, e, r, a in zip(self.threads, self.elapsed, rel, ab)
        ]

    def format(self) -> str:
        lines = [f"== {self.label} =="]
        if self.sequential is not None:
            lines.append(f"sequential reference: {self.sequential:.1f} wu")
        lines.append("threads  elapsed(wu)  relative  absolute")
        for t, e, r, a in self.rows():
            lines.append(f"{t:7d}  {e:11.1f}  {r:8.2f}  {a:8.2f}")
        return "\n".join(lines)


def speedup_series(
    label: str,
    threads: Sequence[int],
    run: Callable[[int], float],
    sequential: float | None = None,
) -> SpeedupSeries:
    """Sweep ``run(n_threads) -> elapsed`` over a thread list."""
    elapsed = tuple(run(t) for t in threads)
    return SpeedupSeries(label, tuple(threads), elapsed, sequential)
