"""Benchmark harness utilities (paper's §6 measurement protocol)."""

from repro.bench.figures import FigureRow, comparison_block, figure_block
from repro.bench.harness import SpeedupSeries, speedup_series, timed_average

__all__ = [
    "timed_average",
    "SpeedupSeries",
    "speedup_series",
    "FigureRow",
    "figure_block",
    "comparison_block",
]
