"""Row/series formatters: print each table/figure the way the paper
reports it, side by side with the paper's numbers.

Every benchmark in ``benchmarks/`` ends by printing one of these
blocks, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
full evaluation section in text form; EXPERIMENTS.md records one frozen
copy with commentary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["FigureRow", "figure_block", "comparison_block"]


@dataclass(frozen=True)
class FigureRow:
    label: str
    measured: float
    paper: float | None = None
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


def figure_block(title: str, rows: Sequence[FigureRow], note: str = "") -> str:
    """A measured-vs-paper table."""
    out = [f"### {title}"]
    width = max((len(r.label) for r in rows), default=10)
    out.append(f"{'case'.ljust(width)}  {'measured':>12}  {'paper':>10}")
    for r in rows:
        paper = f"{r.paper:.2f}" if r.paper is not None else "—"
        out.append(
            f"{r.label.ljust(width)}  {r.measured:12.3f}  {paper:>10}"
            + (f" {r.unit}" if r.unit else "")
        )
    if note:
        out.append(f"note: {note}")
    return "\n".join(out)


def comparison_block(
    title: str,
    pairs: Sequence[tuple[str, float, float]],
    paper_ratios: dict[str, float] | None = None,
    note: str = "",
) -> str:
    """A 'who wins, by what factor' table: (label, ours, theirs)."""
    out = [f"### {title}"]
    width = max((len(p[0]) for p in pairs), default=10)
    out.append(
        f"{'pair'.ljust(width)}  {'a':>12}  {'b':>12}  {'a/b':>7}  {'paper a/b':>9}"
    )
    for label, a, b in pairs:
        ratio = a / b if b else float("inf")
        paper = (paper_ratios or {}).get(label)
        paper_s = f"{paper:.2f}" if paper is not None else "—"
        out.append(
            f"{label.ljust(width)}  {a:12.4f}  {b:12.4f}  {ratio:7.2f}  {paper_s:>9}"
        )
    if note:
        out.append(f"note: {note}")
    return "\n".join(out)
