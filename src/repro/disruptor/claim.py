"""Producer claim strategies (Table 1's ``Claim Strategy`` row).

The paper uses ``SingleThreaded-ClaimStrategy`` with one producer
claiming slots "in a batch of 256".  We implement:

* :class:`SingleThreadedClaimStrategy` — no synchronisation on claim
  (only one producer exists); wrap-protection spins until the gating
  consumers free space;
* :class:`MultiThreadedClaimStrategy` — a lock-arbitrated variant for
  multiple producers (the Java version uses CAS; a lock gives the same
  semantics under the GIL), with out-of-order publishes buffered until
  the cursor can advance contiguously.

Both carry virtual-time cost constants for the simulated pipeline.
"""

from __future__ import annotations

import threading
import time

from repro.disruptor.sequence import INITIAL, Sequence, minimum_sequence

__all__ = ["ClaimStrategy", "SingleThreadedClaimStrategy", "MultiThreadedClaimStrategy"]


class ClaimStrategy:
    """Base claim strategy; owns the producer cursor."""

    #: virtual cost of claiming one batch (amortised over its slots)
    claim_cost: float = 0.3
    #: virtual cost of publishing one slot
    publish_cost: float = 0.15

    def __init__(self, ring_size: int):
        self.ring_size = ring_size
        self.cursor = Sequence(INITIAL)
        self._claimed = INITIAL

    def next(self, n: int, gating: list[Sequence]) -> int:
        """Claim ``n`` slots; returns the highest claimed sequence."""
        raise NotImplementedError

    def publish(self, lo: int, hi: int) -> None:
        """Make slots ``[lo, hi]`` visible to consumers."""
        raise NotImplementedError

    def _wait_for_capacity(self, hi: int, gating: list[Sequence]) -> None:
        wrap_point = hi - self.ring_size
        while wrap_point > minimum_sequence(gating, INITIAL):
            time.sleep(0.00005)  # backpressure: consumers are behind


class SingleThreadedClaimStrategy(ClaimStrategy):
    """The paper's configuration: exactly one producer."""

    claim_cost = 0.2
    publish_cost = 0.1

    def next(self, n: int, gating: list[Sequence]) -> int:
        hi = self._claimed + n
        self._wait_for_capacity(hi, gating)
        self._claimed = hi
        return hi

    def publish(self, lo: int, hi: int) -> None:
        # single producer publishes in order: cursor jumps to hi
        self.cursor.set(hi)


class MultiThreadedClaimStrategy(ClaimStrategy):
    """Lock-arbitrated multi-producer claims with contiguous publish."""

    claim_cost = 0.6
    publish_cost = 0.25

    def __init__(self, ring_size: int):
        super().__init__(ring_size)
        self._lock = threading.Lock()
        self._pending: set[int] = set()

    def next(self, n: int, gating: list[Sequence]) -> int:
        with self._lock:
            hi = self._claimed + n
            self._claimed = hi
        self._wait_for_capacity(hi, gating)
        return hi

    def publish(self, lo: int, hi: int) -> None:
        with self._lock:
            self._pending.update(range(lo, hi + 1))
            nxt = self.cursor.get() + 1
            while nxt in self._pending:
                self._pending.remove(nxt)
                nxt += 1
            self.cursor.set(nxt - 1)
