"""LMAX-Disruptor-style ring-buffer substrate (§6.3, Table 1).

Real threaded implementation (`Disruptor`, `RingBuffer`, wait/claim
strategies) for functional tests, plus a virtual-time pipeline model
(`simulate_pipeline`) for the Fig 10 / Table 1 benchmarks.
"""

from repro.disruptor.claim import (
    ClaimStrategy,
    MultiThreadedClaimStrategy,
    SingleThreadedClaimStrategy,
)
from repro.disruptor.dsl import BatchEventProcessor, Disruptor, EventHandler
from repro.disruptor.ring import RingBuffer
from repro.disruptor.sequence import (
    INITIAL,
    BarrierAlert,
    Sequence,
    SequenceBarrier,
    minimum_sequence,
)
from repro.disruptor.simulated import PipelineCosts, PipelineResult, simulate_pipeline
from repro.disruptor.wait import (
    BlockingWaitStrategy,
    BusySpinWaitStrategy,
    SleepingWaitStrategy,
    WaitStrategy,
    YieldingWaitStrategy,
)

__all__ = [
    "Disruptor",
    "EventHandler",
    "BatchEventProcessor",
    "RingBuffer",
    "Sequence",
    "SequenceBarrier",
    "BarrierAlert",
    "minimum_sequence",
    "INITIAL",
    "ClaimStrategy",
    "SingleThreadedClaimStrategy",
    "MultiThreadedClaimStrategy",
    "WaitStrategy",
    "BlockingWaitStrategy",
    "BusySpinWaitStrategy",
    "YieldingWaitStrategy",
    "SleepingWaitStrategy",
    "PipelineCosts",
    "PipelineResult",
    "simulate_pipeline",
]
