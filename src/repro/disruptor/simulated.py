"""Virtual-time model of a single-producer / multi-consumer Disruptor
pipeline — the benchmark engine behind Fig 10 and the Table 1 tuning.

The threaded implementation in :mod:`repro.disruptor.dsl` is real but
GIL-bound, so (exactly like the engine's fork/join strategy) timing is
replayed in virtual time.  The model follows the classic pipeline
recurrences over the published event stream:

* the producer finishes event *k* at
  ``P(k) = max(P(k-1), Cmin(k - ring)) + parse``
  — it stalls when the slowest consumer is a full ring behind
  (backpressure);
* consumer *i* finishes event *k* at
  ``C_i(k) = max(C_i(k-1), P(k) + wake_i(k)) + service_i(k)``
  where service is ``proc`` for events the consumer owns (its month)
  and ``scan`` for events it merely inspects, and ``wake`` is the wait
  strategy's latency when the consumer had gone idle;
* the critical-path end is ``max_i (C_i(n) + flush_i)``.

Oversubscription (13 actors on ≤ 8 cores) is handled with the standard
work/critical-path bound: ``elapsed = max(T_pipeline, W_total /
cores)``, plus the busy-spin CPU burn being added to *W* (a spinning
consumer occupies a core — why BusySpin loses to Blocking in Table 1
when consumers outnumber cores).

Cost constants come from the wait/claim strategy classes and
:class:`PipelineCosts`; keys (months) drive per-event routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.disruptor.claim import ClaimStrategy, SingleThreadedClaimStrategy
from repro.disruptor.wait import BlockingWaitStrategy, WaitStrategy

__all__ = ["PipelineCosts", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class PipelineCosts:
    """Per-event work (virtual units) of the application layer."""

    #: producer: read + parse one record
    parse: float = 1.0
    #: consumer: process an owned event (insert into local Gamma, ...)
    proc: float = 1.2
    #: consumer: inspect a foreign event and skip it
    scan: float = 0.08
    #: per-consumer final flush (run the reducer over its Gamma)
    flush_per_owned: float = 0.35


@dataclass(frozen=True)
class PipelineResult:
    elapsed: float
    pipeline_time: float
    total_work: float
    producer_busy: float
    consumer_busy: list[float]
    producer_stalls: int
    consumer_wakes: int

    @property
    def bound(self) -> str:
        return "pipeline" if self.pipeline_time >= self.elapsed else "work"


def simulate_pipeline(
    keys: Sequence[int],
    n_consumers: int,
    cores: int,
    ring_size: int = 1024,
    batch: int = 256,
    wait: WaitStrategy | None = None,
    claim: ClaimStrategy | None = None,
    costs: PipelineCosts | None = None,
    switch_cost: float = 0.5,
) -> PipelineResult:
    """Run the pipeline recurrences over ``keys`` (event *k* is owned by
    consumer ``keys[k] % n_consumers``).

    ``switch_cost`` models oversubscription: with ``1 + n_consumers``
    actors multiplexed onto fewer cores, the OS keeps descheduling
    actors that have work, stretching the critical path by up to
    ``1 + 1.5*switch_cost`` (saturating).  §6.3 runs 13 actors on 8
    cores, so this is on the paper's own operating point.
    """
    if cores < 1 or n_consumers < 1:
        raise ValueError("need >=1 core and >=1 consumer")
    wait = wait if wait is not None else BlockingWaitStrategy()
    claim = claim if claim is not None else SingleThreadedClaimStrategy(ring_size)
    c = costs if costs is not None else PipelineCosts()

    n = len(keys)
    per_event_pub = c.parse + claim.publish_cost + claim.claim_cost / max(1, batch)

    # consumer state
    ctime = [0.0] * n_consumers
    cbusy = [0.0] * n_consumers
    owned = [0] * n_consumers
    idle_since: list[bool] = [True] * n_consumers
    wakes = 0

    # ring-occupancy window: the producer may claim slot k only after
    # EVERY gating consumer has passed slot k - ring_size, i.e. at the
    # max of their finish times; tracked with a circular buffer
    finish_all: list[float] = [0.0] * max(1, ring_size)

    ptime = 0.0
    pbusy = 0.0
    stalls = 0

    for k in range(n):
        gate = finish_all[k % ring_size] if k >= ring_size else 0.0
        if gate > ptime:
            stalls += 1
            ptime = gate
        ptime += per_event_pub
        pbusy += per_event_pub

        batch_boundary = (k % batch) == 0
        owner = keys[k] % n_consumers
        cmax = 0.0
        for i in range(n_consumers):
            service = c.proc if i == owner else c.scan
            start = ptime
            if ctime[i] >= start:
                start = ctime[i]
                idle_since[i] = False
            else:
                # consumer had drained; it pays the wait strategy's
                # wake-up latency once per publish batch, not per event
                if idle_since[i] or batch_boundary:
                    start += wait.wake_latency
                    wakes += 1
                idle_since[i] = True
            ctime[i] = start + service
            cbusy[i] += service
            if ctime[i] > cmax:
                cmax = ctime[i]
        owned[owner] += 1
        finish_all[k % ring_size] = cmax

    # final flush: each consumer reduces over what it owned
    end = ptime
    for i in range(n_consumers):
        flush = c.flush_per_owned * owned[i]
        ctime[i] += flush
        cbusy[i] += flush
        if ctime[i] > end:
            end = ctime[i]

    # CPU-burn of spinning waiters: a stalled-but-spinning consumer
    # occupies a core for the whole run window, not just the pipeline
    # span — estimate the window first (one fixed-point step), then
    # charge the burn against it
    actors = 1 + n_consumers
    oversub = 1.0 + switch_cost * min(1.5, max(0.0, actors / cores - 1.0))
    base_work = pbusy + sum(cbusy)
    window = max(end * oversub, base_work / cores)
    burn = wait.spin_burn * sum(max(0.0, window - b) for b in cbusy)
    total_work = base_work + burn
    elapsed = max(end * oversub, total_work / cores)
    return PipelineResult(
        elapsed=elapsed,
        pipeline_time=end,
        total_work=total_work,
        producer_busy=pbusy,
        consumer_busy=cbusy,
        producer_stalls=stalls,
        consumer_wakes=wakes,
    )
