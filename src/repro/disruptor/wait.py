"""Consumer wait strategies (Table 1's ``Wait Strategy`` row).

The paper tunes the PvWatts Disruptor over the standard LMAX wait
strategies and lands on ``BlockingWaitStrategy``; we implement the four
classic ones.  Trade-off (reproduced by the Table 1 tuning bench):

* **Blocking** — lowest CPU burn, a wake-up latency per stall; the
  right choice when consumers out-number cores (12 consumers on 8
  cores in §6.3).
* **BusySpin** — lowest latency, burns a core per waiting consumer;
  only sensible when every consumer owns a core.
* **Yielding** — spin a few times, then yield the core.
* **Sleeping** — spin, yield, then sleep in short naps.

Each strategy also carries the *virtual-time* cost constants the
simulated pipeline uses (stall latency and CPU burn per stall), so the
threaded implementation and the benchmark model stay one concept.
"""

from __future__ import annotations

import threading
import time

from repro.disruptor.sequence import BarrierAlert

__all__ = [
    "WaitStrategy",
    "BlockingWaitStrategy",
    "BusySpinWaitStrategy",
    "YieldingWaitStrategy",
    "SleepingWaitStrategy",
]


class WaitStrategy:
    """Base: spin-based waiting; subclasses refine the idle action."""

    #: virtual-time cost model (work units): latency to notice progress
    wake_latency: float = 0.0
    #: virtual CPU burned per stalled wait (occupies a core)
    spin_burn: float = 0.0

    def __init__(self) -> None:
        self._cond = threading.Condition()

    def _idle(self, spins: int) -> int:
        raise NotImplementedError

    def wait_for(self, sequence: int, barrier) -> int:
        spins = 0
        while True:
            if barrier.alerted:
                raise BarrierAlert()
            avail = barrier.available()
            if avail >= sequence:
                return avail
            spins = self._idle(spins)

    def signal_all(self) -> None:
        with self._cond:
            self._cond.notify_all()


class BlockingWaitStrategy(WaitStrategy):
    """Condition-variable waiting (the paper's winning choice)."""

    wake_latency = 3.0
    spin_burn = 0.0

    def _idle(self, spins: int) -> int:
        with self._cond:
            # re-check happens in the caller's loop; short timeout keeps
            # us robust against missed notifies at halt time
            self._cond.wait(timeout=0.01)
        return spins

    def signal_all(self) -> None:
        with self._cond:
            self._cond.notify_all()


class BusySpinWaitStrategy(WaitStrategy):
    """Pure spinning — a core per waiter."""

    wake_latency = 0.1
    spin_burn = 1.0

    def _idle(self, spins: int) -> int:
        return spins + 1


class YieldingWaitStrategy(WaitStrategy):
    """Spin 100 times, then yield the core each iteration."""

    wake_latency = 0.5
    spin_burn = 0.6

    def _idle(self, spins: int) -> int:
        if spins >= 100:
            time.sleep(0)  # os-level yield
            return spins
        return spins + 1


class SleepingWaitStrategy(WaitStrategy):
    """Spin, yield, then nap — lowest CPU, highest latency."""

    wake_latency = 6.0
    spin_burn = 0.05

    def _idle(self, spins: int) -> int:
        if spins >= 200:
            time.sleep(0.0002)
            return spins
        if spins >= 100:
            time.sleep(0)
            return spins + 1
        return spins + 1
