"""Sequences and sequence barriers — the Disruptor's coordination core.

The LMAX Disruptor (§6.3, [14]) coordinates a ring buffer with
monotonic *sequences*: the producer cursor counts published slots, and
each consumer owns a sequence counting processed slots.  A consumer may
read slot *s* once ``cursor >= s``; the producer may claim slot *s*
once every *gating* consumer has passed ``s - ring_size``.

CPython's GIL makes single-word reads/writes atomic, so a plain
attribute works as the store; notification (for the blocking wait
strategy) goes through one shared :class:`threading.Condition` per
ring, mirroring how the Java version pairs volatile longs with a wait
strategy object.
"""

from __future__ import annotations

import threading
from typing import Iterable

__all__ = ["INITIAL", "Sequence", "SequenceBarrier", "minimum_sequence"]

#: sequences start one before slot 0, like the Java implementation
INITIAL = -1


class Sequence:
    """A monotonic counter owned by one producer or consumer."""

    __slots__ = ("_value",)

    def __init__(self, initial: int = INITIAL):
        self._value = initial

    def get(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        self._value = value

    def __repr__(self) -> str:
        return f"Sequence({self._value})"


def minimum_sequence(sequences: Iterable[Sequence], default: int) -> int:
    """Smallest of a gating group (the producer's wrap limit)."""
    values = [s.get() for s in sequences]
    return min(values) if values else default


class SequenceBarrier:
    """What a consumer waits on: the producer cursor plus any upstream
    consumers it depends on (for consumer chains, Table 1's pipeline
    shapes)."""

    __slots__ = ("cursor", "dependents", "_wait", "_alerted")

    def __init__(self, cursor: Sequence, dependents: list[Sequence], wait_strategy):
        self.cursor = cursor
        self.dependents = dependents
        self._wait = wait_strategy
        self._alerted = False

    def available(self) -> int:
        """Highest sequence this barrier currently allows."""
        if self.dependents:
            return min(self.cursor.get(), minimum_sequence(self.dependents, INITIAL))
        return self.cursor.get()

    def wait_for(self, sequence: int) -> int:
        """Block (per the wait strategy) until ``sequence`` is
        available; returns the highest available sequence (>= it), or
        raises :class:`BarrierAlert` on shutdown."""
        return self._wait.wait_for(sequence, self)

    def alert(self) -> None:
        """Wake waiters for shutdown."""
        self._alerted = True
        self._wait.signal_all()

    @property
    def alerted(self) -> bool:
        return self._alerted


class BarrierAlert(Exception):
    """Raised out of ``wait_for`` when the barrier is alerted (halt)."""
