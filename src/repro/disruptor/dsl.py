"""Disruptor façade: producers, consumer groups, start/halt.

Mirrors the LMAX DSL the paper configures in Table 1: build a
:class:`Disruptor` around a ring, attach event handlers (optionally in
dependent stages with ``then``), ``start()`` the consumer threads, feed
events, then ``halt()``.  Consumers are *batch event processors*: each
waits on its barrier, processes every available slot, then updates its
own sequence — end-of-batch is signalled to the handler so reducers can
flush (how the PvWatts consumers detect progress cheaply).

Shutdown protocol: :meth:`Disruptor.halt_when_drained` waits until all
final-stage consumers have consumed everything published, then alerts
the barriers and joins the threads.  (The PvWatts application instead
uses an in-band sentinel tuple, as in §6.3 — both idioms are tested.)
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence as Seq

from repro.core.errors import DisruptorError
from repro.disruptor.claim import ClaimStrategy
from repro.disruptor.ring import RingBuffer
from repro.disruptor.sequence import INITIAL, BarrierAlert, Sequence, SequenceBarrier
from repro.disruptor.wait import WaitStrategy

__all__ = ["EventHandler", "BatchEventProcessor", "Disruptor"]


class EventHandler:
    """Consumer callback interface.

    ``on_event(value, sequence, end_of_batch)`` per slot;
    ``on_start`` / ``on_shutdown`` bracket the processor thread.
    """

    def on_start(self) -> None: ...

    def on_event(self, value: Any, sequence: int, end_of_batch: bool) -> None:
        raise NotImplementedError

    def on_shutdown(self) -> None: ...


class _FnHandler(EventHandler):
    def __init__(self, fn: Callable[[Any, int, bool], None]):
        self._fn = fn

    def on_event(self, value: Any, sequence: int, end_of_batch: bool) -> None:
        self._fn(value, sequence, end_of_batch)


class BatchEventProcessor:
    """One consumer: a thread draining the ring through a barrier."""

    def __init__(self, ring: RingBuffer, barrier: SequenceBarrier, handler: EventHandler, name: str):
        self.ring = ring
        self.barrier = barrier
        self.handler = handler
        self.sequence = Sequence(INITIAL)
        self.name = name
        self._thread: threading.Thread | None = None

    def run(self) -> None:
        self.handler.on_start()
        try:
            next_seq = self.sequence.get() + 1
            while True:
                try:
                    available = self.barrier.wait_for(next_seq)
                except BarrierAlert:
                    break
                while next_seq <= available:
                    self.handler.on_event(
                        self.ring.get(next_seq), next_seq, next_seq == available
                    )
                    next_seq += 1
                self.sequence.set(available)
        finally:
            self.handler.on_shutdown()

    def start(self) -> None:
        if self._thread is not None:
            raise DisruptorError(f"processor {self.name} already started")
        self._thread = threading.Thread(target=self.run, name=self.name, daemon=True)
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)


class _HandlerGroup:
    """Result of ``handle_events_with`` — supports ``then`` chaining."""

    def __init__(self, disruptor: "Disruptor", processors: list[BatchEventProcessor]):
        self._disruptor = disruptor
        self.processors = processors

    def then(self, *handlers: EventHandler | Callable) -> "_HandlerGroup":
        dependents = [p.sequence for p in self.processors]
        return self._disruptor._add_stage(handlers, dependents)


class Disruptor:
    """The user-facing builder (Table 1's configuration surface)."""

    def __init__(
        self,
        ring_size: int,
        wait_strategy: WaitStrategy | None = None,
        claim_strategy: ClaimStrategy | None = None,
    ):
        self.ring = RingBuffer(ring_size, wait_strategy, claim_strategy)
        self.processors: list[BatchEventProcessor] = []
        self._final_sequences: list[Sequence] = []
        self._started = False

    # -- wiring ----------------------------------------------------------

    def _coerce(self, h: EventHandler | Callable) -> EventHandler:
        return h if isinstance(h, EventHandler) else _FnHandler(h)

    def _add_stage(
        self, handlers: Seq[EventHandler | Callable], dependents: list[Sequence]
    ) -> _HandlerGroup:
        if self._started:
            raise DisruptorError("cannot add handlers after start()")
        stage: list[BatchEventProcessor] = []
        for i, h in enumerate(handlers):
            barrier = self.ring.new_barrier(dependents)
            p = BatchEventProcessor(
                self.ring, barrier, self._coerce(h), f"consumer-{len(self.processors)}"
            )
            self.processors.append(p)
            stage.append(p)
        # final gating set = sequences with no downstream stage yet
        for p in stage:
            self._final_sequences.append(p.sequence)
        for d in dependents:
            if d in self._final_sequences:
                self._final_sequences.remove(d)
        return _HandlerGroup(self, stage)

    def handle_events_with(self, *handlers: EventHandler | Callable) -> _HandlerGroup:
        return self._add_stage(handlers, [])

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> RingBuffer:
        if self._started:
            raise DisruptorError("Disruptor already started")
        if not self.processors:
            raise DisruptorError("no event handlers attached")
        self.ring.add_gating_sequences(*self._final_sequences)
        self._started = True
        for p in self.processors:
            p.start()
        return self.ring

    def publish(self, value: Any) -> None:
        self.ring.publish_batch([value])

    def publish_all(self, values: list[Any], batch: int = 1) -> None:
        """Publish in claimed batches of ``batch`` (Table 1: 256)."""
        for i in range(0, len(values), batch):
            self.ring.publish_batch(values[i : i + batch])

    def drained(self) -> bool:
        cursor = self.ring.cursor.get()
        return all(s.get() >= cursor for s in self._final_sequences)

    def halt_when_drained(self, timeout: float = 30.0) -> None:
        """Wait for every final consumer to catch up, then halt."""
        deadline = time.monotonic() + timeout
        while not self.drained():
            if time.monotonic() > deadline:
                raise DisruptorError("halt_when_drained timed out")
            time.sleep(0.0005)
        self.halt()

    def halt(self) -> None:
        for p in self.processors:
            p.barrier.alert()
        self.ring.wait_strategy.signal_all()
        for p in self.processors:
            p.join(timeout=5.0)
