"""The ring buffer (Table 1's ``RingBuffer`` rows).

A fixed, power-of-two slot array indexed by ``sequence & (size - 1)``.
Slots are pre-allocated and *recycled* — events are written into
existing slot objects rather than allocated per message, which is the
Disruptor's GC story the paper leans on ("recycle objects rather than
garbage collecting them", §6.3).  Here each slot is a single-element
list cell; publishers store into it, consumers read from it.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import DisruptorError
from repro.disruptor.claim import ClaimStrategy, SingleThreadedClaimStrategy
from repro.disruptor.sequence import Sequence, SequenceBarrier
from repro.disruptor.wait import BlockingWaitStrategy, WaitStrategy

__all__ = ["RingBuffer"]


class RingBuffer:
    """Pre-allocated slots + producer cursor + gating sequences."""

    def __init__(
        self,
        size: int,
        wait_strategy: WaitStrategy | None = None,
        claim_strategy: ClaimStrategy | None = None,
    ):
        if size < 2 or size & (size - 1):
            raise DisruptorError(f"ring size must be a power of two >= 2, got {size}")
        self.size = size
        self._mask = size - 1
        self._slots: list[list[Any]] = [[None] for _ in range(size)]
        self.wait_strategy = wait_strategy or BlockingWaitStrategy()
        self.claim = claim_strategy or SingleThreadedClaimStrategy(size)
        self.gating: list[Sequence] = []

    # -- wiring ----------------------------------------------------------

    @property
    def cursor(self) -> Sequence:
        return self.claim.cursor

    def add_gating_sequences(self, *sequences: Sequence) -> None:
        """Register the sequences the producer must not overrun (the
        final consumers of every chain)."""
        self.gating.extend(sequences)

    def new_barrier(self, dependents: list[Sequence] | None = None) -> SequenceBarrier:
        return SequenceBarrier(self.cursor, dependents or [], self.wait_strategy)

    # -- producing ----------------------------------------------------------

    def next(self, n: int = 1) -> int:
        """Claim ``n`` slots; blocks while the ring is full (the
        backpressure that throttles the PvWatts producer when one
        month's consumer lags, §6.3)."""
        if not self.gating:
            raise DisruptorError("no gating sequences; producer would overrun")
        return self.claim.next(n, self.gating)

    def set(self, sequence: int, value: Any) -> None:
        """Write a claimed-but-unpublished slot."""
        self._slots[sequence & self._mask][0] = value

    def publish(self, lo: int, hi: int | None = None) -> None:
        """Publish claimed slots ``[lo, hi]`` and wake waiters."""
        self.claim.publish(lo, hi if hi is not None else lo)
        self.wait_strategy.signal_all()

    def publish_batch(self, values: list[Any]) -> int:
        """Claim-write-publish a whole batch (the paper's producer
        "claims slots in a batch of 256"); returns the high sequence."""
        n = len(values)
        if n == 0:
            return self.cursor.get()
        if n > self.size:
            raise DisruptorError(f"batch of {n} exceeds ring size {self.size}")
        hi = self.next(n)
        lo = hi - n + 1
        for i, v in enumerate(values):
            self._slots[(lo + i) & self._mask][0] = v
        self.publish(lo, hi)
        return hi

    # -- consuming ----------------------------------------------------------

    def get(self, sequence: int) -> Any:
        return self._slots[sequence & self._mask][0]

    def __repr__(self) -> str:
        return f"RingBuffer(size={self.size}, cursor={self.cursor.get()})"
