"""Distributed execution substrate (§2 stage 3: partitioned /
duplicated / shared tuples across computers, with explicit
communication costs).  Two runtimes share one placement vocabulary:
`repro.dist.engine` *simulates* a cluster in-process (modelled network
costs), `repro.dist.procrun` runs real OS worker processes — the latter
is also reachable as ``ExecOptions(strategy="processes")``."""

from repro.dist.check import QueryLocality, check_locality, locality_summary
from repro.dist.engine import DistEngine, DistOptions, DistRunResult, run_distributed
from repro.dist.network import NetModel, StepTraffic, WireStats
from repro.dist.placement import (
    OnNode,
    Partitioned,
    Placement,
    PlacementMap,
    Replicated,
    spread_hash,
)
from repro.dist.procrun import ProcessShardRuntime, run_sharded
from repro.dist.rebalance import Rebalancer
from repro.dist.transport import TRANSPORTS, resolve_transport

__all__ = [
    "DistEngine",
    "DistOptions",
    "DistRunResult",
    "run_distributed",
    "ProcessShardRuntime",
    "run_sharded",
    "Partitioned",
    "Replicated",
    "OnNode",
    "Placement",
    "PlacementMap",
    "spread_hash",
    "NetModel",
    "StepTraffic",
    "WireStats",
    "QueryLocality",
    "check_locality",
    "locality_summary",
    "Rebalancer",
    "TRANSPORTS",
    "resolve_transport",
]
