"""Pluggable wire transports for the multiprocess shard runtime.

PR 5's runtime hard-wired one duplex :func:`multiprocessing.Pipe` per
worker and relayed *everything* — control, queries, answers — through
it.  The v2 runtime (:mod:`repro.dist.procrun` / ``worker``) separates
the two planes and makes both pluggable:

* the **control channel** (coordinator ↔ worker: step broadcast, done
  records, membership) is a :class:`PipeChannel` under the ``pipe``
  transport or a length-prefixed :class:`SocketChannel` under ``tcp``;
* the **peer mesh** (worker ↔ worker: staged put-sets, routed queries,
  answers) is always socket-based — ``AF_UNIX`` under ``pipe`` (same
  host, pipe-like semantics, connectable after fork, which a raw pipe
  is not) and loopback ``AF_INET`` under ``tcp``.  A re-forked worker
  can therefore rejoin the mesh by *connecting*, which is what makes
  crash recovery work without pre-allocating N×N pipes.

Socket framing reuses the :mod:`repro.serve.protocol` discipline — a
4-byte big-endian unsigned length followed by that many payload bytes —
so a TCP worker on another host speaks the same frame grammar as the
session service.  Bodies here are pickles, not JSON, and the frame
ceiling is sized for bulk put-set shuffle rather than client requests.

The transport is chosen per run (``run_sharded(transport=...)``) or via
the ``DIST_TRANSPORT`` environment variable, which is how CI runs the
whole differential matrix over both transports without editing tests.
"""

from __future__ import annotations

import os
import select
import socket
import struct
import tempfile
from typing import Callable, Sequence

from repro.core.errors import EngineError

__all__ = [
    "TRANSPORTS",
    "MAX_FRAME_BYTES",
    "Channel",
    "PipeChannel",
    "SocketChannel",
    "PeerListener",
    "connect_channel",
    "resolve_transport",
    "wait_readable",
]

#: same header discipline as ``repro.serve.protocol.HEADER``
HEADER = struct.Struct(">I")

#: ceiling on one frame — a whole staged put-set can travel in one
#: frame, so this is far above the service protocol's request ceiling
MAX_FRAME_BYTES = 512 * 1024 * 1024

TRANSPORTS = ("pipe", "tcp")


def resolve_transport(transport: str | None) -> str:
    """Pick the wire transport: an explicit argument wins, then the
    ``DIST_TRANSPORT`` environment variable, then ``pipe``."""
    t = transport if transport is not None else os.environ.get("DIST_TRANSPORT", "pipe")
    if t not in TRANSPORTS:
        raise EngineError(
            f"unknown dist transport {t!r}: expected one of {', '.join(TRANSPORTS)}"
        )
    return t


class Channel:
    """Duplex message channel: whole frames in, whole frames out.

    Both implementations raise ``EOFError`` when the far side is gone
    (clean close) and let ``OSError``/``ConnectionResetError`` escape
    for dirtier endings — the callers treat every one of those as a
    lost endpoint."""

    def send_bytes(self, data: bytes) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def recv_bytes(self) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def fileno(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class PipeChannel(Channel):
    """A :func:`multiprocessing.Pipe` connection behind the Channel
    interface (the PR 5 control wire, unchanged)."""

    __slots__ = ("conn",)

    def __init__(self, conn):
        self.conn = conn

    def send_bytes(self, data: bytes) -> None:
        self.conn.send_bytes(data)

    def recv_bytes(self) -> bytes:
        return self.conn.recv_bytes()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def fileno(self) -> int:
        return self.conn.fileno()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class SocketChannel(Channel):
    """Length-prefixed frames over a stream socket (UNIX or TCP)."""

    __slots__ = ("sock",)

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        if sock.family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # the mesh exchanges storms of small frames between peers that
        # are both busy firing; generous buffers keep sends off the
        # slow full-buffer path (the kernel clamps to its own ceiling)
        for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
            try:
                sock.setsockopt(socket.SOL_SOCKET, opt, 1 << 22)
            except OSError:
                pass
        self.sock = sock

    def send_bytes(self, data: bytes) -> None:
        if len(data) > MAX_FRAME_BYTES:
            raise EngineError(
                f"frame of {len(data)} bytes exceeds the transport ceiling"
            )
        self.sock.sendall(HEADER.pack(len(data)) + data)

    def send_with_drain(self, data: bytes, drain: Callable[[], None]) -> None:
        """Send one frame, servicing ``drain()`` whenever the send
        buffer is full.

        An all-to-all shuffle can deadlock two blocking senders whose
        receive buffers are both full of each other's frames; draining
        incoming traffic while waiting for buffer space breaks the
        cycle without threads."""
        if len(data) > MAX_FRAME_BYTES:
            raise EngineError(
                f"frame of {len(data)} bytes exceeds the transport ceiling"
            )
        payload = memoryview(HEADER.pack(len(data)) + data)
        self.sock.setblocking(False)
        try:
            while payload:
                try:
                    sent = self.sock.send(payload)
                    payload = payload[sent:]
                except (BlockingIOError, InterruptedError):
                    drain()
                    # short poll: AF_UNIX only reports writability once
                    # the buffer is half-drained, so waiting for the
                    # edge can oversleep the actual free space by far
                    select.select([], [self.sock], [], 0.002)
        finally:
            self.sock.setblocking(True)

    def recv_bytes(self) -> bytes:
        head = self._read_exact(HEADER.size)
        (n,) = HEADER.unpack(head)
        if n > MAX_FRAME_BYTES:
            raise EngineError(f"incoming frame of {n} bytes exceeds the ceiling")
        return self._read_exact(n)

    def _read_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                raise EOFError("peer closed the connection")
            buf.extend(chunk)
        return bytes(buf)

    def poll(self, timeout: float = 0.0) -> bool:
        r, _, _ = select.select([self.sock], [], [], timeout)
        return bool(r)

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


#: a connectable endpoint: ("unix", path) or ("tcp", (host, port))
Address = tuple


class PeerListener:
    """A listening endpoint other cluster members connect to.

    Every worker owns one (its mesh accept point); under ``tcp`` the
    coordinator owns one too (workers connect their control channel
    back through it).  The backlog covers a whole mesh connecting at
    once."""

    __slots__ = ("sock", "address", "_dir")

    def __init__(self, transport: str, tag: str = "peer"):
        self._dir = None
        if transport == "tcp":
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            s.bind(("127.0.0.1", 0))
            s.listen(128)
            self.address: Address = ("tcp", s.getsockname())
        else:
            self._dir = tempfile.mkdtemp(prefix=f"jstar-{tag}-")
            path = os.path.join(self._dir, "peer.sock")
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.bind(path)
            s.listen(128)
            self.address = ("unix", path)
        self.sock = s

    def accept(self, timeout: float | None = None) -> SocketChannel | None:
        """Accept one connection; ``None`` when ``timeout`` expires."""
        if timeout is not None:
            r, _, _ = select.select([self.sock], [], [], timeout)
            if not r:
                return None
        conn, _addr = self.sock.accept()
        return SocketChannel(conn)

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        if self._dir is not None:
            try:
                os.unlink(os.path.join(self._dir, "peer.sock"))
                os.rmdir(self._dir)
            except OSError:
                pass


def connect_channel(address: Address, timeout: float = 30.0) -> SocketChannel:
    """Dial a :class:`PeerListener` address and return the channel."""
    kind, addr = address
    if kind == "tcp":
        s = socket.create_connection(tuple(addr), timeout=timeout)
        s.settimeout(None)
    else:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(timeout)
        s.connect(addr)
        s.settimeout(None)
    return SocketChannel(s)


def wait_readable(channels: Sequence, timeout: float | None = None) -> list:
    """Block until at least one of ``channels`` is readable and return
    the ready subset.  Accepts anything with a ``fileno()`` — pipe
    channels, socket channels, and listeners mix freely."""
    if not channels:
        return []
    r, _, _ = select.select(list(channels), [], [], timeout)
    return r
