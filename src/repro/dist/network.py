"""Cluster-interconnect cost model for distributed virtual time.

§2 stage 3 leaves "how the communication should be implemented" to the
architecture hints; the simulator needs only its *cost*.  The model is
the standard LogP-flavoured account:

* each message pays ``latency`` once plus ``per_tuple`` marshalling per
  carried tuple;
* messages between the same (src, dst) pair within one superstep are
  **batched**: one latency, summed payload — distributed JStar's
  natural bulk exchange (the engine moves whole put-sets per step);
* a node's send/receive work serialises on its NIC: per-step comm time
  at a node = sum of its message costs; the step's comm makespan is the
  busiest node's total (full-duplex assumed between distinct pairs).

All counters are exposed for the benchmarks: messages, tuples moved,
per-node send/recv cost.

:class:`WireStats` is the *real* counterpart: the multiprocess runtime
(:mod:`repro.dist.procrun`) counts actual pickled bytes and messages on
each coordinator↔worker control channel *and* on each worker's peer
mesh (the v2 worker-to-worker shuffle), so the network columns of a
distributed ``run_report`` are measured traffic, not modelled cost.
Workers snapshot their counters into every ``done`` record
(:meth:`WireStats.to_state`); the coordinator folds the last snapshot
of a crashed incarnation into its replacement so report totals survive
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetModel", "StepTraffic", "WireStats"]


@dataclass
class WireStats:
    """Measured traffic on one coordinator↔worker pipe (both counted
    from the owning endpoint's perspective)."""

    msgs_sent: int = 0
    msgs_recv: int = 0
    bytes_sent: int = 0
    bytes_recv: int = 0

    def on_send(self, n_bytes: int) -> None:
        self.msgs_sent += 1
        self.bytes_sent += n_bytes

    def on_recv(self, n_bytes: int) -> None:
        self.msgs_recv += 1
        self.bytes_recv += n_bytes

    def merge(self, other: "WireStats") -> None:
        self.msgs_sent += other.msgs_sent
        self.msgs_recv += other.msgs_recv
        self.bytes_sent += other.bytes_sent
        self.bytes_recv += other.bytes_recv

    def to_state(self) -> dict:
        """Plain-dict snapshot (wire-safe, versionless)."""
        return {
            "msgs_sent": self.msgs_sent,
            "msgs_recv": self.msgs_recv,
            "bytes_sent": self.bytes_sent,
            "bytes_recv": self.bytes_recv,
        }

    @classmethod
    def from_state(cls, state: dict) -> "WireStats":
        return cls(
            msgs_sent=int(state.get("msgs_sent", 0)),
            msgs_recv=int(state.get("msgs_recv", 0)),
            bytes_sent=int(state.get("bytes_sent", 0)),
            bytes_recv=int(state.get("bytes_recv", 0)),
        )

    def add_state(self, state: dict) -> None:
        """Fold a :meth:`to_state` snapshot into this counter."""
        self.msgs_sent += int(state.get("msgs_sent", 0))
        self.msgs_recv += int(state.get("msgs_recv", 0))
        self.bytes_sent += int(state.get("bytes_sent", 0))
        self.bytes_recv += int(state.get("bytes_recv", 0))


@dataclass(frozen=True)
class NetModel:
    """Interconnect constants (virtual work units)."""

    latency: float = 40.0      # per batched message
    per_tuple: float = 1.5     # marshalling + copy per tuple
    #: per-tuple cost of a remote *query* result (row shipped back)
    per_result: float = 1.0


@dataclass
class StepTraffic:
    """Accumulates one superstep's communication."""

    net: NetModel
    #: (src, dst) -> tuples carried this step
    batches: dict[tuple[int, int], int] = field(default_factory=dict)
    #: synchronous round trips issued this step (remote queries):
    #: each pays latency twice regardless of batching
    round_trips: int = 0
    shipped_results: int = 0

    def send(self, src: int, dst: int, n_tuples: int = 1) -> None:
        if src == dst or n_tuples <= 0:
            return
        key = (src, dst)
        self.batches[key] = self.batches.get(key, 0) + n_tuples

    def remote_query(self, src: int, dst: int, n_results: int) -> None:
        if src == dst:
            return
        self.round_trips += 1
        self.shipped_results += n_results

    # -- accounting ----------------------------------------------------------

    def tuples_moved(self) -> int:
        return sum(self.batches.values())

    def messages(self) -> int:
        return len(self.batches) + 2 * self.round_trips

    def comm_time(self, n_nodes: int) -> float:
        """The step's communication makespan (busiest NIC)."""
        per_node = [0.0] * n_nodes
        for (src, dst), n in self.batches.items():
            cost = self.net.latency + self.net.per_tuple * n
            per_node[src] += cost
            per_node[dst] += cost
        # synchronous round trips stall their issuing node for the full
        # round trip; results are marshalled by the owner
        rt = self.round_trips * 2 * self.net.latency + (
            self.shipped_results * self.net.per_result
        )
        return (max(per_node) if per_node else 0.0) + rt
