"""Distributed execution of JStar programs (§2 stage 3, the [7] track).

A :class:`DistEngine` runs an *unmodified* program on a simulated
cluster: per-node Gamma shards hold the tuples their placement policy
assigns them, rules fire on their trigger's home node, queries route to
owning shards (local / one remote owner / broadcast-gather), and puts
travel as batched messages.  Execution proceeds in causal supersteps —
the minimal Delta class fires across all nodes, then effects exchange —
so outputs are **identical to the single-node engine** (the same §1.3
determinism guarantee, asserted by the tests).

Virtual time per superstep::

    max_node(compute) + comm(batched sends, remote-query round trips)
    + coordination barrier

Limitations (documented, not hidden): one core per node (compose with
the fork/join machine mentally, not in code), no ``-noDelta`` path, and
the Delta order is coordinated globally — the cost of that coordination
is charged per superstep but its distribution is future work in the
paper's lineage too ([7]).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.database import Database, InsertOutcome
from repro.core.delta import DeltaTree
from repro.core.errors import EngineError, EngineWarning
from repro.core.program import ExecOptions, Program
from repro.core.query import Query
from repro.core.rules import RuleContext
from repro.core.tuples import JTuple
from repro.dist.network import NetModel, StepTraffic
from repro.dist.placement import OnNode, Partitioned, Placement, PlacementMap, Replicated
from repro.exec.metering import CostMeter
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import TreeSetStore
from repro.stats.collector import StatsCollector

__all__ = [
    "DistOptions",
    "DistRunResult",
    "DistEngine",
    "run_distributed",
    "surface_exec_knobs",
]

#: per-superstep coordination cost (the global minimal-class agreement)
_BARRIER_COST = 6.0


@dataclass(frozen=True)
class DistOptions:
    """Cluster-level hints (all outside the program, §2)."""

    n_nodes: int = 4
    placements: Mapping[str, Placement] = field(default_factory=dict)
    net: NetModel = field(default_factory=NetModel)
    causality_check: str = "warn"
    max_steps: int | None = None
    #: the single-node options this distributed run stands in for; the
    #: engine honours what it can (``causality_check``, ``max_steps``)
    #: and surfaces every other non-default knob as a stats note — an
    #: :class:`EngineWarning` under strict checking — instead of
    #: silently dropping it
    exec_options: ExecOptions | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise EngineError("a cluster needs at least one node")


#: ExecOptions fields a distributed runtime might drop; anything here
#: that deviates from its default and is not in the runtime's
#: ``supported`` set gets surfaced
_MATERIAL_KNOBS = (
    "strategy",
    "threads",
    "no_delta",
    "no_gamma",
    "task_granularity",
    "retention",
    "store_overrides",
    "index_mode",
    "indexes",
    "metering",
    "plan_cache",
    "coalesce_steps",
    "trace",
    "admission",
    "chaos_seed",
    "fault_plan",
)


def surface_exec_knobs(
    exec_options: ExecOptions | None,
    note: Callable[[str], None],
    *,
    strict: bool,
    runtime: str,
    supported: frozenset[str] = frozenset(),
) -> list[str]:
    """Surface single-node knobs a distributed runtime does not honour.

    Same convention as the step kernel's forced-knob overrides (PR 4):
    never silently ignore an option the caller set — every dropped knob
    becomes a stats note, escalated to an :class:`EngineWarning` when
    causality checking is strict.  Returns the messages (for tests)."""
    msgs: list[str] = []
    if exec_options is None:
        return msgs
    defaults = ExecOptions()
    for name in _MATERIAL_KNOBS:
        if name in supported:
            continue
        val = getattr(exec_options, name)
        if val == getattr(defaults, name):
            continue
        if isinstance(val, (frozenset, Mapping)):
            shown = repr(sorted(val))
        else:
            shown = repr(val)
        msg = f"{runtime} does not support ExecOptions {name}={shown}; knob ignored"
        msgs.append(msg)
        note(msg)
        if strict:
            warnings.warn(msg, EngineWarning, stacklevel=3)
    return msgs


@dataclass
class DistRunResult:
    program: str
    n_nodes: int
    output: list[str]
    elapsed: float
    compute_time: float
    comm_time: float
    barrier_time: float
    node_busy: list[float]
    messages: int
    tuples_moved: int
    remote_queries: int
    steps: int
    stats: StatsCollector
    shard_sizes: dict[str, list[int]]
    shards: list[Database] = field(repr=False, default_factory=list)

    @property
    def imbalance(self) -> float:
        """Busiest node's share of compute vs a perfect split."""
        total = sum(self.node_busy)
        if total == 0:
            return 1.0
        return max(self.node_busy) * self.n_nodes / total

    def table_total(self, table: str) -> int:
        return sum(self.shard_sizes[table])


class _DistRuleContext(RuleContext):
    """Rule context whose queries route across the cluster."""

    __slots__ = ("_engine", "_node")

    def __init__(self, engine: "DistEngine", node: int, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._engine = engine
        self._node = node

    def _run_query(self, query: Query) -> list[JTuple]:
        engine = self._engine
        name = query.schema.name
        placement = engine.placements[name]
        node = self._node
        if isinstance(placement, Replicated):
            homes = [node]
        elif isinstance(placement, OnNode):
            # pins are validated against n_nodes at map construction;
            # never wrap here (that silently re-homed bad pins)
            homes = [placement.node]
        else:  # Partitioned
            pos = query.schema.field_position(placement.field)
            if pos in query.eq:
                homes = [placement.home_for_value(query.eq[pos], engine.n_nodes)]
            else:
                homes = list(range(engine.n_nodes))  # broadcast gather
        results: list[JTuple] = []
        for home in homes:
            shard = engine.shards[home]
            store = shard.store(name)
            rows = shard.select(query)
            self._meter.charge_store_op("lookup", store)
            if rows:
                self._meter.charge_store_op("result", store, len(rows))
            if home != node:
                engine.traffic.remote_query(node, home, len(rows))
                engine.remote_queries += 1
            results.extend(rows)
        if self._collector is not None:
            names = query.schema.field_names
            self._collector.on_query(
                self._rule.name,
                name,
                len(results),
                eq_fields=tuple(sorted(names[i] for i in query.eq)),
                range_fields=tuple(sorted(names[i] for i in query.ranges)),
            )
        return results


class DistEngine:
    """One distributed execution of one program."""

    def __init__(self, program: Program, options: DistOptions):
        program.freeze()
        self.program = program
        self.options = options
        self.n_nodes = options.n_nodes
        schemas = program.schemas()
        self.placements = PlacementMap(
            schemas, options.placements, n_nodes=self.n_nodes
        )
        self.stats = StatsCollector()
        # honour what we can from the single-node options, surface the rest
        self.causality_check = options.causality_check
        self.max_steps = options.max_steps
        if options.exec_options is not None:
            eo = options.exec_options
            if self.causality_check == "warn" and eo.causality_check != "warn":
                self.causality_check = eo.causality_check
            if self.max_steps is None:
                self.max_steps = eo.max_steps
        surface_exec_knobs(
            options.exec_options,
            self.stats.note,
            strict=self.causality_check == "strict",
            runtime="the simulated DistEngine",
        )
        registry = StoreRegistry(lambda s: TreeSetStore(s))
        self.shards = [
            Database(schemas, registry, program.decls) for _ in range(self.n_nodes)
        ]
        self.delta = DeltaTree()
        self.output: list[str] = []
        #: rule identity -> position, for canonical per-step output keys
        self._rule_index = {id(r): i for i, r in enumerate(program.rules)}
        self.traffic = StepTraffic(options.net)
        self.remote_queries = 0
        self._totals = DistRunResult(
            program=program.name,
            n_nodes=self.n_nodes,
            output=self.output,
            elapsed=0.0,
            compute_time=0.0,
            comm_time=0.0,
            barrier_time=0.0,
            node_busy=[0.0] * self.n_nodes,
            messages=0,
            tuples_moved=0,
            remote_queries=0,
            steps=0,
            stats=self.stats,
            shard_sizes={},
        )
        self._ran = False

    # -- placement helpers ---------------------------------------------------

    def fire_home(self, tup: JTuple) -> int:
        """Node that fires this tuple's rules."""
        home = self.placements.home_of(tup, self.n_nodes)
        if home is not None:
            return home
        # replicated triggers: spread the work with a cross-run-stable
        # fold over the tuple's values (Python's hash is salted)
        from repro.dist.placement import _stable_hash

        acc = 0
        for v in tup.values:
            acc = (acc * 31 + _stable_hash(v)) & 0x7FFFFFFF
        return acc % self.n_nodes

    def _insert_shards(self, tup: JTuple) -> InsertOutcome:
        """Insert a popped tuple into its owning shard(s)."""
        home = self.placements.home_of(tup, self.n_nodes)
        if home is not None:
            return self.shards[home].insert(tup)
        outcome = InsertOutcome.NEW
        for shard in self.shards:
            outcome = shard.insert(tup)
        return outcome

    # -- put routing ------------------------------------------------------------

    def _route_put(self, tup: JTuple, producer: int, meter: CostMeter) -> None:
        name = tup.schema.name
        home = self.placements.home_of(tup, self.n_nodes)
        if home is not None:
            if tup in self.shards[home]:
                self.stats.table(name).duplicates += 1
                return
            self.traffic.send(producer, home, 1)
        else:
            if tup in self.shards[0]:
                self.stats.table(name).duplicates += 1
                return
            for node in range(self.n_nodes):
                self.traffic.send(producer, node, 1)
        ts = self.shards[0].timestamp(tup)
        if self.delta.insert(tup, ts):
            self.stats.table(name).delta_inserts += 1
            meter.charge("delta_insert")
        else:
            self.stats.table(name).duplicates += 1

    # -- superstep ------------------------------------------------------------

    def _run_step(self, batch: list[JTuple]) -> None:
        self.stats.on_step(len(batch))
        self.traffic = StepTraffic(self.options.net)
        # phase A: land the class on its shards
        fireable: list[tuple[JTuple, int]] = []
        for tup in batch:
            outcome = self._insert_shards(tup)
            if outcome is InsertOutcome.DUPLICATE:
                self.stats.table(tup.schema.name).duplicates += 1
                continue
            self.stats.table(tup.schema.name).gamma_inserts += 1
            fireable.append((tup, self.fire_home(tup)))
        # phase B: fire, in deterministic class order, on the home nodes
        node_cost = [0.0] * self.n_nodes
        pending: list[tuple[int, list[JTuple], CostMeter]] = []
        step_lines: list[tuple[tuple, str]] = []
        for tup, node in fireable:
            meter = CostMeter()
            meter.charge("delta_pop")
            for rule in self.program.rules_for(tup.schema.name):
                self.stats.on_fire(tup.schema.name, rule.name)
                meter.charge("rule_fire")
                trigger_ts = self.shards[node].timestamp(tup)
                ctx = _DistRuleContext(
                    self,
                    node,
                    self.shards[node],
                    self.program.decls,
                    meter,
                    rule,
                    tup,
                    trigger_ts,
                    check_mode=self.causality_check,
                    collector=self.stats,
                )
                rule.body(ctx, tup)
                ctx.finish()
                if ctx.output:
                    tie = (tup.schema.name, tuple(repr(v) for v in tup.values))
                    ridx = self._rule_index[id(rule)]
                    step_lines.extend(
                        ((trigger_ts.key, tie, ridx, j), line)
                        for j, line in enumerate(ctx.output)
                    )
                    self.stats.rule(rule.name).output_lines += len(ctx.output)
                for put in ctx.puts:
                    self.stats.on_put(rule.name, put.schema.name)
                pending.append((node, list(ctx.puts), meter))
            node_cost[node] += meter.total_cost
        # output in canonical keyed order (a step is one equivalence
        # class): same contract as the single-node kernel, so dist runs
        # stay byte-identical when several firings of one class print
        if step_lines:
            if len(step_lines) > 1:
                step_lines.sort(key=lambda kl: kl[0])
            self.output.extend(line for _key, line in step_lines)
        # phase C: route effects (deterministic order)
        for node, puts, meter in pending:
            for put in puts:
                self._route_put(put, node, meter)
        # timing
        compute = max(node_cost) if node_cost else 0.0
        comm = self.traffic.comm_time(self.n_nodes)
        barrier = _BARRIER_COST * math.log2(max(2, self.n_nodes))
        t = self._totals
        t.compute_time += compute
        t.comm_time += comm
        t.barrier_time += barrier
        t.elapsed += compute + comm + barrier
        t.messages += self.traffic.messages()
        t.tuples_moved += self.traffic.tuples_moved()
        for i, c in enumerate(node_cost):
            t.node_busy[i] += c

    # -- run ------------------------------------------------------------

    def run(self) -> DistRunResult:
        if self._ran:
            raise EngineError("a DistEngine instance can only run once")
        self._ran = True
        init_meter = CostMeter()
        for tup in self.program.initial_puts:
            self._route_put(tup, producer=0, meter=init_meter)
        self._totals.elapsed += init_meter.total_cost
        steps = 0
        while self.delta:
            if self.max_steps is not None and steps >= self.max_steps:
                raise EngineError("distributed run exceeded max_steps")
            steps += 1
            self._run_step(self.delta.pop_min_class())
        t = self._totals
        t.steps = steps
        t.remote_queries = self.remote_queries
        t.shard_sizes = {
            name: [shard.size(name) for shard in self.shards]
            for name in self.program.tables
        }
        t.shards = self.shards
        return t


def run_distributed(
    program: Program, options: DistOptions | None = None, **kw
) -> DistRunResult:
    """Run a program on the simulated cluster."""
    opts = options or DistOptions()
    if kw:
        from dataclasses import replace

        opts = replace(opts, **kw)
    return DistEngine(program, opts).run()
