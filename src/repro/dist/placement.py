"""Tuple-placement policies for distributed execution (§2 stage 3).

"For each target architecture, the programmer now designs a set of
instructions to the compiler saying which rules should be run in
parallel, whether each set of tuples should be **partitioned,
duplicated or shared** across the different cores or computers (for
distributed implementations), and how the communication should be
implemented.  These instructions are separate from the program."

Policies (all external to the program, like every other hint):

* :class:`Partitioned` — tuples hash-partitioned on one field; each
  shard owns its slice (the paper's *partitioned*);
* :class:`Replicated` — every node holds a full copy (*duplicated*);
  cheap to query anywhere, each insert broadcasts;
* :class:`OnNode` — pinned to one node (*shared* via its owner —
  coordinator-style tables like a controller's state).

``PlacementMap`` resolves a program's tables to policies, defaulting
to ``Partitioned`` on the primary key's first field (or the first int
field) — the natural default for relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import EngineError
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple

__all__ = [
    "Partitioned",
    "Replicated",
    "OnNode",
    "Placement",
    "PlacementMap",
    "spread_hash",
]


def _stable_hash(value) -> int:
    """Deterministic cross-run hash for partitioning (Python's str hash
    is salted per process; runs must be reproducible)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return hash(value) & 0x7FFFFFFF
    if isinstance(value, str):
        h = 2166136261
        for ch in value.encode("utf8"):
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        return h
    raise EngineError(f"cannot partition on value {value!r}")


def spread_hash(values) -> int:
    """Order-sensitive stable fold of a tuple's values, in [0, 2^31).

    This is the spread key for firing replicated-trigger tuples: every
    node owns the tuple, so the fire node is free — but it must be the
    *same* free choice on every run and in every process, which rules
    out ``hash()``."""
    acc = 0
    for v in values:
        acc = (acc * 31 + _stable_hash(v)) & 0x7FFFFFFF
    return acc


@dataclass(frozen=True)
class Partitioned:
    """Hash-partition tuples of a table on ``field``."""

    field: str

    def home(self, tup: JTuple, n_nodes: int) -> int:
        return _stable_hash(tup.field(self.field)) % n_nodes

    def home_for_value(self, value, n_nodes: int) -> int:
        return _stable_hash(value) % n_nodes


@dataclass(frozen=True)
class Replicated:
    """Full copy on every node."""


@dataclass(frozen=True)
class OnNode:
    """Pinned to one node."""

    node: int = 0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise EngineError("node ids are non-negative")


Placement = Partitioned | Replicated | OnNode


class PlacementMap:
    """Table name → placement, with a sensible default.

    When the cluster size is known at construction (``n_nodes``), every
    ``OnNode`` pin is validated against it immediately — an
    out-of-range pin is a configuration error, not a hint to be
    silently wrapped onto whichever node ``pin % n_nodes`` happens to
    land on."""

    def __init__(
        self,
        schemas: Mapping[str, TableSchema],
        placements: Mapping[str, Placement] | None = None,
        n_nodes: int | None = None,
    ):
        self._map: dict[str, Placement] = {}
        self.n_nodes = n_nodes
        placements = dict(placements or {})
        for name, schema in schemas.items():
            p = placements.pop(name, None)
            if p is None:
                p = self._default(schema)
            if isinstance(p, Partitioned):
                pos = schema.field_position(p.field)  # validate existence
                ftype = schema.fields[pos].type
                if ftype == "any":
                    raise EngineError(
                        f"table {name!r} cannot be partitioned on field "
                        f"{p.field!r}: its type is 'any', which has no "
                        f"stable cross-process hash — partition on an "
                        f"int/float/str/bool field or replicate the table"
                    )
            if n_nodes is not None and isinstance(p, OnNode) and p.node >= n_nodes:
                raise EngineError(
                    f"table {name!r} is pinned to node {p.node} "
                    f"(OnNode({p.node})) but the cluster has only "
                    f"{n_nodes} node(s) — node ids are 0..{n_nodes - 1}"
                )
            self._map[name] = p
        if placements:
            raise EngineError(
                f"placements given for unknown tables: {sorted(placements)}"
            )

    @staticmethod
    def _default(schema: TableSchema) -> Placement:
        if schema.has_key:
            key = schema.fields[schema.key_indexes[0]]
            if key.type != "any":  # 'any' has no stable hash; fall through
                return Partitioned(key.name)
        for f in schema.fields:
            if f.type == "int":
                return Partitioned(f.name)
        return Replicated()

    def __getitem__(self, table: str) -> Placement:
        return self._map[table]

    def items(self):
        return self._map.items()

    def home_of(self, tup: JTuple, n_nodes: int) -> int | None:
        """Owning node of a tuple; None means every node (replicated)."""
        p = self._map[tup.schema.name]
        if isinstance(p, Partitioned):
            return p.home(tup, n_nodes)
        if isinstance(p, OnNode):
            if p.node >= n_nodes:
                # never wrap: OnNode(5) on a 4-node cluster is a config
                # error, not a request for node 1
                raise EngineError(
                    f"table {tup.schema.name!r} is pinned to node {p.node} "
                    f"(OnNode({p.node})) but the cluster has only "
                    f"{n_nodes} node(s) — node ids are 0..{n_nodes - 1}"
                )
            return p.node
        return None

    def owners_of(self, tup: JTuple, n_nodes: int) -> list[int]:
        """Every node whose shard stores this tuple: one node for
        partitioned/pinned tables, all nodes for replicated ones.  The
        v2 runtime ships each fresh put to exactly this set (the
        worker-to-worker shuffle targets)."""
        home = self.home_of(tup, n_nodes)
        if home is None:
            return list(range(n_nodes))
        return [home]
