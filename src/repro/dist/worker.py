"""The shard worker process of :class:`~repro.dist.procrun.ProcessShardRuntime`.

One worker = one OS process owning the Gamma shards its
:class:`~repro.dist.placement.PlacementMap` assigns it.  The worker is
a thin loop around the existing single-node machinery:

* its Gamma shard is a :class:`~repro.core.kernel.StepKernel` database
  (same registry construction, same insert/select semantics);
* firing reuses :class:`~repro.core.rules.RuleContext` verbatim, except
  that queries route across the cluster (:class:`_ShardRuleContext`),
  the exact override point the simulated
  :class:`~repro.dist.engine.DistEngine` uses;
* the coordinator drives it in causal supersteps: ``bootstrap`` (load
  the owned slice of the last committed snapshot), ``step`` (phase-A
  insert the owned part of the minimal Delta class, fire the tuples
  whose fire-home is this node, reply with the per-rule put/output
  records), ``serve`` (answer a remote query against the local shard),
  ``abort`` (another worker died mid-step: unwind and await the retry),
  ``finish`` (report shard sizes + stats and exit).

Determinism: a worker never mutates anything but its own shard, all
effects (puts, output) travel back as records the coordinator merges in
global batch order, and remote query results are value-sorted on the
requesting side — so the merged run is byte-identical to the
single-node engine.

Idempotency: the reply to each executed step is cached; a retried step
(after another worker's crash) replays the cached records without
re-executing, giving at-most-once rule execution per worker per step —
which is what keeps ``unsafe`` I/O rules safe under crash recovery.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import traceback
from typing import Any

from repro.core.errors import EngineError
from repro.core.kernel import StepKernel
from repro.core.program import ExecOptions, Program
from repro.core.query import Query, QueryKind
from repro.core.rules import RuleContext
from repro.core.tuples import JTuple
from repro.dist.network import WireStats
from repro.dist.placement import OnNode, PlacementMap, Partitioned, Replicated
from repro.exec.metering import NULL_METER

__all__ = ["ShardWorker", "program_fingerprint", "worker_entry"]


def program_fingerprint(program: Program) -> str:
    """Stable digest of a program's schemas + rule set, used in the
    coordinator/worker handshake: a forked worker must be running the
    very program the coordinator is stepping."""
    h = hashlib.sha1()
    for name in sorted(program.schemas()):
        schema = program.schemas()[name]
        h.update(name.encode())
        for f in schema.fields:
            h.update(f"{f.name}:{f.type}".encode())
    for rule in program.rules:
        h.update(rule.name.encode())
        h.update(rule.trigger.schema.name.encode())
    return h.hexdigest()


class _StepAborted(Exception):
    """Raised out of a firing when the coordinator aborts the step
    (another worker died); the step will be re-broadcast."""


class _ShardRuleContext(RuleContext):
    """Rule context whose queries route across the cluster, through the
    coordinator's relay.  Same override point as the simulated
    engine's ``_DistRuleContext``; verdicts follow ``check_locality``:
    local (replicated / co-partitioned / pinned here), routed (one
    remote owner), or broadcast (partition field unbound)."""

    __slots__ = ("_worker",)

    def __init__(self, worker: "ShardWorker", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._worker = worker

    def _run_query(self, query: Query) -> list[JTuple]:
        w = self._worker
        name = query.schema.name
        local = True
        remote: list[int] = []
        if (self._rule.name, name) in w.static_local:
            pass  # check_locality proved this query co-located
        else:
            placement = w.placements[name]
            if isinstance(placement, Replicated):
                pass
            elif isinstance(placement, OnNode):
                if placement.node != w.node:
                    local = False
                    remote = [placement.node]
            else:  # Partitioned
                pos = query.schema.field_position(placement.field)
                if pos in query.eq:
                    home = placement.home_for_value(query.eq[pos], w.n_nodes)
                    if home != w.node:
                        local = False
                        remote = [home]
                else:
                    remote = [h for h in range(w.n_nodes) if h != w.node]
        results = w.db.select(query) if local else []
        if remote:
            rows = w.remote_query(query, remote)
            fetched = [w.make_tuple(name, vals) for vals in rows]
            results = results + [t for t in fetched if query.matches(t)]
            # per-shard result sets are value-sorted (TreeSetStore scan
            # order); re-sorting the merged set by value reproduces the
            # single-node global order exactly
            results.sort(key=lambda t: t.values)
        if self._collector is not None:
            names = query.schema.field_names
            self._collector.on_query(
                self._rule.name,
                name,
                len(results),
                eq_fields=tuple(sorted(names[i] for i in query.eq)),
                range_fields=tuple(sorted(names[i] for i in query.ranges)),
            )
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": name,
                        "kind": query.kind.value,
                        "n_results": len(results),
                    },
                )
            )
        return results


class ShardWorker:
    """One worker process: a shard of Gamma plus the firing loop."""

    def __init__(
        self,
        node: int,
        n_nodes: int,
        conn,
        program: Program,
        placements: PlacementMap,
        conf: dict,
    ):
        self.node = node
        self.n_nodes = n_nodes
        self.conn = conn
        self.program = program
        self.placements = placements
        self.check_mode: str = conf["check_mode"]
        self.traced: bool = conf["traced"]
        self.static_local: frozenset = conf["static_local"]
        # the worker's shard rides on the existing step kernel: same
        # registry construction, database, and timestamp machinery as a
        # single-node sequential run (plans off — queries must route)
        self.kernel = StepKernel(
            program,
            ExecOptions(
                strategy="sequential",
                causality_check=self.check_mode,
                plan_cache=False,
                metering="off",
            ),
        )
        self.db = self.kernel.db
        self.stats = self.kernel.stats
        self.schemas = program.schemas()
        self.wire = WireStats()
        self.queries_served = 0
        self.remote_queries = 0
        self._qid = 0
        self._attempt = 0
        #: (step number, cached reply) of the last executed step — the
        #: at-most-once replay buffer for crash-recovery retries
        self._cache: tuple[int, dict] | None = None

    # -- framing (real byte counts, not simulated ones) ---------------------

    def _send(self, msg: dict) -> None:
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.send_bytes(data)
        self.wire.on_send(len(data))

    def _recv(self) -> dict:
        data = self.conn.recv_bytes()
        self.wire.on_recv(len(data))
        return pickle.loads(data)

    def make_tuple(self, table: str, values) -> JTuple:
        """Rebuild a wire tuple against this process's schema objects
        (tuple identity/hashing is schema-identity based)."""
        return JTuple(self.schemas[table], tuple(values))

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        self._send(
            {
                "t": "hello",
                "node": self.node,
                "pid": os.getpid(),
                "fingerprint": program_fingerprint(self.program),
            }
        )
        while True:
            msg = self._recv()
            t = msg["t"]
            if t == "step":
                self._step(msg)
            elif t == "serve":
                self._serve(msg)
            elif t == "bootstrap":
                self.db.load_tables(msg["tables"])
            elif t == "abort":
                pass  # nothing in flight at the main loop
            elif t == "finish":
                self._finish()
                return
            else:
                raise EngineError(f"worker {self.node}: unknown message {t!r}")

    # -- superstep -----------------------------------------------------------

    def _step(self, msg: dict) -> None:
        step = msg["step"]
        self._attempt = msg["attempt"]
        if self._cache is not None and self._cache[0] == step:
            # crash-recovery retry of a step this worker already ran:
            # replay the cached records, do not re-execute (rules with
            # unsafe I/O must run at most once per worker per step)
            payload = dict(self._cache[1])
            payload["attempt"] = self._attempt
            self._send(payload)
            return
        owned = [self.make_tuple(name, vals) for name, vals in msg["insert"]]
        if owned:
            # phase A: land this shard's slice of the minimal class;
            # duplicate outcomes are fine (retried steps re-insert)
            self.db.insert_batch(owned, frozenset())
        records: list[tuple[int, list[dict]]] = []
        try:
            for idx, (name, vals) in msg["fire"]:
                tup = self.make_tuple(name, vals)
                records.append((idx, self._fire(tup)))
        except _StepAborted:
            return  # partial work discarded; the retry re-executes
        payload = {
            "t": "done",
            "step": step,
            "attempt": self._attempt,
            "records": records,
        }
        self._cache = (step, payload)
        self._send(payload)

    def _fire(self, tup: JTuple) -> list[dict]:
        """Fire every rule the tuple triggers, one record per rule in
        declaration order — the coordinator merges them in global
        (batch index, rule) order, which is the single-node task
        order."""
        entries: list[dict] = []
        ts = self.db.timestamp(tup)
        for rule in self.program.rules_for(tup.schema.name):
            events: list | None = [] if self.traced else None
            ctx = _ShardRuleContext(
                self,
                self.db,
                self.program.decls,
                NULL_METER,
                rule,
                tup,
                ts,
                self.check_mode,
                self.stats,
                None,
                None,
                events,
                None,
            )
            rule.body(ctx, tup)
            ctx.finish()
            entries.append(
                {
                    "rule": rule.name,
                    "puts": [(p.schema.name, tuple(p.values)) for p in ctx.puts],
                    "output": list(ctx.output),
                    "events": events or [],
                }
            )
        return entries

    # -- remote queries ------------------------------------------------------

    def remote_query(self, query: Query, homes: list[int]) -> list:
        """Ask the coordinator to gather a query's rows from the owning
        shard(s).  Only the shippable parts travel (table, eq, ranges) —
        residual ``where`` lambdas are applied requester-side.  While
        blocked on the answer, the worker keeps serving incoming remote
        queries, which is what makes the single-pipe relay deadlock-free."""
        self._qid += 1
        qid = f"{self.node}:{self._qid}"
        self.remote_queries += 1
        self._send(
            {
                "t": "query",
                "qid": qid,
                "attempt": self._attempt,
                "table": query.schema.name,
                "eq": dict(query.eq),
                "ranges": {i: tuple(r) for i, r in query.ranges.items()},
                "homes": homes,
            }
        )
        while True:
            msg = self._recv()
            t = msg["t"]
            if t == "serve":
                self._serve(msg)
            elif t == "result" and msg["qid"] == qid:
                return msg["rows"]
            elif t == "abort":
                raise _StepAborted()
            else:
                raise EngineError(
                    f"worker {self.node}: unexpected {t!r} while awaiting "
                    f"query {qid}"
                )

    def _serve(self, msg: dict) -> None:
        schema = self.schemas[msg["table"]]
        q = Query(schema, dict(msg["eq"]), dict(msg["ranges"]), None, QueryKind.POSITIVE)
        rows = [tuple(t.values) for t in self.db.select(q)]
        self.queries_served += 1
        self._send(
            {"t": "answer", "qid": msg["qid"], "attempt": msg["attempt"], "rows": rows}
        )

    # -- teardown ------------------------------------------------------------

    def _finish(self) -> None:
        self._send(
            {
                "t": "bye",
                "node": self.node,
                "table_sizes": self.db.table_sizes(),
                "stats": self.stats.to_state(),
                "wire": vars(self.wire).copy(),
                "queries_served": self.queries_served,
                "remote_queries": self.remote_queries,
            }
        )
        self.conn.close()


def worker_entry(
    node: int,
    n_nodes: int,
    conn,
    program: Program,
    placements: PlacementMap,
    conf: dict,
) -> None:
    """Process entry point (fork start method: everything is inherited,
    nothing is pickled).  A failing rule is reported to the coordinator
    as an ``error`` message so deterministic failures surface once
    instead of looping through crash recovery."""
    try:
        ShardWorker(node, n_nodes, conn, program, placements, conf).run()
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass  # coordinator went away; just exit
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        try:
            conn.send_bytes(
                pickle.dumps(
                    {
                        "t": "error",
                        "node": node,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    }
                )
            )
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
