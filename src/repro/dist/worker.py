"""The shard worker process of :class:`~repro.dist.procrun.ProcessShardRuntime`.

One worker = one OS process owning the Gamma shards its
:class:`~repro.dist.placement.PlacementMap` assigns it.  The worker is
a thin loop around the existing single-node machinery:

* its Gamma shard is a :class:`~repro.core.kernel.StepKernel` database
  (same registry construction, same insert/select semantics);
* firing reuses :class:`~repro.core.rules.RuleContext` verbatim, except
  that queries route across the cluster (:class:`_ShardRuleContext`),
  the exact override point the simulated
  :class:`~repro.dist.engine.DistEngine` uses.

v2 replaces PR 5's coordinator relay with a **peer mesh**: every
worker holds a direct :mod:`~repro.dist.transport` channel to every
other worker, and two kinds of data-plane traffic travel on it —

* ``stage`` — the put-set shuffle.  While firing step N, a worker
  eagerly ships each fresh put to the put's owner shards, keyed by a
  deterministic ref ``(origin, step, batch idx, rule idx, put idx)``.
  The coordinator's later phase-A insert for that tuple is then just
  the ref (control-plane bytes), resolved from the local staging
  buffer — the shuffle of step N overlaps both the firing of step N
  and, because resolution is lazy, the firing of whatever later step
  finally pops the tuple;
* ``q`` / ``a`` — routed queries and their answers, worker to owner
  directly.  A worker blocked on an answer keeps serving incoming
  queries (and draining stage traffic), which keeps the all-to-all
  exchange deadlock-free exactly like PR 5's serve-while-blocked
  discipline — just without the two extra coordinator hops.

Queries are tagged with their superstep and **ready-gated**: a query
for step N that beats the receiver's own phase-A insert for N into the
mesh is deferred until that insert lands, restoring the barrier the
coordinator's FIFO relay used to provide implicitly.

The coordinator drives supersteps over the control channel:
``bootstrap`` (load the owned slice of the last committed snapshot),
``step`` (phase-A insert refs/values, fire assignments, staging drop
list), ``abort`` (another worker died mid-step: unwind and await the
retry), ``finish`` (report shard sizes + stats and exit).

Determinism: a worker never mutates anything but its own shard, all
effects (puts, output) travel back as records the coordinator merges in
global batch order, and remote query results are value-sorted on the
requesting side — so the merged run is byte-identical to the
single-node engine.

Idempotency: the reply to each executed step is cached; a retried step
(after another worker's crash) replays the cached records — and re-sends
its cached stage messages, so a re-forked receiver regains the staged
tuples — without re-executing, giving at-most-once rule execution per
worker per step, which is what keeps ``unsafe`` I/O rules safe under
crash recovery.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import traceback
from collections import deque
from typing import Any

from repro.core.errors import EngineError
from repro.core.kernel import StepKernel
from repro.core.program import ExecOptions, Program
from repro.core.query import Query, QueryKind
from repro.core.rules import RuleContext
from repro.core.tuples import JTuple
from repro.dist.network import WireStats
from repro.dist.placement import OnNode, PlacementMap, Partitioned, Replicated
from repro.dist.transport import (
    Channel,
    PeerListener,
    PipeChannel,
    SocketChannel,
    connect_channel,
    wait_readable,
)
from repro.exec.metering import NULL_METER

__all__ = ["ShardWorker", "program_fingerprint", "worker_entry"]


def program_fingerprint(program: Program) -> str:
    """Stable digest of a program's schemas + rule set, used in the
    coordinator/worker handshake: a forked worker must be running the
    very program the coordinator is stepping."""
    h = hashlib.sha1()
    for name in sorted(program.schemas()):
        schema = program.schemas()[name]
        h.update(name.encode())
        for f in schema.fields:
            h.update(f"{f.name}:{f.type}".encode())
    for rule in program.rules:
        h.update(rule.name.encode())
        h.update(rule.trigger.schema.name.encode())
    return h.hexdigest()


class _StepAborted(Exception):
    """Raised out of a firing when the coordinator aborts the step
    (another worker died); the step will be re-broadcast."""


class _ShardRuleContext(RuleContext):
    """Rule context whose queries route across the cluster — directly
    to the owning peers over the mesh.  Same override point as the
    simulated engine's ``_DistRuleContext``; verdicts follow
    ``check_locality``: local (replicated / co-partitioned / pinned
    here), routed (one remote owner), or broadcast (partition field
    unbound)."""

    __slots__ = ("_worker",)

    def __init__(self, worker: "ShardWorker", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._worker = worker

    def _run_query(self, query: Query) -> list[JTuple]:
        w = self._worker
        name = query.schema.name
        local = True
        remote: list[int] = []
        if (self._rule.name, name) in w.static_local:
            pass  # check_locality proved this query co-located
        else:
            placement = w.placements[name]
            if isinstance(placement, Replicated):
                pass
            elif isinstance(placement, OnNode):
                if placement.node != w.node:
                    local = False
                    remote = [placement.node]
            else:  # Partitioned
                pos = query.schema.field_position(placement.field)
                if pos in query.eq:
                    home = placement.home_for_value(query.eq[pos], w.n_nodes)
                    if home != w.node:
                        local = False
                        remote = [home]
                else:
                    remote = [h for h in range(w.n_nodes) if h != w.node]
        results = w.db.select(query) if local else []
        if remote:
            rows = w.remote_query(query, remote)
            fetched = [w.make_tuple(name, vals) for vals in rows]
            results = results + [t for t in fetched if query.matches(t)]
            # per-shard result sets are value-sorted (TreeSetStore scan
            # order); re-sorting the merged set by value reproduces the
            # single-node global order exactly
            results.sort(key=lambda t: t.values)
        if self._collector is not None:
            names = query.schema.field_names
            self._collector.on_query(
                self._rule.name,
                name,
                len(results),
                eq_fields=tuple(sorted(names[i] for i in query.eq)),
                range_fields=tuple(sorted(names[i] for i in query.ranges)),
            )
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": name,
                        "kind": query.kind.value,
                        "n_results": len(results),
                    },
                )
            )
        return results


class ShardWorker:
    """One worker process: a shard of Gamma, a mesh endpoint, and the
    firing loop."""

    def __init__(
        self,
        node: int,
        n_nodes: int,
        channel: Channel,
        program: Program,
        placements: PlacementMap,
        conf: dict,
    ):
        self.node = node
        self.n_nodes = n_nodes
        self.channel = channel
        self.program = program
        self.placements = placements
        self.check_mode: str = conf["check_mode"]
        self.traced: bool = conf["traced"]
        self.static_local: frozenset = conf["static_local"]
        self.transport: str = conf.get("transport", "pipe")
        self.incarnation: int = conf.get("incarnation", 0)
        self._fault_serve_die = conf.get("fault_serve_die")
        # the worker's shard rides on the existing step kernel: same
        # registry construction, database, and timestamp machinery as a
        # single-node sequential run (plans off — queries must route)
        self.kernel = StepKernel(
            program,
            ExecOptions(
                strategy="sequential",
                causality_check=self.check_mode,
                plan_cache=False,
                metering="off",
            ),
        )
        self.db = self.kernel.db
        self.stats = self.kernel.stats
        self.schemas = program.schemas()
        self.wire = WireStats()  # control channel (coordinator)
        self.peer_wire = WireStats()  # mesh (other workers)
        self.queries_served = 0
        self.remote_queries = 0
        self._qid = 0
        self._attempt = 0
        self._step_no = 0
        self._applied = 0  # latest step whose phase A landed in Gamma
        # -- mesh state -------------------------------------------------------
        self.listener = PeerListener(self.transport, tag=f"w{node}")
        self.peers: dict[int, SocketChannel] = {}
        self._peer_of: dict[SocketChannel, int] = {}
        #: queries read off the mesh but not yet served
        self._inbox: deque = deque()
        #: queries for a step whose phase A has not landed yet
        self._deferred: deque = deque()
        #: qid -> [(responder node, rows)] for the in-flight query
        self._answers: dict[str, list] = {}
        # -- shuffle state ----------------------------------------------------
        #: ref -> (table, values): put-sets staged here by their origin
        self._staging: dict[tuple, tuple[str, Any]] = {}
        #: step -> refs resolved by that step's phase A; purged once a
        #: *later* step arrives (the coordinator broadcasting step N+1
        #: is the commit acknowledgement for step N)
        self._consumed: dict[int, list[tuple]] = {}
        #: (step number, cached reply, staged sends) of the last executed
        #: step — the at-most-once replay buffer for crash-recovery retries
        self._cache: tuple[int, dict, list] | None = None

    # -- control framing (real byte counts, not simulated ones) ---------------

    def _send(self, msg: dict) -> None:
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        self.channel.send_bytes(data)
        self.wire.on_send(len(data))

    def _recv(self) -> dict:
        data = self.channel.recv_bytes()
        self.wire.on_recv(len(data))
        return pickle.loads(data)

    def make_tuple(self, table: str, values) -> JTuple:
        """Rebuild a wire tuple against this process's schema objects
        (tuple identity/hashing is schema-identity based)."""
        return JTuple(self.schemas[table], tuple(values))

    # -- mesh plumbing ---------------------------------------------------------

    def _register_peer(self, node: int, ch: SocketChannel) -> None:
        old = self.peers.get(node)
        if old is not None and old is not ch:
            self._peer_of.pop(old, None)
            old.close()
        self.peers[node] = ch
        self._peer_of[ch] = node

    def _drop_peer(self, ch: SocketChannel) -> None:
        node = self._peer_of.pop(ch, None)
        if node is not None and self.peers.get(node) is ch:
            del self.peers[node]
        ch.close()

    def _accept_peer(self) -> None:
        ch = self.listener.accept(timeout=30.0)
        if ch is None:
            return
        data = ch.recv_bytes()
        self.peer_wire.on_recv(len(data))
        hello = pickle.loads(data)
        if hello.get("t") != "peer-hello":
            ch.close()
            return
        self._register_peer(hello["node"], ch)

    def _connect_mesh(self, connect: dict, await_nodes: list) -> None:
        """Dial the given peers, then accept until every awaited peer
        has dialled us.  A dial that fails is skipped: the peer is dead
        and the coordinator will orchestrate its replacement (which
        dials *us*)."""
        hello = pickle.dumps(
            {"t": "peer-hello", "node": self.node, "incarnation": self.incarnation},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for j in sorted(connect):
            try:
                ch = connect_channel(connect[j])
                ch.send_bytes(hello)
            except (OSError, EOFError):
                continue
            self.peer_wire.on_send(len(hello))
            self._register_peer(j, ch)
        while any(j not in self.peers for j in await_nodes):
            self._accept_peer()

    def _peer_send(self, node: int, msg: dict) -> bool:
        ch = self.peers.get(node)
        if ch is None:
            return False
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            ch.send_with_drain(data, lambda: self._pump_peers(0.01))
        except (OSError, EOFError):
            # dead peer: drop the channel and let the coordinator's
            # recovery protocol sort the membership out
            self._drop_peer(ch)
            return False
        self.peer_wire.on_send(len(data))
        return True

    def _pump_peers(self, timeout: float = 0.0) -> bool:
        """Read one round of ready mesh traffic.  Stage tuples and
        answers are absorbed immediately; queries go to the inbox (they
        are only *served* from safe points, never mid-send).  Returns
        True when anything was handled."""
        chans: list = [self.listener]
        chans.extend(self.peers.values())
        ready = wait_readable(chans, timeout)
        for ch in ready:
            if ch is self.listener:
                self._accept_peer()
                continue
            try:
                data = ch.recv_bytes()
            except (EOFError, ConnectionResetError, OSError):
                self._drop_peer(ch)
                continue
            self.peer_wire.on_recv(len(data))
            msg = pickle.loads(data)
            t = msg["t"]
            if t == "stage":
                self._staging[tuple(msg["ref"])] = (msg["table"], msg["vals"])
            elif t == "a":
                self._answers.setdefault(msg["qid"], []).append(
                    (msg["node"], msg["rows"])
                )
            elif t == "q":
                self._inbox.append((ch, msg))
        return bool(ready)

    def _service_inbox(self) -> None:
        """Serve every inbox query whose step is ready; queries that
        outran our own phase-A insert stay deferred (ready-gating)."""
        while self._inbox:
            ch, msg = self._inbox.popleft()
            if msg["step"] > self._applied:
                self._deferred.append((ch, msg))
            else:
                self._serve_peer(ch, msg)

    def _flush_deferred(self) -> None:
        while self._deferred:
            ch, msg = self._deferred.popleft()
            if msg["step"] > self._applied:
                self._deferred.appendleft((ch, msg))
                return
            self._serve_peer(ch, msg)

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        self._send(
            {
                "t": "hello",
                "node": self.node,
                "pid": os.getpid(),
                "incarnation": self.incarnation,
                "fingerprint": program_fingerprint(self.program),
                "peer_addr": self.listener.address,
            }
        )
        while True:
            msg = self._next_control()
            t = msg["t"]
            if t == "step":
                self._step(msg)
            elif t == "peers":
                self._connect_mesh(msg["connect"], msg["await"])
                self._send({"t": "mesh", "node": self.node})
            elif t == "bootstrap":
                self.db.load_tables(msg["tables"])
            elif t == "abort":
                pass  # nothing in flight at the main loop
            elif t == "finish":
                self._finish()
                return
            else:
                raise EngineError(f"worker {self.node}: unknown message {t!r}")

    def _next_control(self) -> dict:
        """Block for the next coordinator message, servicing the mesh
        (stage traffic, queries, a replacement peer dialling in) while
        idle."""
        while True:
            self._service_inbox()
            chans: list = [self.channel, self.listener]
            chans.extend(self.peers.values())
            ready = wait_readable(chans, timeout=None)
            # mesh first: a re-forked peer must be re-registered before
            # the retry step that will make us stage to it
            control_ready = False
            for ch in ready:
                if ch is self.channel:
                    control_ready = True
                elif ch is self.listener:
                    self._accept_peer()
                else:
                    self._pump_one(ch)
            if control_ready:
                return self._recv()

    def _pump_one(self, ch: SocketChannel) -> None:
        try:
            data = ch.recv_bytes()
        except (EOFError, ConnectionResetError, OSError):
            self._drop_peer(ch)
            return
        self.peer_wire.on_recv(len(data))
        msg = pickle.loads(data)
        t = msg["t"]
        if t == "stage":
            self._staging[tuple(msg["ref"])] = (msg["table"], msg["vals"])
        elif t == "a":
            self._answers.setdefault(msg["qid"], []).append((msg["node"], msg["rows"]))
        elif t == "q":
            self._inbox.append((ch, msg))

    # -- superstep -----------------------------------------------------------

    def _counters(self) -> dict:
        return {
            "wire": self.wire.to_state(),
            "peer_wire": self.peer_wire.to_state(),
            "queries_served": self.queries_served,
            "remote_queries": self.remote_queries,
        }

    def _step(self, msg: dict) -> None:
        step = msg["step"]
        self._attempt = msg["attempt"]
        self._step_no = step
        self._answers.clear()
        for ref in msg.get("drop", ()):
            self._staging.pop(tuple(ref), None)
        if self._cache is not None and self._cache[0] == step:
            # crash-recovery retry of a step this worker already ran:
            # replay the cached records, do not re-execute (rules with
            # unsafe I/O must run at most once per worker per step).
            # Re-send the cached stage messages first: a re-forked
            # receiver lost its staging buffer and the coordinator will
            # reference by value only for tuples it knows are gone —
            # idempotent for everyone who kept theirs.
            for target, smsg in self._cache[2]:
                self._peer_send(target, smsg)
            payload = dict(self._cache[1])
            payload["attempt"] = self._attempt
            payload["counters"] = self._counters()
            self._send(payload)
            return
        # a step beyond anything consumed so far acknowledges every
        # earlier step's commit: purge the staging refs they resolved
        for s in [s for s in self._consumed if s < step]:
            for ref in self._consumed.pop(s):
                self._staging.pop(ref, None)
        owned, used_refs = self._resolve_inserts(msg["insert"])
        if owned:
            # phase A: land this shard's slice of the minimal class;
            # duplicate outcomes are fine (retried steps re-insert)
            self.db.insert_batch(owned, frozenset())
        self._consumed.setdefault(step, []).extend(used_refs)
        self._applied = max(self._applied, step)
        self._flush_deferred()
        records: list[tuple[int, list[dict]]] = []
        stage_log: list[tuple[int, dict]] = []
        try:
            for idx, pos in msg["fire"]:
                tup = owned[pos]
                entries = self._fire(tup)
                # eagerly shuffle the fresh puts to their owner shards:
                # step N's put-sets travel while step N is still firing,
                # and resolve lazily whenever a later step consumes them
                self._stage_puts(step, idx, entries, stage_log)
                records.append((idx, entries))
        except _StepAborted:
            return  # partial work discarded; the retry re-executes
        payload = {
            "t": "done",
            "step": step,
            "attempt": self._attempt,
            "records": records,
        }
        self._cache = (step, payload, stage_log)
        payload = dict(payload)
        payload["counters"] = self._counters()
        self._send(payload)

    def _resolve_inserts(self, entries: list) -> tuple[list[JTuple], list[tuple]]:
        """Materialise a phase-A insert list.  ``("v", table, values)``
        entries carry the tuple; ``("r", ref)`` entries resolve from the
        staging buffer, blocking on the mesh if the origin's stage
        frame is still in flight (it was sent before the done record
        that made the coordinator reference it, so it *will* arrive)."""
        owned: list[JTuple] = []
        used: list[tuple] = []
        for e in entries:
            if e[0] == "v":
                owned.append(self.make_tuple(e[1], e[2]))
                continue
            ref = tuple(e[1])
            ent = self._staging.get(ref)
            while ent is None:
                self._pump_peers(1.0)
                ent = self._staging.get(ref)
            owned.append(self.make_tuple(ent[0], ent[1]))
            used.append(ref)
        return owned, used

    def _stage_puts(
        self, step: int, idx: int, entries: list[dict], stage_log: list
    ) -> None:
        for eidx, entry in enumerate(entries):
            for j, (tname, vals) in enumerate(entry["puts"]):
                ref = (self.node, step, idx, eidx, j)
                owners = self.placements.owners_of(
                    self.make_tuple(tname, vals), self.n_nodes
                )
                smsg = None
                for o in owners:
                    if o == self.node:
                        self._staging[ref] = (tname, vals)
                        continue
                    if smsg is None:
                        smsg = {"t": "stage", "ref": ref, "table": tname, "vals": vals}
                    stage_log.append((o, smsg))
                    self._peer_send(o, smsg)

    def _fire(self, tup: JTuple) -> list[dict]:
        """Fire every rule the tuple triggers, one record per rule in
        declaration order — the coordinator merges them in global
        (batch index, rule) order, which is the single-node task
        order."""
        entries: list[dict] = []
        ts = self.db.timestamp(tup)
        for rule in self.program.rules_for(tup.schema.name):
            events: list | None = [] if self.traced else None
            ctx = _ShardRuleContext(
                self,
                self.db,
                self.program.decls,
                NULL_METER,
                rule,
                tup,
                ts,
                self.check_mode,
                self.stats,
                None,
                None,
                events,
                None,
            )
            rule.body(ctx, tup)
            ctx.finish()
            entries.append(
                {
                    "rule": rule.name,
                    "puts": [(p.schema.name, tuple(p.values)) for p in ctx.puts],
                    "output": list(ctx.output),
                    "events": events or [],
                }
            )
        return entries

    # -- remote queries ------------------------------------------------------

    def remote_query(self, query: Query, homes: list[int]) -> list:
        """Gather a query's rows from the owning shard(s), directly over
        the mesh.  Only the shippable parts travel (table, eq, ranges) —
        residual ``where`` lambdas are applied requester-side.  While
        blocked on an answer, the worker keeps serving incoming peer
        queries and draining stage traffic, which is what keeps the
        direct all-to-all exchange deadlock-free.  A dead responder is
        waited out: its death also severs its coordinator channel, so an
        abort for this attempt is already on its way."""
        self._qid += 1
        qid = f"{self.node}:{self.incarnation}:{self._qid}"
        self.remote_queries += 1
        msg = {
            "t": "q",
            "qid": qid,
            "node": self.node,
            "step": self._step_no,
            "attempt": self._attempt,
            "table": query.schema.name,
            "eq": dict(query.eq),
            "ranges": {i: tuple(r) for i, r in query.ranges.items()},
        }
        awaiting = set(homes)
        for h in homes:
            self._peer_send(h, msg)
        rows: list = []
        while awaiting:
            for node, part in self._answers.pop(qid, ()):
                if node in awaiting:
                    awaiting.discard(node)
                    rows.extend(part)
            if not awaiting:
                break
            self._service_inbox()
            chans: list = [self.channel, self.listener]
            chans.extend(self.peers.values())
            ready = wait_readable(chans, timeout=1.0)
            for ch in ready:
                if ch is self.channel:
                    cmsg = self._recv()
                    if cmsg["t"] == "abort":
                        raise _StepAborted()
                    raise EngineError(
                        f"worker {self.node}: unexpected {cmsg['t']!r} while "
                        f"awaiting query {qid}"
                    )
                if ch is self.listener:
                    self._accept_peer()
                else:
                    self._pump_one(ch)
        return rows

    def _serve_peer(self, ch: SocketChannel, msg: dict) -> None:
        if (
            self._fault_serve_die is not None
            and self.incarnation == 0
            and self.node == self._fault_serve_die[0]
            and msg["step"] >= self._fault_serve_die[1]
        ):
            # injected failure (tests): die with the query in flight,
            # between the peer's request and our reply
            os._exit(1)
        schema = self.schemas[msg["table"]]
        q = Query(schema, dict(msg["eq"]), dict(msg["ranges"]), None, QueryKind.POSITIVE)
        rows = [tuple(t.values) for t in self.db.select(q)]
        self.queries_served += 1
        node = self._peer_of.get(ch)
        if node is None:
            return
        self._peer_send(
            node, {"t": "a", "qid": msg["qid"], "node": self.node, "rows": rows}
        )

    # -- teardown ------------------------------------------------------------

    def _finish(self) -> None:
        self._send(
            {
                "t": "bye",
                "node": self.node,
                "table_sizes": self.db.table_sizes(),
                "stats": self.stats.to_state(),
                "wire": self.wire.to_state(),
                "peer_wire": self.peer_wire.to_state(),
                "queries_served": self.queries_served,
                "remote_queries": self.remote_queries,
            }
        )
        for ch in list(self.peers.values()):
            ch.close()
        self.listener.close()
        self.channel.close()


def _maybe_hang_for_test(node: int) -> None:
    """Spawn-handshake fault injection: ``DIST_HANG_HELLO=node:dir:k``
    makes the first ``k`` incarnations of ``node`` hang before their
    hello frame (each hang drops a marker file in ``dir``), so tests
    can drive the coordinator's bounded hello wait and fork retry."""
    spec = os.environ.get("DIST_HANG_HELLO")
    if not spec:
        return
    target, marker_dir, count = spec.split(":")
    if node != int(target):
        return
    if len(os.listdir(marker_dir)) >= int(count):
        return
    with open(os.path.join(marker_dir, f"hang-{os.getpid()}"), "w"):
        pass
    time.sleep(3600)


def worker_entry(
    node: int,
    n_nodes: int,
    control,
    program: Program,
    placements: PlacementMap,
    conf: dict,
) -> None:
    """Process entry point (fork start method: everything is inherited,
    nothing is pickled).  ``control`` is ``("pipe", Connection)`` or
    ``("tcp", address)`` — under tcp the worker dials the coordinator's
    listener, so it could live on another host.  A failing rule is
    reported to the coordinator as an ``error`` message so deterministic
    failures surface once instead of looping through crash recovery."""
    channel: Channel | None = None
    try:
        _maybe_hang_for_test(node)
        kind, endpoint = control
        if kind == "pipe":
            channel = PipeChannel(endpoint)
        else:
            channel = connect_channel(endpoint)
        ShardWorker(node, n_nodes, channel, program, placements, conf).run()
    except (EOFError, BrokenPipeError, ConnectionResetError, KeyboardInterrupt):
        pass  # coordinator went away; just exit
    except BaseException as exc:  # noqa: BLE001 — must cross the wire
        try:
            if channel is not None:
                channel.send_bytes(
                    pickle.dumps(
                        {
                            "t": "error",
                            "node": node,
                            "error": repr(exc),
                            "traceback": traceback.format_exc(),
                        }
                    )
                )
        except OSError:
            pass
    finally:
        if channel is not None:
            channel.close()
