"""Real multiprocess shard execution — ``ExecOptions(strategy="processes")``.

Where :class:`~repro.dist.engine.DistEngine` *simulates* a cluster (N
shard views, one process, modelled network costs), this module runs the
real thing: N OS worker processes (:mod:`repro.dist.worker`), each
owning the Gamma shards its :class:`~repro.dist.placement.PlacementMap`
assigns it, driven in causal supersteps by a coordinator.

The v2 runtime splits the wire into two planes:

* a **control plane** — one coordinator↔worker channel per worker
  (:mod:`~repro.dist.transport`: a duplex pipe, or length-prefixed TCP
  so workers can live on other hosts) carrying step broadcasts, done
  records, membership, and recovery;
* a **data plane** — a direct worker↔worker peer mesh carrying the
  put-set shuffle and routed queries.  PR 5 relayed both through the
  coordinator's single drain loop; v2's coordinator never touches a
  query, and its downstream step frames reference staged put-sets by
  ref instead of re-sending values.

The superstep protocol still mirrors the single-node
:class:`~repro.core.kernel.StepKernel` phase for phase:

* the coordinator owns the global Delta tree and a full **control
  replica** of Gamma; each superstep pops the minimal equivalence
  class, exactly like ``drain()``;
* **phase A**: each worker inserts the slice of the class its placement
  assigns it — resolved from its staging buffer when the tuple was
  shuffled to it directly, from the frame itself otherwise;
* **phase B**: each non-duplicate tuple fires on exactly one node — its
  partition home, or the (adaptively reweighted, see
  :mod:`~repro.dist.rebalance`) stable-hash spread for replicated
  triggers — via the unmodified
  :class:`~repro.core.rules.RuleContext` machinery; remote queries go
  peer-to-peer and are ready-gated against the receiver's phase A;
* **phase C**: the coordinator merges every worker's done records in
  global (batch index, rule declaration) order — the single-node task
  order — and applies the put-set to Delta with the exact
  ``_enqueue_delta_batch`` semantics.  The fire node is always one of
  the put-owners' targets, so the shuffle of step N overlaps step N's
  firing, and its frames resolve lazily whenever a later step consumes
  them — the pipelining never reorders the merge.

Because the merge order is deterministic and Gamma is read-only while
a class fires, output, table sizes, and the semantic trace are
byte-identical to a sequential run (§1.3 across *machines*, not just
strategies).

Crash recovery: the control replica commits each superstep only after
every worker reported it.  When a worker dies mid-step
(:class:`~repro.core.errors.WorkerLostError` names the node and the
step/attempt epoch), the coordinator aborts the step on the survivors,
re-forks the lost node, re-meshes it (the replacement dials every
survivor), bootstraps it from the owned slice of the last committed
superstep, and re-broadcasts the step under a new attempt epoch;
workers replay completed steps from a reply cache — re-sending their
cached stage frames so the replacement regains its staged put-sets —
so rule execution stays at-most-once per completed step.  Every
membership change resets the ref economy: staged references are
forgotten and inserts fall back to values until fresh done records
re-establish them.  A worker's wire counters are snapshotted into every
done record, and the last snapshot of a crashed incarnation is folded
into its replacement's totals, so ``format_nodes`` survives recovery.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from multiprocessing import get_context

from repro.core.database import Database
from repro.core.delta import DeltaTree
from repro.core.errors import EngineError, WorkerLostError
from repro.core.kernel import RunResult
from repro.core.program import ExecOptions, Program
from repro.core.tuples import JTuple
from repro.dist.check import check_locality
from repro.dist.engine import surface_exec_knobs
from repro.dist.network import WireStats
from repro.dist.placement import OnNode, PlacementMap, Partitioned, spread_hash
from repro.dist.rebalance import Rebalancer
from repro.dist.transport import (
    PeerListener,
    PipeChannel,
    resolve_transport,
    wait_readable,
)
from repro.dist.worker import program_fingerprint, worker_entry
from repro.exec.metering import CostMeter
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import TreeSetStore
from repro.stats.collector import StatsCollector
from repro.trace.recorder import TraceRecorder, output_hash

__all__ = ["ProcessShardRuntime", "run_sharded"]

#: ExecOptions knobs the process runtime honours; everything else is
#: surfaced as a stats note / EngineWarning, same convention as the
#: simulated engine
_SUPPORTED_KNOBS = frozenset(
    {"strategy", "threads", "trace", "metering", "plan_cache", "admission"}
)

#: forks attempted per node before the spawn handshake gives up
_SPAWN_TRIES = 3


class _Worker:
    """Coordinator-side handle for one worker process."""

    __slots__ = ("node", "proc", "channel", "wire", "incarnation", "peer_addr")

    def __init__(self, node: int, proc, channel, incarnation: int):
        self.node = node
        self.proc = proc
        self.channel = channel
        self.wire = WireStats()
        self.incarnation = incarnation
        self.peer_addr = None


class ProcessShardRuntime:
    """Coordinator of one multiprocess sharded run."""

    def __init__(
        self,
        program: Program,
        options: ExecOptions | None = None,
        *,
        n_workers: int | None = None,
        placements: dict | PlacementMap | None = None,
        fault_kill: tuple[int, int] | None = None,
        fault_die_on_serve: tuple[int, int] | None = None,
        transport: str | None = None,
        rebalance_every: int = 16,
    ):
        program.freeze()
        self.program = program
        self.options = options if options is not None else ExecOptions()
        self.n_nodes = n_workers if n_workers is not None else self.options.threads
        if self.n_nodes < 1:
            raise EngineError("the process runtime needs at least one worker")
        if self.options.store_overrides:
            raise EngineError(
                "the process runtime cannot shard tables with store_overrides: "
                "native/array stores are whole-table structures accessed "
                "through ctx.native, which has no meaning across processes; "
                "run such programs single-node"
            )
        self.transport = resolve_transport(transport)
        self.placements = (
            placements
            if isinstance(placements, PlacementMap)
            else PlacementMap(program.schemas(), placements, n_nodes=self.n_nodes)
        )
        self.schemas = program.schemas()
        # control replica: the coordinator's authoritative copy of Gamma,
        # committed one superstep behind the workers so a lost node can
        # always be rebuilt from the last *completed* step
        registry = StoreRegistry(lambda schema: TreeSetStore(schema))
        self.db = Database(self.schemas, registry, program.decls)
        self.delta = DeltaTree()
        self.stats = StatsCollector()
        self.tracer = TraceRecorder() if self.options.trace else None
        self.output: list[str] = []
        #: rule name -> position, for canonical per-step output keys
        #: (worker records identify rules by name)
        self._rule_pos = {r.name: i for i, r in enumerate(program.rules)}
        self.steps = 0
        self._check_mode = self.options.causality_check
        surface_exec_knobs(
            self.options,
            self.stats.note,
            strict=self._check_mode == "strict",
            runtime="the multiprocess runtime",
            supported=_SUPPORTED_KNOBS,
        )
        if self.options.metering == "on":
            self.stats.note(
                "the multiprocess runtime measures real wire traffic instead "
                "of virtual time; cost metering is off in the workers"
            )
        self._fingerprint = program_fingerprint(program)
        self._fault_kill = fault_kill
        self._killed = False
        self._epoch = 1
        self._recoveries: dict[int, int] = {}
        self._node_fires: dict[int, int] = {}
        self._node_puts: dict[int, int] = {}
        self.workers: list[_Worker] = []
        self._by_chan: dict = {}
        self._ctx = get_context("fork")
        self._ctl_listener: PeerListener | None = None
        self._rebalancer = Rebalancer(self.n_nodes, every=rebalance_every)
        # -- shuffle bookkeeping ---------------------------------------------
        #: node -> refs known staged at that node's *current* incarnation
        self._staged: dict[int, set] = {n: set() for n in range(self.n_nodes)}
        #: pending tuple -> the ref its owners hold it under
        self._ref_of: dict[JTuple, tuple] = {}
        #: node -> refs whose staged copies will never be referenced
        #: (rejected puts); piggybacked on the next step frame
        self._drops: dict[int, list] = {n: [] for n in range(self.n_nodes)}
        #: node -> counters snapshot from its most recent done record,
        #: the carry-forward source when that incarnation crashes
        self._last_counters: dict[int, dict] = {}
        #: node -> counters carried over from crashed incarnations
        self._carry: dict[int, dict] = {}
        # co-located queries proved by the static locality checker skip
        # placement routing in the workers (reuse of the check_locality
        # verdicts at runtime).  The set is keyed (rule, table), so a
        # pair qualifies only when EVERY query that rule makes on that
        # table is local — one routed query among locals must still route
        verdicts: dict[tuple[str, str], bool] = {}
        for f in check_locality(program, self.placements):
            key = (f.rule, f.table)
            verdicts[key] = verdicts.get(key, True) and f.verdict == "local"
        self._conf = {
            "check_mode": self._check_mode,
            "traced": self.tracer is not None,
            "static_local": frozenset(k for k, ok in verdicts.items() if ok),
            "transport": self.transport,
            "fault_serve_die": fault_die_on_serve,
        }

    # -- worker management ---------------------------------------------------

    def _fork(self, node: int, incarnation: int) -> _Worker:
        conf = dict(self._conf)
        conf["incarnation"] = incarnation
        if self.transport == "tcp":
            if self._ctl_listener is None:
                self._ctl_listener = PeerListener("tcp", tag="ctl")
            control = ("tcp", self._ctl_listener.address)
            proc = self._ctx.Process(
                target=worker_entry,
                args=(node, self.n_nodes, control, self.program, self.placements, conf),
                daemon=True,
            )
            proc.start()
            return _Worker(node, proc, None, incarnation)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_entry,
            args=(
                node,
                self.n_nodes,
                ("pipe", child_conn),
                self.program,
                self.placements,
                conf,
            ),
            daemon=True,
        )
        proc.start()
        # the child's end must live only in the child, or its death
        # would never read as EOF on our side
        child_conn.close()
        return _Worker(node, proc, PipeChannel(parent_conn), incarnation)

    def _reap(self, w: _Worker) -> None:
        if w.channel is not None:
            w.channel.close()
        if w.proc.is_alive():
            w.proc.terminate()
        w.proc.join(timeout=10)

    def _spawn(self, node: int, incarnation: int = 0) -> _Worker:
        """Fork a worker and complete the hello handshake under a
        bounded wait: a worker that hangs before its hello frame is
        terminated and re-forked, and only after ``_SPAWN_TRIES`` forks
        does the runtime give up with a clear error."""
        timeout = float(os.environ.get("DIST_HELLO_TIMEOUT", "30"))
        for attempt in range(_SPAWN_TRIES):
            w = self._fork(node, incarnation)
            hello = self._await_hello(w, timeout)
            if hello is not None:
                if hello.get("t") != "hello" or hello.get("node") != node:
                    raise EngineError(f"worker {node}: bad handshake {hello!r}")
                if hello.get("fingerprint") != self._fingerprint:
                    raise EngineError(
                        f"worker {node} is running a different program "
                        "(fingerprint mismatch in the bootstrap handshake)"
                    )
                w.peer_addr = hello["peer_addr"]
                return w
            self._reap(w)
            self.stats.note(
                f"worker {node} did not complete its hello handshake within "
                f"{timeout:g}s; terminated and re-forked"
            )
        raise EngineError(
            f"worker {node} never completed the spawn handshake: "
            f"{_SPAWN_TRIES} forks hung before their hello frame "
            f"(timeout {timeout:g}s each)"
        )

    def _await_hello(self, w: _Worker, timeout: float) -> dict | None:
        """The worker's first frame, or None when it hung past the
        bounded wait.  Under tcp the worker dials our listener first,
        so the wait covers both the connect-back and the frame."""
        if self.transport == "tcp":
            ch = self._ctl_listener.accept(timeout=timeout)
            if ch is None:
                return None
            w.channel = ch
        if not w.channel.poll(timeout):
            return None
        msg = self._recv(w)
        if msg.get("t") == "error":
            raise EngineError(
                f"worker {w.node} failed during startup: "
                f"{msg['error']}\n{msg['traceback']}"
            )
        return msg

    def _expect_mesh(self, w: _Worker) -> None:
        msg = self._recv(w)
        while msg.get("t") != "mesh":
            if msg.get("t") == "error":
                raise EngineError(
                    f"worker {w.node} failed while meshing: "
                    f"{msg['error']}\n{msg['traceback']}"
                )
            msg = self._recv(w)

    def _start_workers(self) -> None:
        # append as we go: a handshake failure on node k must still let
        # the teardown path reap nodes < k
        for node in range(self.n_nodes):
            self.workers.append(self._spawn(node))
        self._by_chan = {w.channel: w for w in self.workers}
        # mesh: worker i dials every j < i and accepts every j > i
        for w in self.workers:
            self._send(
                w,
                {
                    "t": "peers",
                    "connect": {
                        p.node: p.peer_addr for p in self.workers if p.node < w.node
                    },
                    "await": [p.node for p in self.workers if p.node > w.node],
                },
            )
        for w in self.workers:
            self._expect_mesh(w)

    def _replace_worker(self, node: int) -> None:
        w = self.workers[node]
        # fold the crashed incarnation's last-reported counters into the
        # node's carry so the final report keeps its traffic
        snap = self._last_counters.pop(node, None)
        if snap is not None:
            carry = self._carry.setdefault(
                node,
                {
                    "wire": WireStats(),
                    "peer_wire": WireStats(),
                    "queries_served": 0,
                    "remote_queries": 0,
                },
            )
            carry["wire"].add_state(snap["wire"])
            carry["peer_wire"].add_state(snap["peer_wire"])
            carry["queries_served"] += snap["queries_served"]
            carry["remote_queries"] += snap["remote_queries"]
        self._reap(w)
        fresh = self._spawn(node, incarnation=w.incarnation + 1)
        fresh.wire.merge(w.wire)  # traffic to the node, across incarnations
        self.workers[node] = fresh
        self._by_chan = {v.channel: v for v in self.workers}
        # every membership change resets the ref economy: staged copies
        # at the dead node are gone, and in-flight stage deliveries can
        # no longer be trusted anywhere — fall back to values until
        # fresh done records re-establish the refs
        for refs in self._staged.values():
            refs.clear()
        self._ref_of.clear()
        self._drops = {n: [] for n in range(self.n_nodes)}
        # the replacement dials every survivor; survivors accept it from
        # their poll loops before the retry step reaches them
        self._send(
            fresh,
            {
                "t": "peers",
                "connect": {
                    p.node: p.peer_addr for p in self.workers if p.node != node
                },
                "await": [],
            },
        )
        self._expect_mesh(fresh)
        tables: dict[str, list] = {}
        for name, store in self.db.stores.items():
            rows = []
            for t in store.scan():
                home = self.placements.home_of(t, self.n_nodes)
                if home is None or home == node:
                    rows.append(list(t.values))
            if rows:
                tables[name] = rows
        self._send(fresh, {"t": "bootstrap", "tables": tables})

    def _terminate_all(self) -> None:
        for w in self.workers:
            self._reap(w)
        if self._ctl_listener is not None:
            self._ctl_listener.close()
            self._ctl_listener = None

    # -- framing --------------------------------------------------------------

    def _send(self, w: _Worker, msg: dict) -> None:
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            w.channel.send_bytes(data)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise WorkerLostError(w.node, self.steps or None, self._epoch) from None
        w.wire.on_send(len(data))

    def _recv(self, w: _Worker) -> dict:
        try:
            data = w.channel.recv_bytes()
        except (EOFError, ConnectionResetError, OSError):
            raise WorkerLostError(w.node, self.steps or None, self._epoch) from None
        w.wire.on_recv(len(data))
        return pickle.loads(data)

    def _tuple(self, table: str, values) -> JTuple:
        return JTuple(self.schemas[table], tuple(values))

    # -- the run ---------------------------------------------------------------

    def run(self) -> RunResult:
        t0 = time.perf_counter()
        try:
            self._start_workers()
            self._emit_run_start()
            self._feed_initial()
            self._drain()
            nodes = self._finish()
        except BaseException:
            self._terminate_all()
            raise
        if self._ctl_listener is not None:
            self._ctl_listener.close()
            self._ctl_listener = None
        wall = time.perf_counter() - t0
        self._emit_run_end()
        return RunResult(
            program=self.program.name,
            strategy="processes",
            threads=self.n_nodes,
            output=self.output,
            wall_time=wall,
            report=None,
            stats=self.stats,
            table_sizes=self.db.table_sizes(),
            meter=CostMeter(),
            steps=self.steps,
            options=self.options,
            database=self.db,
            trace=self.tracer,
            nodes=nodes,
        )

    def _feed_initial(self) -> None:
        """Initial puts, exactly like the kernel's ``<init>`` feed (no
        admission boundary exists before the first step)."""
        puts = list(self.program.initial_puts)
        for tup in puts:
            self.stats.on_put("<init>", tup.schema.name)
        if not puts:
            return
        flags = self._enqueue(puts)
        if self.tracer is not None:
            for tup, accepted in zip(puts, flags):
                self.tracer.emit("admit", {"tuple": repr(tup), "accepted": accepted})

    def _enqueue(self, puts: list[JTuple]) -> list[bool]:
        """Phase C against the control replica — per-put semantics are
        exactly ``StepKernel._enqueue_delta_batch`` (Gamma-duplicate
        precheck, then Delta dedup), minus the cost metering."""
        flags = [False] * len(puts)
        items: list[tuple[JTuple, object]] = []
        idx: list[int] = []
        db = self.db
        for i, tup in enumerate(puts):
            if tup in db:
                self.stats.table(tup.schema.name).duplicates += 1
                continue
            items.append((tup, db.timestamp(tup)))
            idx.append(i)
        if not items:
            return flags
        accepted = self.delta.insert_batch(items)
        for k, ok in enumerate(accepted):
            i = idx[k]
            name = puts[i].schema.name
            if ok:
                flags[i] = True
                self.stats.table(name).delta_inserts += 1
            else:
                self.stats.table(name).duplicates += 1
        return flags

    def _drain(self) -> None:
        max_steps = self.options.max_steps
        while self.delta:
            if max_steps is not None and self.steps >= max_steps:
                raise EngineError(
                    f"program exceeded max_steps={max_steps}; "
                    f"{len(self.delta)} tuples still pending"
                )
            self.steps += 1
            batch = self.delta.pop_min_class()
            self._superstep(batch)

    def _fire_home(self, tup: JTuple) -> int:
        """Node that fires this tuple's rules — the partition home, or
        the (adaptively weighted) stable-hash spread for replicated
        triggers.  Always one of the tuple's owners, which is what lets
        the fire assignment reference the phase-A insert."""
        home = self.placements.home_of(tup, self.n_nodes)
        if home is not None:
            return home
        return self._rebalancer.fire_node(spread_hash(tup.values))

    def _superstep(self, batch: list[JTuple]) -> None:
        step = self.steps
        self.stats.on_step(len(batch))
        if self.tracer is not None:
            self.tracer.step = step
            self.tracer.emit(
                "step",
                {"step": step, "width": len(batch), "frontier": [repr(t) for t in batch]},
            )
        if (
            self._fault_kill is not None
            and not self._killed
            and self._fault_kill[1] == step
        ):
            # injected failure (tests): SIGKILL the target at superstep
            # start, reap it so the broadcast hits a closed channel
            self._killed = True
            victim = self.workers[self._fault_kill[0]]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10)
        # plan: duplicate verdicts against the pre-step control Gamma,
        # and one fire node per fresh tuple
        plan: list[tuple[JTuple, bool, int]] = []
        for tup in batch:
            plan.append((tup, tup in self.db, self._fire_home(tup)))
        records = self._execute(step, plan)
        # the step committed: the drop lists rode out with its frames,
        # and the batch's staged copies were consumed
        for n in range(self.n_nodes):
            self._drops[n].clear()
        for tup, _dup, _node in plan:
            ref = self._ref_of.pop(tup, None)
            if ref is not None:
                for o in self.placements.owners_of(tup, self.n_nodes):
                    self._staged[o].discard(ref)
        # commit phase A to the control replica only now: a worker lost
        # mid-step re-bootstraps from the last *completed* superstep
        self.db.insert_batch(batch, frozenset())
        pending: list[tuple[JTuple, int, tuple]] = []
        step_lines: list[tuple[tuple, str]] = []
        for idx, (tup, dup, node) in enumerate(plan):
            name = tup.schema.name
            if dup:
                self.stats.table(name).duplicates += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "task",
                        {
                            "trigger": repr(tup),
                            "duplicate": True,
                            "fired": [],
                            "n_puts": 0,
                            "n_output": 0,
                            "cost": 0.0,
                            "node": node,
                        },
                    )
                continue
            self.stats.table(name).gamma_inserts += 1
            entries = records.get(idx, [])
            fired: list[str] = []
            n_puts = 0
            n_output = 0
            for eidx, entry in enumerate(entries):
                rule = entry["rule"]
                fired.append(rule)
                self.stats.on_fire(name, rule)
                self._node_fires[node] = self._node_fires.get(node, 0) + 1
                if self.tracer is not None:
                    for kind, data in entry["events"]:
                        data = dict(data)
                        data["node"] = node
                        self.tracer.emit(kind, data)
                out = entry["output"]
                if out:
                    tie = (name, tuple(repr(v) for v in tup.values))
                    ridx = self._rule_pos[rule]
                    ts_key = self.db.timestamp(tup).key
                    step_lines.extend(
                        ((ts_key, tie, ridx, j), line)
                        for j, line in enumerate(out)
                    )
                    self.stats.rule(rule).output_lines += len(out)
                    n_output += len(out)
                for j, (tname, vals) in enumerate(entry["puts"]):
                    self.stats.on_put(rule, tname)
                    self._node_puts[node] = self._node_puts.get(node, 0) + 1
                    # the ref this put was staged under at its owners,
                    # reconstructed exactly as the firing worker built it
                    pending.append(
                        (self._tuple(tname, vals), node, (node, step, idx, eidx, j))
                    )
                    n_puts += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "task",
                    {
                        "trigger": repr(tup),
                        "duplicate": False,
                        "fired": fired,
                        "n_puts": n_puts,
                        "n_output": n_output,
                        "cost": 0.0,
                        "node": node,
                    },
                )
        # output in canonical keyed order (a step is one equivalence
        # class), matching the single-node kernel byte-for-byte when
        # several firings of one class print
        if step_lines:
            if len(step_lines) > 1:
                step_lines.sort(key=lambda kl: kl[0])
            self.output.extend(line for _key, line in step_lines)
        staged_now = {n: 0 for n in range(self.n_nodes)}
        dropped_now = 0
        if pending:
            flags = self._enqueue([tup for tup, _node, _ref in pending])
            for (tup, node, ref), accepted in zip(pending, flags):
                owners = self.placements.owners_of(tup, self.n_nodes)
                if accepted:
                    # the owners hold (or will momentarily hold) this
                    # put under its ref: the eventual phase-A insert can
                    # travel as control-plane bytes only
                    self._ref_of[tup] = ref
                    for o in owners:
                        self._staged[o].add(ref)
                        staged_now[o] += 1
                else:
                    # rejected put: the staged copies will never be
                    # referenced — tell the owners to drop them
                    for o in owners:
                        self._drops[o].append(ref)
                    dropped_now += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "effect",
                        {"tuple": repr(tup), "accepted": accepted, "node": node},
                    )
        if self.tracer is not None:
            # node-tagged shuffle accounting (meta: wire behaviour, not
            # semantics — excluded from trace_diff like every meta event)
            meta = getattr(self, "_frame_meta", {})
            for n in range(self.n_nodes):
                fm = meta.get(n, {})
                if not (staged_now[n] or fm.get("ref_inserts") or fm.get("value_inserts")):
                    continue
                self.tracer.emit(
                    "shuffle",
                    {
                        "step": step,
                        "node": n,
                        "staged": staged_now[n],
                        "ref_inserts": fm.get("ref_inserts", 0),
                        "value_inserts": fm.get("value_inserts", 0),
                        "dropped": dropped_now,
                    },
                    meta=True,
                )
        plan_change = self._rebalancer.maybe_rebalance(step, self._node_fires)
        if plan_change is not None:
            self.stats.note(Rebalancer.describe(plan_change))
            if self.tracer is not None:
                self.tracer.emit("rebalance", dict(plan_change), meta=True)

    # -- superstep execution with crash recovery ------------------------------

    def _build_frames(self, step: int, plan: list) -> list[dict]:
        """One step frame per worker: phase-A inserts (by ref where the
        owner already holds the staged put-set, by value otherwise),
        fire assignments referencing insert positions, and the pending
        drop list."""
        inserts: list[list] = [[] for _ in range(self.n_nodes)]
        fires: list[list] = [[] for _ in range(self.n_nodes)]
        self._frame_meta = {
            n: {"ref_inserts": 0, "value_inserts": 0} for n in range(self.n_nodes)
        }
        for idx, (tup, dup, node) in enumerate(plan):
            name = tup.schema.name
            vals = tuple(tup.values)
            ref = self._ref_of.get(tup)
            for o in self.placements.owners_of(tup, self.n_nodes):
                pos = len(inserts[o])
                if ref is not None and ref in self._staged[o]:
                    inserts[o].append(("r", ref))
                    self._frame_meta[o]["ref_inserts"] += 1
                else:
                    inserts[o].append(("v", name, vals))
                    self._frame_meta[o]["value_inserts"] += 1
                if o == node and not dup:
                    fires[o].append((idx, pos))
        return [
            {
                "t": "step",
                "step": step,
                "insert": inserts[n],
                "fire": fires[n],
                "drop": list(self._drops[n]),
            }
            for n in range(self.n_nodes)
        ]

    def _execute(self, step: int, plan: list) -> dict:
        deaths = 0
        while True:
            frames = self._build_frames(step, plan)
            try:
                return self._attempt(step, frames)
            except WorkerLostError as exc:
                deaths += 1
                if deaths > 2 * self.n_nodes:
                    raise EngineError(
                        f"step {step} could not complete: workers kept dying "
                        f"({deaths} deaths); last lost node {exc.node}"
                    ) from exc
                self._recover(exc.node)

    def _attempt(self, step: int, frames: list[dict]) -> dict:
        epoch = self._epoch
        for w in self.workers:
            frame = dict(frames[w.node])
            frame["attempt"] = epoch
            self._send(w, frame)
        records: dict[int, list] = {}
        done: set[int] = set()
        chans = [w.channel for w in self.workers]
        while len(done) < self.n_nodes:
            for ch in wait_readable(chans):
                w = self._by_chan[ch]
                msg = self._recv(w)
                t = msg["t"]
                if t == "done":
                    if msg["attempt"] != epoch:
                        continue  # stale reply from before a recovery
                    done.add(w.node)
                    self._last_counters[w.node] = msg["counters"]
                    for idx, entries in msg["records"]:
                        records[idx] = entries
                elif t == "error":
                    # a deterministic failure inside a rule: re-raise
                    # here instead of looping through crash recovery
                    raise EngineError(
                        f"worker {w.node} failed: {msg['error']}\n{msg['traceback']}"
                    )
        return records

    def _recover(self, node: int) -> None:
        """Bring a lost node back from the last committed superstep and
        abort the in-flight attempt on the survivors."""
        self._epoch += 1
        self._recoveries[node] = self._recoveries.get(node, 0) + 1
        self.stats.note(
            f"worker {node} died during step {self.steps}; restarted from "
            "the last committed superstep snapshot"
        )
        dead = [node]
        aborted: set[int] = set()
        while dead:
            n = dead.pop()
            aborted.discard(n)
            self._replace_worker(n)
            for w in self.workers:
                if w.node == n or w.node in aborted:
                    continue
                try:
                    self._send(
                        w, {"t": "abort", "step": self.steps, "attempt": self._epoch}
                    )
                    aborted.add(w.node)
                except WorkerLostError:
                    self._epoch += 1
                    self._recoveries[w.node] = self._recoveries.get(w.node, 0) + 1
                    dead.append(w.node)

    # -- teardown --------------------------------------------------------------

    def _finish(self) -> list[dict]:
        for w in self.workers:
            self._send(w, {"t": "finish"})
        nodes: list[dict] = []
        control_sizes = self.db.table_sizes()
        shard_sizes: dict[str, list[int]] = {
            name: [0] * self.n_nodes for name in control_sizes
        }
        for w in self.workers:
            msg = self._recv(w)
            while msg.get("t") != "bye":  # drain stragglers (stale dones)
                msg = self._recv(w)
            for name, size in msg["table_sizes"].items():
                shard_sizes[name][w.node] = size
            self._merge_worker_stats(msg["stats"])
            wire = WireStats.from_state(msg["wire"])
            peer = WireStats.from_state(msg["peer_wire"])
            served = msg["queries_served"]
            remote = msg["remote_queries"]
            carry = self._carry.get(w.node)
            if carry is not None:
                wire.merge(carry["wire"])
                peer.merge(carry["peer_wire"])
                served += carry["queries_served"]
                remote += carry["remote_queries"]
            nodes.append(
                {
                    "node": w.node,
                    "fires": self._node_fires.get(w.node, 0),
                    "puts": self._node_puts.get(w.node, 0),
                    "queries_served": served,
                    "remote_queries": remote,
                    "msgs": wire.msgs_sent + wire.msgs_recv,
                    "bytes_sent": wire.bytes_sent,
                    "bytes_recv": wire.bytes_recv,
                    "peer_msgs": peer.msgs_sent + peer.msgs_recv,
                    "peer_bytes_sent": peer.bytes_sent,
                    "peer_bytes_recv": peer.bytes_recv,
                    "recovered": self._recoveries.get(w.node, 0),
                }
            )
            w.proc.join(timeout=10)
            w.channel.close()
        self._check_integrity(control_sizes, shard_sizes)
        return nodes

    def _check_integrity(
        self, control: dict[str, int], shards: dict[str, list[int]]
    ) -> None:
        """The distributed shards must jointly equal the control replica:
        replicated tables everywhere in full, partitioned/pinned tables
        exactly once across the cluster."""
        for name, total in control.items():
            per_node = shards[name]
            placement = self.placements[name]
            if isinstance(placement, Partitioned):
                ok = sum(per_node) == total
                detail = f"shards sum to {sum(per_node)}"
            elif isinstance(placement, OnNode):
                ok = per_node[placement.node] == total and sum(per_node) == total
                detail = f"pinned shard holds {per_node[placement.node]}"
            else:  # replicated
                ok = all(s == total for s in per_node)
                detail = f"replica sizes {per_node}"
            if not ok:
                raise EngineError(
                    f"shard integrity check failed for table {name!r}: "
                    f"control replica has {total} tuples, {detail}"
                )

    def _merge_worker_stats(self, state: dict) -> None:
        """Fold one worker's query-side statistics into the coordinator
        collector (fires/puts/output are counted coordinator-side from
        the merged records; workers only observe queries)."""
        for name, d in state.get("tables", {}).items():
            t = self.stats.table(name)
            for k, v in d.items():
                setattr(t, k, getattr(t, k) + int(v))
        for name, d in state.get("rules", {}).items():
            r = self.stats.rule(name)
            for k, v in d.items():
                setattr(r, k, getattr(r, k) + int(v))
        for a, b, n in state.get("query_edges", []):
            self.stats.query_edges[(a, b)] = self.stats.query_edges.get((a, b), 0) + n
        for t, eq, rng, n in state.get("query_shapes", []):
            shape = (t, tuple(eq), tuple(rng))
            self.stats.query_shapes[shape] = self.stats.query_shapes.get(shape, 0) + n
        for r, t, eq, rng, n in state.get("rule_query_shapes", []):
            rshape = (r, t, tuple(eq), tuple(rng))
            self.stats.rule_query_shapes[rshape] = (
                self.stats.rule_query_shapes.get(rshape, 0) + n
            )

    # -- trace bookends ---------------------------------------------------------

    def _emit_run_start(self) -> None:
        if self.tracer is None:
            return
        self.tracer.emit(
            "run-start",
            {
                "program": self.program.name,
                "strategy": "processes",
                "threads": self.n_nodes,
                "nodes": self.n_nodes,
                "chaos_seed": None,
                "fault_plan": None,
                "task_granularity": "tuple",
            },
            meta=True,
        )

    def _emit_run_end(self) -> None:
        if self.tracer is None:
            return
        self.tracer.step = self.steps
        self.tracer.emit(
            "run-end",
            {
                "steps": self.steps,
                "output": output_hash(self.output),
                "n_output": len(self.output),
                "table_sizes": dict(sorted(self.db.table_sizes().items())),
            },
        )


def run_sharded(
    program: Program,
    options: ExecOptions | None = None,
    *,
    n_workers: int | None = None,
    placements: dict | PlacementMap | None = None,
    fault_kill: tuple[int, int] | None = None,
    fault_die_on_serve: tuple[int, int] | None = None,
    transport: str | None = None,
    rebalance_every: int = 16,
) -> RunResult:
    """Run ``program`` on real worker processes and return the merged
    :class:`~repro.core.kernel.RunResult` (its ``nodes`` field carries
    the per-node compute/traffic summaries, control and peer planes
    separately).

    ``transport`` picks the wire (``pipe`` or ``tcp``; default honours
    the ``DIST_TRANSPORT`` environment variable).  ``fault_kill=(node,
    step)`` SIGKILLs one worker at the start of one superstep;
    ``fault_die_on_serve=(node, step)`` makes a worker die with a peer
    query in flight (between request and reply) — the crash-recovery
    test hooks.  ``rebalance_every`` is the adaptive fire-placement
    window (0 disables it).
    """
    return ProcessShardRuntime(
        program,
        options,
        n_workers=n_workers,
        placements=placements,
        fault_kill=fault_kill,
        fault_die_on_serve=fault_die_on_serve,
        transport=transport,
        rebalance_every=rebalance_every,
    ).run()
