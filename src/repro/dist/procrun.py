"""Real multiprocess shard execution — ``ExecOptions(strategy="processes")``.

Where :class:`~repro.dist.engine.DistEngine` *simulates* a cluster (N
shard views, one process, modelled network costs), this module runs the
real thing: N OS worker processes (:mod:`repro.dist.worker`), each
owning the Gamma shards its :class:`~repro.dist.placement.PlacementMap`
assigns it, driven in causal supersteps by a coordinator over pipes.

The superstep protocol mirrors the single-node
:class:`~repro.core.kernel.StepKernel` phase for phase:

* the coordinator owns the global Delta tree and a full **control
  replica** of Gamma; each superstep pops the minimal equivalence
  class, exactly like ``drain()``;
* **phase A**: each worker receives and inserts the slice of the class
  its placement assigns it (replicated tuples go everywhere);
* **phase B**: each non-duplicate tuple fires on exactly one node — its
  partition home, or a stable-hash spread for replicated triggers (the
  same rule as the simulated engine) — via the unmodified
  :class:`~repro.core.rules.RuleContext` machinery; remote queries are
  relayed through the coordinator and answered from the owning shards
  (verdicts follow :func:`~repro.dist.check.check_locality`: local /
  routed / broadcast);
* **phase C**: the coordinator merges every worker's buffered put-set
  in global (batch index, rule declaration) order — the single-node
  task order — and applies it to Delta with the exact
  ``_enqueue_delta_batch`` semantics.

Because the merge order is deterministic and Gamma is read-only while
a class fires, output, table sizes, and the semantic trace are
byte-identical to a sequential run (§1.3 across *machines*, not just
strategies).

Crash recovery: the control replica commits each superstep only after
every worker reported it.  When a worker dies mid-step, the coordinator
aborts the step on the survivors, re-forks the lost node, bootstraps it
from the owned slice of the last committed superstep, and re-broadcasts
the step under a new attempt epoch; workers replay completed steps from
a reply cache, so rule execution stays at-most-once per completed step.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from multiprocessing import get_context
from multiprocessing.connection import wait as conn_wait

from repro.core.database import Database
from repro.core.delta import DeltaTree
from repro.core.errors import EngineError
from repro.core.kernel import RunResult
from repro.core.program import ExecOptions, Program
from repro.core.tuples import JTuple
from repro.dist.check import check_locality
from repro.dist.engine import surface_exec_knobs
from repro.dist.network import WireStats
from repro.dist.placement import OnNode, PlacementMap, Partitioned, _stable_hash
from repro.dist.worker import program_fingerprint, worker_entry
from repro.exec.metering import CostMeter
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import TreeSetStore
from repro.stats.collector import StatsCollector
from repro.trace.recorder import TraceRecorder, output_hash

__all__ = ["ProcessShardRuntime", "run_sharded"]

#: ExecOptions knobs the process runtime honours; everything else is
#: surfaced as a stats note / EngineWarning, same convention as the
#: simulated engine
_SUPPORTED_KNOBS = frozenset(
    {"strategy", "threads", "trace", "metering", "plan_cache", "admission"}
)


class _WorkerDied(Exception):
    """A worker process went away mid-protocol (EOF / broken pipe)."""

    def __init__(self, node: int):
        super().__init__(f"worker {node} died")
        self.node = node


class _Worker:
    """Coordinator-side handle for one worker process."""

    __slots__ = ("node", "proc", "conn", "wire")

    def __init__(self, node: int, proc, conn):
        self.node = node
        self.proc = proc
        self.conn = conn
        self.wire = WireStats()


class ProcessShardRuntime:
    """Coordinator of one multiprocess sharded run."""

    def __init__(
        self,
        program: Program,
        options: ExecOptions | None = None,
        *,
        n_workers: int | None = None,
        placements: dict | PlacementMap | None = None,
        fault_kill: tuple[int, int] | None = None,
    ):
        program.freeze()
        self.program = program
        self.options = options if options is not None else ExecOptions()
        self.n_nodes = n_workers if n_workers is not None else self.options.threads
        if self.n_nodes < 1:
            raise EngineError("the process runtime needs at least one worker")
        if self.options.store_overrides:
            raise EngineError(
                "the process runtime cannot shard tables with store_overrides: "
                "native/array stores are whole-table structures accessed "
                "through ctx.native, which has no meaning across processes; "
                "run such programs single-node"
            )
        self.placements = (
            placements
            if isinstance(placements, PlacementMap)
            else PlacementMap(program.schemas(), placements, n_nodes=self.n_nodes)
        )
        self.schemas = program.schemas()
        # control replica: the coordinator's authoritative copy of Gamma,
        # committed one superstep behind the workers so a lost node can
        # always be rebuilt from the last *completed* step
        registry = StoreRegistry(lambda schema: TreeSetStore(schema))
        self.db = Database(self.schemas, registry, program.decls)
        self.delta = DeltaTree()
        self.stats = StatsCollector()
        self.tracer = TraceRecorder() if self.options.trace else None
        self.output: list[str] = []
        #: rule name -> position, for canonical per-step output keys
        #: (worker records identify rules by name)
        self._rule_pos = {r.name: i for i, r in enumerate(program.rules)}
        self.steps = 0
        self._check_mode = self.options.causality_check
        surface_exec_knobs(
            self.options,
            self.stats.note,
            strict=self._check_mode == "strict",
            runtime="the multiprocess runtime",
            supported=_SUPPORTED_KNOBS,
        )
        if self.options.metering == "on":
            self.stats.note(
                "the multiprocess runtime measures real wire traffic instead "
                "of virtual time; cost metering is off in the workers"
            )
        self._fingerprint = program_fingerprint(program)
        self._fault_kill = fault_kill
        self._killed = False
        self._epoch = 1
        self._recoveries: dict[int, int] = {}
        self._node_fires: dict[int, int] = {}
        self._node_puts: dict[int, int] = {}
        self.workers: list[_Worker] = []
        self._by_conn: dict = {}
        self._ctx = get_context("fork")
        # co-located queries proved by the static locality checker skip
        # placement routing in the workers (reuse of the check_locality
        # verdicts at runtime).  The set is keyed (rule, table), so a
        # pair qualifies only when EVERY query that rule makes on that
        # table is local — one routed query among locals must still route
        verdicts: dict[tuple[str, str], bool] = {}
        for f in check_locality(program, self.placements):
            key = (f.rule, f.table)
            verdicts[key] = verdicts.get(key, True) and f.verdict == "local"
        self._conf = {
            "check_mode": self._check_mode,
            "traced": self.tracer is not None,
            "static_local": frozenset(k for k, ok in verdicts.items() if ok),
        }

    # -- worker management ---------------------------------------------------

    def _spawn(self, node: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_entry,
            args=(node, self.n_nodes, child_conn, self.program, self.placements, self._conf),
            daemon=True,
        )
        proc.start()
        # the child's end must live only in the child, or its death
        # would never read as EOF on our side
        child_conn.close()
        w = _Worker(node, proc, parent_conn)
        hello = self._recv(w)
        if hello.get("t") != "hello" or hello.get("node") != node:
            raise EngineError(f"worker {node}: bad handshake {hello!r}")
        if hello.get("fingerprint") != self._fingerprint:
            raise EngineError(
                f"worker {node} is running a different program "
                "(fingerprint mismatch in the bootstrap handshake)"
            )
        return w

    def _start_workers(self) -> None:
        self.workers = [self._spawn(node) for node in range(self.n_nodes)]
        self._by_conn = {w.conn: w for w in self.workers}

    def _replace_worker(self, node: int) -> None:
        w = self.workers[node]
        try:
            w.conn.close()
        except OSError:
            pass
        if w.proc.is_alive():
            w.proc.terminate()
        w.proc.join(timeout=10)
        fresh = self._spawn(node)
        fresh.wire.merge(w.wire)  # traffic to the node, across incarnations
        self.workers[node] = fresh
        self._by_conn = {v.conn: v for v in self.workers}
        tables: dict[str, list] = {}
        for name, store in self.db.stores.items():
            rows = []
            for t in store.scan():
                home = self.placements.home_of(t, self.n_nodes)
                if home is None or home == node:
                    rows.append(list(t.values))
            if rows:
                tables[name] = rows
        self._send(fresh, {"t": "bootstrap", "tables": tables})

    def _terminate_all(self) -> None:
        for w in self.workers:
            try:
                w.conn.close()
            except OSError:
                pass
            if w.proc.is_alive():
                w.proc.terminate()
            w.proc.join(timeout=5)

    # -- framing --------------------------------------------------------------

    def _send(self, w: _Worker, msg: dict) -> None:
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            w.conn.send_bytes(data)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise _WorkerDied(w.node) from None
        w.wire.on_send(len(data))

    def _recv(self, w: _Worker) -> dict:
        try:
            data = w.conn.recv_bytes()
        except (EOFError, ConnectionResetError, OSError):
            raise _WorkerDied(w.node) from None
        w.wire.on_recv(len(data))
        return pickle.loads(data)

    def _tuple(self, table: str, values) -> JTuple:
        return JTuple(self.schemas[table], tuple(values))

    # -- the run ---------------------------------------------------------------

    def run(self) -> RunResult:
        t0 = time.perf_counter()
        self._start_workers()
        try:
            self._emit_run_start()
            self._feed_initial()
            self._drain()
            nodes = self._finish()
        except BaseException:
            self._terminate_all()
            raise
        wall = time.perf_counter() - t0
        self._emit_run_end()
        return RunResult(
            program=self.program.name,
            strategy="processes",
            threads=self.n_nodes,
            output=self.output,
            wall_time=wall,
            report=None,
            stats=self.stats,
            table_sizes=self.db.table_sizes(),
            meter=CostMeter(),
            steps=self.steps,
            options=self.options,
            database=self.db,
            trace=self.tracer,
            nodes=nodes,
        )

    def _feed_initial(self) -> None:
        """Initial puts, exactly like the kernel's ``<init>`` feed (no
        admission boundary exists before the first step)."""
        puts = list(self.program.initial_puts)
        for tup in puts:
            self.stats.on_put("<init>", tup.schema.name)
        if not puts:
            return
        flags = self._enqueue(puts)
        if self.tracer is not None:
            for tup, accepted in zip(puts, flags):
                self.tracer.emit("admit", {"tuple": repr(tup), "accepted": accepted})

    def _enqueue(self, puts: list[JTuple]) -> list[bool]:
        """Phase C against the control replica — per-put semantics are
        exactly ``StepKernel._enqueue_delta_batch`` (Gamma-duplicate
        precheck, then Delta dedup), minus the cost metering."""
        flags = [False] * len(puts)
        items: list[tuple[JTuple, object]] = []
        idx: list[int] = []
        db = self.db
        for i, tup in enumerate(puts):
            if tup in db:
                self.stats.table(tup.schema.name).duplicates += 1
                continue
            items.append((tup, db.timestamp(tup)))
            idx.append(i)
        if not items:
            return flags
        accepted = self.delta.insert_batch(items)
        for k, ok in enumerate(accepted):
            i = idx[k]
            name = puts[i].schema.name
            if ok:
                flags[i] = True
                self.stats.table(name).delta_inserts += 1
            else:
                self.stats.table(name).duplicates += 1
        return flags

    def _drain(self) -> None:
        max_steps = self.options.max_steps
        while self.delta:
            if max_steps is not None and self.steps >= max_steps:
                raise EngineError(
                    f"program exceeded max_steps={max_steps}; "
                    f"{len(self.delta)} tuples still pending"
                )
            self.steps += 1
            batch = self.delta.pop_min_class()
            self._superstep(batch)

    def _fire_home(self, tup: JTuple) -> int:
        """Node that fires this tuple's rules — the simulated engine's
        rule: partition home, or a stable-hash spread for replicated
        triggers."""
        home = self.placements.home_of(tup, self.n_nodes)
        if home is not None:
            return home
        acc = 0
        for v in tup.values:
            acc = (acc * 31 + _stable_hash(v)) & 0x7FFFFFFF
        return acc % self.n_nodes

    def _superstep(self, batch: list[JTuple]) -> None:
        step = self.steps
        self.stats.on_step(len(batch))
        if self.tracer is not None:
            self.tracer.step = step
            self.tracer.emit(
                "step",
                {"step": step, "width": len(batch), "frontier": [repr(t) for t in batch]},
            )
        if (
            self._fault_kill is not None
            and not self._killed
            and self._fault_kill[1] == step
        ):
            # injected failure (tests): SIGKILL the target at superstep
            # start, reap it so the broadcast hits a closed pipe
            self._killed = True
            victim = self.workers[self._fault_kill[0]]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10)
        # plan: duplicate verdicts against the pre-step control Gamma,
        # and one fire node per fresh tuple
        plan: list[tuple[JTuple, bool, int]] = []
        inserts: list[list] = [[] for _ in range(self.n_nodes)]
        fires: list[list] = [[] for _ in range(self.n_nodes)]
        for idx, tup in enumerate(batch):
            dup = tup in self.db
            node = self._fire_home(tup)
            plan.append((tup, dup, node))
            name = tup.schema.name
            row = (name, tuple(tup.values))
            home = self.placements.home_of(tup, self.n_nodes)
            if home is None:
                for lst in inserts:
                    lst.append(row)
            else:
                inserts[home].append(row)
            if not dup:
                fires[node].append((idx, row))
        records = self._execute(step, inserts, fires)
        # commit phase A to the control replica only now: a worker lost
        # mid-step re-bootstraps from the last *completed* superstep
        self.db.insert_batch(batch, frozenset())
        pending: list[tuple[JTuple, int]] = []
        step_lines: list[tuple[tuple, str]] = []
        for idx, (tup, dup, node) in enumerate(plan):
            name = tup.schema.name
            if dup:
                self.stats.table(name).duplicates += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "task",
                        {
                            "trigger": repr(tup),
                            "duplicate": True,
                            "fired": [],
                            "n_puts": 0,
                            "n_output": 0,
                            "cost": 0.0,
                            "node": node,
                        },
                    )
                continue
            self.stats.table(name).gamma_inserts += 1
            entries = records.get(idx, [])
            fired: list[str] = []
            n_puts = 0
            n_output = 0
            for entry in entries:
                rule = entry["rule"]
                fired.append(rule)
                self.stats.on_fire(name, rule)
                self._node_fires[node] = self._node_fires.get(node, 0) + 1
                if self.tracer is not None:
                    for kind, data in entry["events"]:
                        data = dict(data)
                        data["node"] = node
                        self.tracer.emit(kind, data)
                out = entry["output"]
                if out:
                    tie = (name, tuple(repr(v) for v in tup.values))
                    ridx = self._rule_pos[rule]
                    ts_key = self.db.timestamp(tup).key
                    step_lines.extend(
                        ((ts_key, tie, ridx, j), line)
                        for j, line in enumerate(out)
                    )
                    self.stats.rule(rule).output_lines += len(out)
                    n_output += len(out)
                for tname, vals in entry["puts"]:
                    self.stats.on_put(rule, tname)
                    self._node_puts[node] = self._node_puts.get(node, 0) + 1
                    pending.append((self._tuple(tname, vals), node))
                    n_puts += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "task",
                    {
                        "trigger": repr(tup),
                        "duplicate": False,
                        "fired": fired,
                        "n_puts": n_puts,
                        "n_output": n_output,
                        "cost": 0.0,
                        "node": node,
                    },
                )
        # output in canonical keyed order (a step is one equivalence
        # class), matching the single-node kernel byte-for-byte when
        # several firings of one class print
        if step_lines:
            if len(step_lines) > 1:
                step_lines.sort(key=lambda kl: kl[0])
            self.output.extend(line for _key, line in step_lines)
        if pending:
            flags = self._enqueue([tup for tup, _node in pending])
            if self.tracer is not None:
                for (tup, node), accepted in zip(pending, flags):
                    self.tracer.emit(
                        "effect",
                        {"tuple": repr(tup), "accepted": accepted, "node": node},
                    )

    # -- superstep execution with crash recovery ------------------------------

    def _execute(self, step: int, inserts: list[list], fires: list[list]) -> dict:
        deaths = 0
        while True:
            try:
                return self._attempt(step, inserts, fires)
            except _WorkerDied as exc:
                deaths += 1
                if deaths > 2 * self.n_nodes:
                    raise EngineError(
                        f"step {step} could not complete: workers kept dying "
                        f"({deaths} deaths); last lost node {exc.node}"
                    ) from exc
                self._recover(exc.node)

    def _attempt(self, step: int, inserts: list[list], fires: list[list]) -> dict:
        epoch = self._epoch
        for w in self.workers:
            self._send(
                w,
                {
                    "t": "step",
                    "step": step,
                    "attempt": epoch,
                    "insert": inserts[w.node],
                    "fire": fires[w.node],
                },
            )
        records: dict[int, list] = {}
        done: set[int] = set()
        # in-flight relayed queries: qid -> [requester node, awaited answers, rows]
        pending_q: dict[str, list] = {}
        conns = [w.conn for w in self.workers]
        while len(done) < self.n_nodes:
            for conn in conn_wait(conns):
                w = self._by_conn[conn]
                msg = self._recv(w)
                t = msg["t"]
                if t == "done":
                    if msg["attempt"] != epoch:
                        continue  # stale reply from before a recovery
                    done.add(w.node)
                    for idx, entries in msg["records"]:
                        records[idx] = entries
                elif t == "query":
                    if msg["attempt"] != epoch:
                        continue  # requester will see the abort next
                    homes = msg["homes"]
                    pending_q[msg["qid"]] = [w.node, len(homes), []]
                    for h in homes:
                        self._send(
                            self.workers[h],
                            {
                                "t": "serve",
                                "qid": msg["qid"],
                                "attempt": epoch,
                                "table": msg["table"],
                                "eq": msg["eq"],
                                "ranges": msg["ranges"],
                            },
                        )
                elif t == "answer":
                    if msg["attempt"] != epoch:
                        continue
                    ent = pending_q.get(msg["qid"])
                    if ent is None:
                        continue
                    ent[1] -= 1
                    ent[2].extend(msg["rows"])
                    if ent[1] == 0:
                        del pending_q[msg["qid"]]
                        self._send(
                            self.workers[ent[0]],
                            {"t": "result", "qid": msg["qid"], "rows": ent[2]},
                        )
                elif t == "error":
                    # a deterministic failure inside a rule: re-raise
                    # here instead of looping through crash recovery
                    raise EngineError(
                        f"worker {w.node} failed: {msg['error']}\n{msg['traceback']}"
                    )
        return records

    def _recover(self, node: int) -> None:
        """Bring a lost node back from the last committed superstep and
        abort the in-flight attempt on the survivors."""
        self._epoch += 1
        self._recoveries[node] = self._recoveries.get(node, 0) + 1
        self.stats.note(
            f"worker {node} died during step {self.steps}; restarted from "
            "the last committed superstep snapshot"
        )
        dead = [node]
        aborted: set[int] = set()
        while dead:
            n = dead.pop()
            aborted.discard(n)
            self._replace_worker(n)
            for w in self.workers:
                if w.node == n or w.node in aborted:
                    continue
                try:
                    self._send(
                        w, {"t": "abort", "step": self.steps, "attempt": self._epoch}
                    )
                    aborted.add(w.node)
                except _WorkerDied:
                    self._epoch += 1
                    self._recoveries[w.node] = self._recoveries.get(w.node, 0) + 1
                    dead.append(w.node)

    # -- teardown --------------------------------------------------------------

    def _finish(self) -> list[dict]:
        for w in self.workers:
            self._send(w, {"t": "finish"})
        nodes: list[dict] = []
        control_sizes = self.db.table_sizes()
        shard_sizes: dict[str, list[int]] = {
            name: [0] * self.n_nodes for name in control_sizes
        }
        for w in self.workers:
            msg = self._recv(w)
            while msg.get("t") != "bye":  # drain stragglers (stale answers)
                msg = self._recv(w)
            for name, size in msg["table_sizes"].items():
                shard_sizes[name][w.node] = size
            self._merge_worker_stats(msg["stats"])
            wire = msg["wire"]
            nodes.append(
                {
                    "node": w.node,
                    "fires": self._node_fires.get(w.node, 0),
                    "puts": self._node_puts.get(w.node, 0),
                    "queries_served": msg["queries_served"],
                    "remote_queries": msg["remote_queries"],
                    "msgs": wire["msgs_sent"] + wire["msgs_recv"],
                    "bytes_sent": wire["bytes_sent"],
                    "bytes_recv": wire["bytes_recv"],
                    "recovered": self._recoveries.get(w.node, 0),
                }
            )
            w.proc.join(timeout=10)
        self._check_integrity(control_sizes, shard_sizes)
        return nodes

    def _check_integrity(
        self, control: dict[str, int], shards: dict[str, list[int]]
    ) -> None:
        """The distributed shards must jointly equal the control replica:
        replicated tables everywhere in full, partitioned/pinned tables
        exactly once across the cluster."""
        for name, total in control.items():
            per_node = shards[name]
            placement = self.placements[name]
            if isinstance(placement, Partitioned):
                ok = sum(per_node) == total
                detail = f"shards sum to {sum(per_node)}"
            elif isinstance(placement, OnNode):
                ok = per_node[placement.node] == total and sum(per_node) == total
                detail = f"pinned shard holds {per_node[placement.node]}"
            else:  # replicated
                ok = all(s == total for s in per_node)
                detail = f"replica sizes {per_node}"
            if not ok:
                raise EngineError(
                    f"shard integrity check failed for table {name!r}: "
                    f"control replica has {total} tuples, {detail}"
                )

    def _merge_worker_stats(self, state: dict) -> None:
        """Fold one worker's query-side statistics into the coordinator
        collector (fires/puts/output are counted coordinator-side from
        the merged records; workers only observe queries)."""
        for name, d in state.get("tables", {}).items():
            t = self.stats.table(name)
            for k, v in d.items():
                setattr(t, k, getattr(t, k) + int(v))
        for name, d in state.get("rules", {}).items():
            r = self.stats.rule(name)
            for k, v in d.items():
                setattr(r, k, getattr(r, k) + int(v))
        for a, b, n in state.get("query_edges", []):
            self.stats.query_edges[(a, b)] = self.stats.query_edges.get((a, b), 0) + n
        for t, eq, rng, n in state.get("query_shapes", []):
            shape = (t, tuple(eq), tuple(rng))
            self.stats.query_shapes[shape] = self.stats.query_shapes.get(shape, 0) + n
        for r, t, eq, rng, n in state.get("rule_query_shapes", []):
            rshape = (r, t, tuple(eq), tuple(rng))
            self.stats.rule_query_shapes[rshape] = (
                self.stats.rule_query_shapes.get(rshape, 0) + n
            )

    # -- trace bookends ---------------------------------------------------------

    def _emit_run_start(self) -> None:
        if self.tracer is None:
            return
        self.tracer.emit(
            "run-start",
            {
                "program": self.program.name,
                "strategy": "processes",
                "threads": self.n_nodes,
                "nodes": self.n_nodes,
                "chaos_seed": None,
                "fault_plan": None,
                "task_granularity": "tuple",
            },
            meta=True,
        )

    def _emit_run_end(self) -> None:
        if self.tracer is None:
            return
        self.tracer.step = self.steps
        self.tracer.emit(
            "run-end",
            {
                "steps": self.steps,
                "output": output_hash(self.output),
                "n_output": len(self.output),
                "table_sizes": dict(sorted(self.db.table_sizes().items())),
            },
        )


def run_sharded(
    program: Program,
    options: ExecOptions | None = None,
    *,
    n_workers: int | None = None,
    placements: dict | PlacementMap | None = None,
    fault_kill: tuple[int, int] | None = None,
) -> RunResult:
    """Run ``program`` on real worker processes and return the merged
    :class:`~repro.core.kernel.RunResult` (its ``nodes`` field carries
    the per-node compute/traffic summaries).

    ``fault_kill=(node, step)`` SIGKILLs one worker at the start of one
    superstep — the crash-recovery test hook.
    """
    return ProcessShardRuntime(
        program,
        options,
        n_workers=n_workers,
        placements=placements,
        fault_kill=fault_kill,
    ).run()
