"""Adaptive fire-placement rebalancing for the multiprocess runtime.

§2 stage 3 separates *what* runs from *where* it runs; the v2
coordinator exploits that split at runtime.  Tuple **ownership** is
fixed by the :class:`~repro.dist.placement.PlacementMap` for the whole
run (moving shards mid-run would invalidate every routed query), but
the node that *fires* a replicated-trigger tuple is a free choice —
every node owns a replica, so any node can run its rules.  PR 5 spread
those fires with a uniform stable-hash modulo; this module makes the
spread adaptive.

Every ``every`` supersteps the coordinator hands the
:class:`Rebalancer` the cumulative per-node fire counts it already
tracks.  When the busiest node exceeds ``threshold`` × the mean, the
rebalancer emits a new weight vector — inverse to the observed load,
clamped so one noisy window cannot starve a node — and the spread
becomes a weighted cut of the stable hash space.  Each plan is
surfaced as a stats note (and a meta trace event), so a run report
shows exactly when and why fire placement moved.

Two properties keep this safe:

* **semantic transparency** — only fire *placement* moves, never data
  ownership, and the ``node`` trace key is volatile, so a rebalanced
  run stays byte-identical to the sequential engine;
* **determinism** — decisions read only the per-node fire counts,
  which are themselves deterministic, so the same run rebalances the
  same way on every transport and every repetition (wire-byte counters
  are deliberately *not* inputs: hello frames differ in size between
  the unix and tcp transports).
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["Rebalancer"]

#: weight clamp: a plan can shift at most 4× load away from / onto one
#: node per window, so a pathological first window cannot starve a node
_MIN_W, _MAX_W = 0.25, 4.0


class Rebalancer:
    """Watches per-node fire counts and reweights the replicated-trigger
    fire spread between supersteps."""

    def __init__(self, n_nodes: int, every: int = 16, threshold: float = 1.25):
        self.n_nodes = n_nodes
        self.every = every
        self.threshold = threshold
        self.weights: list[float] = [1.0] * n_nodes
        #: cumulative-weight boundaries over the spread-hash space, or
        #: None while the spread is still the uniform modulo
        self._cuts: list[int] | None = None
        self.plans: list[dict] = []

    # -- the spread -----------------------------------------------------------

    def fire_node(self, h: int) -> int:
        """Map a :func:`~repro.dist.placement.spread_hash` to the node
        that fires the tuple.  Uniform modulo until the first plan, a
        weighted cut of the hash space afterwards — both deterministic
        functions of the hash alone."""
        if self._cuts is None:
            return h % self.n_nodes
        return bisect_right(self._cuts, h & 0x7FFFFFFF)

    # -- the policy -----------------------------------------------------------

    def maybe_rebalance(self, step: int, fires: dict[int, int]) -> dict | None:
        """Called between supersteps with cumulative per-node fire
        counts; returns a plan dict when placement moved, else None."""
        if self.every <= 0 or self.n_nodes < 2 or step % self.every != 0:
            return None
        counts = [fires.get(n, 0) for n in range(self.n_nodes)]
        total = sum(counts)
        if total < 4 * self.n_nodes:
            return None  # too few fires to judge a skew
        mean = total / self.n_nodes
        imbalance = max(counts) / mean
        if imbalance < self.threshold:
            return None
        # inverse-load weights (+1 smoothing so an idle node is finite)
        raw = [mean / (c + 1.0) for c in counts]
        self.weights = [min(_MAX_W, max(_MIN_W, w)) for w in raw]
        span = 0x80000000
        scale = span / sum(self.weights)
        cuts: list[int] = []
        acc = 0.0
        for w in self.weights[:-1]:
            acc += w * scale
            cuts.append(int(acc))
        self._cuts = cuts
        plan = {
            "step": step,
            "fires": counts,
            "imbalance": round(imbalance, 3),
            "weights": [round(w, 3) for w in self.weights],
        }
        self.plans.append(plan)
        return plan

    @staticmethod
    def describe(plan: dict) -> str:
        """One-line stats note for a plan."""
        return (
            f"rebalance plan at step {plan['step']}: per-node fires "
            f"{plan['fires']} (imbalance {plan['imbalance']}x); "
            f"replicated-trigger spread reweighted to {plan['weights']}"
        )
