"""Static locality analysis of a placement (§2 stage 3's design aid).

Before committing to a distribution, the programmer wants to know which
queries stay on-node, which route to a single remote owner, and which
degenerate into broadcast gathers — the same way the paper's stage 2/3
tooling surfaces dependency structure before benchmarking.  Rule
metadata (hand-written or extracted from textual rules) makes this
static: for every symbolic query under a placement,

* ``local``      — replicated table, or the bound partition value
  provably equals the trigger's partition value (co-located);
* ``routed``     — partition field bound: exactly one owner answers;
* ``broadcast``  — partition field unbound: every node is asked;
* ``unknown``    — the rule carries no metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.program import Program
from repro.dist.placement import OnNode, PlacementMap, Partitioned, Replicated
from repro.solver.obligations import RuleMeta

__all__ = ["QueryLocality", "check_locality", "locality_summary"]


def locality_summary(findings: list["QueryLocality"]) -> dict[str, int]:
    """Verdict → count over a set of findings — the one-line shape of a
    placement's query plan (how much of the workload stays local, how
    much routes, how much degenerates into broadcast gathers).  Used by
    reports and tests to assert a placement's wire behaviour without
    enumerating every finding."""
    out: dict[str, int] = {}
    for f in findings:
        out[f.verdict] = out.get(f.verdict, 0) + 1
    return out


@dataclass(frozen=True)
class QueryLocality:
    rule: str
    table: str
    verdict: str  # local | routed | broadcast | unknown
    detail: str

    def __repr__(self) -> str:
        return f"<{self.rule} -> {self.table}: {self.verdict} ({self.detail})>"


def _classify_observed(
    rule: str, pm: PlacementMap, shapes: list[tuple[str, tuple[str, ...]]]
) -> list[QueryLocality]:
    """Classify a meta-less rule's *observed* query shapes (gathered by
    :class:`~repro.stats.collector.StatsCollector` during a profiling
    run) — one finding per query, with the real table name."""
    findings = []
    for table, eq_fields in shapes:
        placement = pm[table]
        if isinstance(placement, Replicated):
            verdict, detail = "local", "replicated (observed query)"
        elif isinstance(placement, OnNode):
            verdict = "routed"
            detail = f"pinned to node {placement.node} (observed query)"
        elif placement.field in eq_fields:
            verdict = "routed"
            detail = f"binds partition field {placement.field!r} (observed query)"
        else:
            verdict = "broadcast"
            detail = (
                f"partition field {placement.field!r} unbound (observed query)"
            )
        findings.append(QueryLocality(rule, table, verdict, detail))
    return findings


def check_locality(
    program: Program,
    placements: PlacementMap | dict | None = None,
    observed=None,
) -> list[QueryLocality]:
    """Classify every statically-known query under a placement.

    Rules without symbolic metadata cannot be classified statically;
    pass ``observed`` (a :class:`~repro.stats.collector.StatsCollector`
    from a profiling run, or its ``rule_query_shapes`` mapping) to
    classify the queries such rules actually performed — one finding
    per observed query shape, with the real table name."""
    program.freeze()
    pm = (
        placements
        if isinstance(placements, PlacementMap)
        else PlacementMap(program.schemas(), placements)
    )
    observed_shapes = getattr(observed, "rule_query_shapes", observed) or {}
    by_rule: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for (rule_name, table, eq_fields, _rng) in observed_shapes:
        by_rule.setdefault(rule_name, []).append((table, eq_fields))
    findings: list[QueryLocality] = []
    for rule in program.rules:
        meta = rule.meta
        if not isinstance(meta, RuleMeta):
            shapes = by_rule.get(rule.name)
            if shapes:
                findings.extend(_classify_observed(rule.name, pm, shapes))
            else:
                findings.append(
                    QueryLocality(
                        rule.name,
                        rule.trigger.schema.name,
                        "unknown",
                        "rule has no metadata; pass observed= run stats "
                        "to classify its queries",
                    )
                )
            continue
        trig_schema = meta.trigger_schema
        trig_placement = pm[trig_schema.name]
        trig_part_term = None
        if isinstance(trig_placement, Partitioned):
            trig_part_term = meta.trigger.get(trig_placement.field)
        for branch in meta.branches:
            for q in branch.queries:
                placement = pm[q.schema.name]
                if isinstance(placement, Replicated):
                    findings.append(
                        QueryLocality(rule.name, q.schema.name, "local", "replicated")
                    )
                    continue
                if isinstance(placement, OnNode):
                    findings.append(
                        QueryLocality(
                            rule.name, q.schema.name, "routed",
                            f"pinned to node {placement.node}",
                        )
                    )
                    continue
                bound = q.bound.get(placement.field)
                if bound is None:
                    findings.append(
                        QueryLocality(
                            rule.name, q.schema.name, "broadcast",
                            f"partition field {placement.field!r} unbound",
                        )
                    )
                    continue
                if trig_part_term is not None and bound == trig_part_term:
                    findings.append(
                        QueryLocality(
                            rule.name, q.schema.name, "local",
                            f"co-partitioned on {placement.field!r} with the trigger",
                        )
                    )
                else:
                    findings.append(
                        QueryLocality(
                            rule.name, q.schema.name, "routed",
                            f"binds partition field {placement.field!r}",
                        )
                    )
    return findings
