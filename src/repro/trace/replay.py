"""Trace replay: re-execute a recorded schedule exactly.

Fuzzing is only useful if a failing seed is reproducible.  A traced
chaos run records every scheduling decision — per-batch execution
order, interleaving picks, fault assignments — as ``sched`` meta
events; :class:`ReplaySchedule` parses them back and
:class:`TraceReplayer` re-runs the program with a scripted
:class:`~repro.exec.chaos.ChaosStrategy` that follows the recording
decision-for-decision instead of drawing fresh randomness.  For the
deterministic strategies a replay is simply a re-run under the recorded
options.  Either way, :meth:`TraceReplayer.verify` then diffs the two
traces *including* the meta events, proving the schedule itself — not
just the output — was reproduced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import EngineError
from repro.exec.chaos import ChaosStrategy, FaultPlan
from repro.trace.diff import Divergence, trace_diff
from repro.trace.events import TraceEvent
from repro.trace.recorder import TraceLike, load_events

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import RunResult
    from repro.core.program import ExecOptions, Program

__all__ = ["ReplayError", "ReplaySchedule", "TraceReplayer"]


class ReplayError(EngineError):
    """The trace cannot drive a replay (missing events, divergence)."""


class ReplaySchedule:
    """The chaos decisions of one recorded run, indexed by batch."""

    def __init__(self, events: list[TraceEvent]):
        self._batches: dict[int, dict] = {}
        for e in events:
            if e.kind == "sched":
                self._batches[int(e.data["batch"])] = e.data

    def __len__(self) -> int:
        return len(self._batches)

    def decisions_for(
        self, batch: int, n: int
    ) -> tuple[str, list[int], dict[int, str], dict[int, int]]:
        """(mode, order, faults, raise points) recorded for ``batch``;
        raises :class:`ReplayError` when the replayed run has diverged
        from the recording (different batch count or width)."""
        d = self._batches.get(batch)
        if d is None:
            raise ReplayError(
                f"no recorded schedule for batch {batch}: the replayed run "
                "has more steps than the recording"
            )
        if int(d["n"]) != n:
            raise ReplayError(
                f"batch {batch} width diverged: recorded {d['n']} tasks, "
                f"replay produced {n}"
            )
        faults = {int(k): str(v) for k, v in d.get("faults", {}).items()}
        points = {int(k): int(v) for k, v in d.get("fault_points", {}).items()}
        return str(d["mode"]), [int(i) for i in d["order"]], faults, points

    def picks_for(self, batch: int) -> list[int]:
        d = self._batches.get(batch)
        if d is None:
            raise ReplayError(f"no recorded schedule for batch {batch}")
        return [int(i) for i in d.get("picks", [])]


class TraceReplayer:
    """Re-execute a recorded run and check it lands on the same history.

    ``trace`` may be a :class:`~repro.trace.recorder.TraceRecorder`, a
    list of events, or a JSONL path.  The caller supplies the
    :class:`~repro.core.program.Program` (rule bodies are Python
    closures — they cannot live inside the trace) plus any
    non-serialisable base options (store overrides etc.); the replayer
    overrides the schedule-relevant fields from the recorded
    ``run-start`` configuration.
    """

    def __init__(self, trace: TraceLike):
        self.events = load_events(trace)
        starts = [e for e in self.events if e.kind == "run-start"]
        if not starts:
            raise ReplayError("trace has no run-start event; was tracing on?")
        self.config = dict(starts[0].data)

    # -- option reconstruction ---------------------------------------------

    def options(self, base: "ExecOptions | None" = None) -> "ExecOptions":
        """The recorded execution options, layered over ``base``."""
        from repro.core.program import ExecOptions

        opts = base if base is not None else ExecOptions()
        fp = self.config.get("fault_plan")
        return opts.with_(
            strategy=self.config["strategy"],
            threads=int(self.config.get("threads", 1)),
            chaos_seed=self.config.get("chaos_seed"),
            fault_plan=FaultPlan.from_dict(fp) if fp else None,
            task_granularity=self.config.get("task_granularity", "tuple"),
            trace=True,
        )

    # -- execution ----------------------------------------------------------

    def replay(
        self, program: "Program", base_options: "ExecOptions | None" = None
    ) -> "RunResult":
        """Run ``program`` under the recorded schedule; returns the
        replay's :class:`~repro.core.engine.RunResult` (with its own
        trace attached, for diffing)."""
        from repro.core.engine import Engine

        opts = self.options(base_options)
        if opts.strategy == "chaos":
            strategy = ChaosStrategy(
                seed=opts.chaos_seed or 0,
                fault_plan=opts.fault_plan,
                script=ReplaySchedule(self.events),
            )
            engine = Engine(program, opts, strategy=strategy)
        else:
            engine = Engine(program, opts)
        return engine.run()

    def verify(
        self, program: "Program", base_options: "ExecOptions | None" = None
    ) -> Divergence | None:
        """Replay and diff against the recording — *including* the
        scheduling meta events, so a verified replay reproduced the
        exact schedule, not merely the same output."""
        result = self.replay(program, base_options)
        assert result.trace is not None
        return trace_diff(self.events, result.trace, include_meta=True)
