"""Structured trace events — the record half of the determinism contract.

§1.3's promise is that strategy and thread count change *time but never
results*.  A trace makes that promise a checkable artifact: the engine
emits one event stream per run, and two runs are *equivalent* iff their
**semantic** events match — step frontiers, task outcomes, queries,
puts, and effect applications.  Everything timing- or schedule-shaped
(costs, scheduling decisions, injected faults) is either carried in
``VOLATILE_KEYS`` fields or flagged ``meta`` so that
:func:`repro.trace.diff.trace_diff` can ignore it when comparing runs
under different strategies, and include it when verifying an exact
replay of one recorded schedule.

Event kinds
-----------

``run-start``  (meta)      run configuration: program, strategy, seeds
``step``       (semantic)  one all-minimums step: index, width, frontier
``task``       (semantic)  one task's outcome: trigger, fired rules
``query``      (semantic)  one Gamma query: table, kind, result count
``put``        (semantic)  one ``ctx.put``: rule, table, tuple
``effect``     (semantic)  one deferred put applied to Delta (phase C)
``admit``      (semantic)  one externally fed tuple entering Delta
                           (initial puts and session ``feed`` calls);
                           carried at the feed's current step, so
                           chunked-feed comparisons treat admits as a
                           step-independent multiset
``retract``    (semantic)  one tuple removed by retraction repair
                           (``Delete`` of a base fact, over-delete
                           cascade, or grown-result invalidation);
                           ``pending: true`` marks a tuple pulled from
                           Delta before it was ever processed
``sched``      (meta)      one batch's chaos schedule: order/picks/faults
``fault``      (meta)      one injected fault that actually triggered
``run-end``    (semantic)  run summary: steps, output hash, table sizes

Distributed runs (:class:`repro.dist.procrun.ProcessShardRuntime`) tag
their ``step``/``task``/``query``/``put``/``effect`` events with the
worker ``node`` that produced them, merged into one causal trace in the
coordinator's deterministic step order.  ``node`` is placement, not
semantics — it lives in ``VOLATILE_KEYS`` so a sharded trace still
compares equal to the single-node trace of the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEvent", "VOLATILE_KEYS", "semantic_key"]

#: data keys excluded from event comparison: they vary with strategy,
#: host load, store representation, or tuple placement, never with
#: program semantics.
VOLATILE_KEYS = frozenset({"cost", "wall_time", "node"})


@dataclass(slots=True)
class TraceEvent:
    """One recorded engine event."""

    seq: int                      #: global emission index within the run
    step: int                     #: engine step the event belongs to (0 = init)
    kind: str                     #: see module docstring
    data: dict[str, Any] = field(default_factory=dict)
    meta: bool = False            #: scheduling/diagnostic, not semantic

    def to_json(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "seq": self.seq,
            "step": self.step,
            "kind": self.kind,
            "data": self.data,
        }
        if self.meta:
            d["meta"] = True
        return d

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(d["seq"]),
            step=int(d["step"]),
            kind=str(d["kind"]),
            data=dict(d.get("data", {})),
            meta=bool(d.get("meta", False)),
        )


def _canonical(value: Any) -> Any:
    """JSON-shaped canonical form so in-memory and round-tripped events
    compare equal (tuples become lists, dict keys become strings)."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def semantic_key(event: TraceEvent) -> tuple:
    """The comparison key of an event: kind + step + non-volatile data.
    ``seq`` is excluded (meta events shift it between runs)."""
    data = {
        k: _canonical(v) for k, v in event.data.items() if k not in VOLATILE_KEYS
    }
    return (event.kind, event.step, tuple(sorted(data.items(), key=lambda kv: kv[0])))
