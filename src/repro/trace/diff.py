"""``trace_diff`` — pinpoint the first divergent event between two runs.

Two clean runs of the same program under *any* strategies must produce
identical semantic event streams (§1.3); a chaos run that diverges is a
determinism bug, and this tool names the exact step and event where the
histories split, so the failure is immediately minimisable (replay up
to that step) instead of a needle in two multi-megabyte logs.

By default only semantic events are compared — scheduling decisions and
injected faults are *supposed* to differ between runs.  Pass
``include_meta=True`` to verify an exact replay of a recorded schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import VOLATILE_KEYS, TraceEvent, semantic_key
from repro.trace.recorder import TraceLike, load_events

__all__ = ["Divergence", "trace_diff", "format_divergence"]


@dataclass(slots=True)
class Divergence:
    """The first point at which two traces disagree."""

    index: int                  #: position in the compared event sequence
    left: TraceEvent | None     #: None = left trace ended early
    right: TraceEvent | None    #: None = right trace ended early
    reason: str

    def __repr__(self) -> str:
        return f"<divergence at event {self.index}: {self.reason}>"


def trace_diff(
    left: TraceLike, right: TraceLike, include_meta: bool = False
) -> Divergence | None:
    """First divergent event between two traces, or ``None`` if they are
    equivalent.  Accepts recorders, event lists, or JSONL paths."""
    a = load_events(left)
    b = load_events(right)
    if not include_meta:
        a = [e for e in a if not e.meta]
        b = [e for e in b if not e.meta]
    for i, (ea, eb) in enumerate(zip(a, b)):
        ka, kb = semantic_key(ea), semantic_key(eb)
        if ka != kb:
            return Divergence(i, ea, eb, _describe(ea, eb))
    if len(a) != len(b):
        i = min(len(a), len(b))
        ea = a[i] if i < len(a) else None
        eb = b[i] if i < len(b) else None
        longer = "left" if len(a) > len(b) else "right"
        return Divergence(
            i, ea, eb,
            f"traces differ in length ({len(a)} vs {len(b)} events); "
            f"{longer} trace continues with "
            f"{(ea or eb).kind!r} at step {(ea or eb).step}",  # type: ignore[union-attr]
        )
    return None


def _describe(a: TraceEvent, b: TraceEvent) -> str:
    if a.kind != b.kind:
        return (
            f"event kind diverges at step {a.step}/{b.step}: "
            f"{a.kind!r} vs {b.kind!r}"
        )
    if a.step != b.step:
        return f"{a.kind!r} event attributed to step {a.step} vs {b.step}"
    keys = sorted(set(a.data) | set(b.data))
    for k in keys:
        va, vb = a.data.get(k), b.data.get(k)
        if k in VOLATILE_KEYS:
            continue
        if _norm(va) != _norm(vb):
            return (
                f"{a.kind!r} at step {a.step}: field {k!r} diverges "
                f"({_short(va)} vs {_short(vb)})"
            )
    return f"{a.kind!r} at step {a.step}: data diverges"


def _norm(v):
    if isinstance(v, tuple):
        return list(v)
    if isinstance(v, (list,)):
        return [_norm(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _norm(x) for k, x in v.items()}
    return v


def _short(v, limit: int = 120) -> str:
    s = repr(v)
    return s if len(s) <= limit else s[: limit - 3] + "..."


def format_divergence(d: Divergence | None) -> str:
    """Human-readable one-paragraph report."""
    if d is None:
        return "traces are equivalent (no divergent events)"
    lines = [f"first divergence at event {d.index}: {d.reason}"]
    if d.left is not None:
        lines.append(f"  left : step {d.left.step} {d.left.kind} {d.left.data!r}")
    else:
        lines.append("  left : <trace ended>")
    if d.right is not None:
        lines.append(f"  right: step {d.right.step} {d.right.kind} {d.right.data!r}")
    else:
        lines.append("  right: <trace ended>")
    return "\n".join(lines)
