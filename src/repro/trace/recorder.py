"""The trace recorder and its exporters (JSONL, Chrome trace format).

The engine owns one :class:`TraceRecorder` per traced run
(``ExecOptions(trace=True)``) and emits events through it; strategies
that perturb schedules (:class:`repro.exec.chaos.ChaosStrategy`) emit
their scheduling decisions and injected faults through the same
recorder, flagged ``meta``.  The recorder is append-only and
deterministic: event order equals emission order, and emission happens
only from the engine's sequential phases (per-task micro events are
buffered on the :class:`~repro.exec.base.TaskResult` and flushed in
submission order), so the same run always produces the same stream.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import IO, Any, Iterable, Sequence, Union

from repro.trace.events import TraceEvent

__all__ = ["TraceRecorder", "output_hash", "load_events", "TraceLike"]

#: anything the diff / replay helpers accept as "a trace"
TraceLike = Union["TraceRecorder", Sequence[TraceEvent], str, Path]


def output_hash(output: Iterable[str]) -> str:
    """Stable digest of a run's output lines (the byte-identity check
    carried in the ``run-end`` event)."""
    h = hashlib.sha256()
    for line in output:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


class TraceRecorder:
    """Append-only event log for one engine run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        #: current engine step, stamped onto emitted events (0 = init)
        self.step: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def emit(self, kind: str, data: dict[str, Any], meta: bool = False) -> TraceEvent:
        ev = TraceEvent(
            seq=len(self.events), step=self.step, kind=kind, data=data, meta=meta
        )
        self.events.append(ev)
        return ev

    def semantic_events(self) -> list[TraceEvent]:
        return [e for e in self.events if not e.meta]

    def run_end(self) -> TraceEvent | None:
        """The run summary event, if the run completed."""
        for e in reversed(self.events):
            if e.kind == "run-end":
                return e
        return None

    # -- JSONL ------------------------------------------------------------

    def to_jsonl(self, dest: str | Path | IO[str]) -> None:
        """One JSON object per line — greppable, diffable, appendable."""
        close, fh = _open_for_write(dest)
        try:
            for e in self.events:
                fh.write(json.dumps(e.to_json(), sort_keys=True))
                fh.write("\n")
        finally:
            if close:
                fh.close()

    def to_jsonl_str(self) -> str:
        buf = io.StringIO()
        self.to_jsonl(buf)
        return buf.getvalue()

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TraceRecorder":
        """Rebuild a recorder from stored events (session snapshot
        restore); the step cursor resumes from the last event."""
        rec = cls()
        rec.events = list(events)
        if rec.events:
            rec.step = rec.events[-1].step
        return rec

    @classmethod
    def from_jsonl(cls, src: str | Path | IO[str]) -> "TraceRecorder":
        rec = cls()
        close, fh = _open_for_read(src)
        try:
            for line in fh:
                line = line.strip()
                if line:
                    rec.events.append(TraceEvent.from_json(json.loads(line)))
        finally:
            if close:
                fh.close()
        if rec.events:
            rec.step = rec.events[-1].step
        return rec

    # -- Chrome trace format ----------------------------------------------

    def to_chrome(self, dest: str | Path | IO[str]) -> None:
        """Export as Chrome trace-event JSON (load in ``chrome://tracing``
        or Perfetto).  Steps become frames on track 0; tasks become
        duration slices whose length is their metered cost (work units
        stand in for microseconds); faults become instant events."""
        trace_events: list[dict[str, Any]] = []
        cursor = 0.0          # global virtual clock, in work units
        task_slot = 0
        step_frames: dict[int, tuple[float, float]] = {}
        for e in self.events:
            if e.kind == "step":
                task_slot = 0
                step_frames.setdefault(e.step, (cursor, cursor))
            elif e.kind == "task":
                dur = max(float(e.data.get("cost", 0.0)), 0.001)
                trace_events.append(
                    {
                        "name": str(e.data.get("trigger", "task")),
                        "cat": "task",
                        "ph": "X",
                        "pid": 0,
                        "tid": 1 + task_slot % 8,
                        "ts": round(cursor, 3),
                        "dur": round(dur, 3),
                        "args": {"step": e.step, "fired": e.data.get("fired", [])},
                    }
                )
                lo, hi = step_frames.get(e.step, (cursor, cursor))
                step_frames[e.step] = (lo, max(hi, cursor + dur))
                cursor += dur
                task_slot += 1
            elif e.kind == "fault":
                trace_events.append(
                    {
                        "name": f"fault:{e.data.get('fault', '?')}",
                        "cat": "chaos",
                        "ph": "i",
                        "s": "g",
                        "pid": 0,
                        "tid": 0,
                        "ts": round(cursor, 3),
                        "args": dict(e.data),
                    }
                )
        for step, (lo, hi) in sorted(step_frames.items()):
            trace_events.append(
                {
                    "name": f"step {step}",
                    "cat": "step",
                    "ph": "X",
                    "pid": 0,
                    "tid": 0,
                    "ts": round(lo, 3),
                    "dur": round(max(hi - lo, 0.001), 3),
                }
            )
        doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        close, fh = _open_for_write(dest)
        try:
            json.dump(doc, fh)
        finally:
            if close:
                fh.close()


def load_events(trace: TraceLike) -> list[TraceEvent]:
    """Normalise any accepted trace form to a list of events."""
    if isinstance(trace, TraceRecorder):
        return list(trace.events)
    if isinstance(trace, (str, Path)):
        return TraceRecorder.from_jsonl(trace).events
    return list(trace)


def _open_for_write(dest: str | Path | IO[str]) -> tuple[bool, IO[str]]:
    if isinstance(dest, (str, Path)):
        return True, open(dest, "w", encoding="utf-8")
    return False, dest


def _open_for_read(src: str | Path | IO[str]) -> tuple[bool, IO[str]]:
    if isinstance(src, (str, Path)):
        return True, open(src, "r", encoding="utf-8")
    return False, src
