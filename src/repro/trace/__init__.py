"""Trace record / replay / diff — the §1.3 determinism contract as data.

Record a run (``ExecOptions(trace=True)``), export it
(:meth:`~repro.trace.recorder.TraceRecorder.to_jsonl`,
:meth:`~repro.trace.recorder.TraceRecorder.to_chrome`), diff two runs
(:func:`~repro.trace.diff.trace_diff`), replay a recorded schedule
exactly (:class:`~repro.trace.replay.TraceReplayer`).
"""

from repro.trace.diff import Divergence, format_divergence, trace_diff
from repro.trace.events import VOLATILE_KEYS, TraceEvent, semantic_key
from repro.trace.recorder import TraceRecorder, load_events, output_hash
from repro.trace.replay import ReplayError, ReplaySchedule, TraceReplayer

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "ReplaySchedule",
    "ReplayError",
    "Divergence",
    "trace_diff",
    "format_divergence",
    "semantic_key",
    "load_events",
    "output_hash",
    "VOLATILE_KEYS",
]
