"""The session service wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests carry a
client-chosen ``id`` (echoed verbatim in the response), a ``verb``, and
verb-specific fields; responses are either

    {"id": ..., "ok": true,  ...verb-specific payload...}
    {"id": ..., "ok": false, "error": {"code", "message", "retryable"}}

The error ``code`` values are the stable wire names of the
:class:`~repro.core.errors.ServiceError` taxonomy (plus the engine
error codes below); ``retryable`` distinguishes *backpressure* — retry
the identical request later, nothing was mutated — from protocol or
semantic failures the client must fix.

Feed events travel as ``["+"|"-", table, [values...]]`` triples
(``"+"`` insert, ``"-"`` retraction Delete); :func:`wire_events` /
:func:`decode_events` convert to and from the engine's
:class:`~repro.core.delta.Insert` / ``Delete`` event objects.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Iterable, Mapping

from repro.core.delta import Delete, Insert
from repro.core.errors import (
    CausalityError,
    EngineError,
    FrameTooLargeError,
    JStarError,
    ProtocolError,
    RetractionError,
    ServiceError,
    UnknownTableError,
)
from repro.core.tuples import JTuple

__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "VERBS",
    "encode_frame",
    "read_frame",
    "read_frame_with_size",
    "write_frame",
    "wire_events",
    "decode_events",
    "error_payload",
    "error_code",
]

HEADER = struct.Struct(">I")

#: default ceiling on one frame's JSON body; a service can lower it
#: (``ServiceConfig.max_frame_bytes``) but frames above this are always
#: refused — the length prefix is attacker-controlled input
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: the verbs the service speaks
VERBS = (
    "open",
    "feed",
    "retract",
    "settle",
    "snapshot",
    "stats",
    "close",
    "ping",
)


def encode_frame(obj: Mapping[str, Any]) -> bytes:
    """One wire frame for ``obj`` (length prefix + compact JSON)."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameTooLargeError` when the length prefix exceeds
    ``max_bytes`` (without reading the body) and
    :class:`ProtocolError` on truncation, invalid JSON, or a non-object
    payload.
    """
    framed = await read_frame_with_size(reader, max_bytes)
    return None if framed is None else framed[0]


async def read_frame_with_size(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, int] | None:
    """Like :func:`read_frame` but also returns the body's byte length —
    the service's in-flight feed accounting is denominated in wire
    bytes, the thing the length prefix already measures."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{HEADER.size} bytes)"
        ) from None
    (length,) = HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the service's limit of "
            f"{max_bytes} bytes; split the batch into smaller frames"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None
    try:
        obj = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj, len(body)


async def write_frame(writer: asyncio.StreamWriter, obj: Mapping[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# -- event encoding ------------------------------------------------------------


def wire_events(events: Iterable[Any]) -> list[list]:
    """Engine-side events (JTuple / Insert / Delete) -> wire triples."""
    out: list[list] = []
    for ev in events:
        if isinstance(ev, Insert):
            out.append(["+", ev.tuple.schema.name, list(ev.tuple.values)])
        elif isinstance(ev, Delete):
            out.append(["-", ev.tuple.schema.name, list(ev.tuple.values)])
        elif isinstance(ev, JTuple):
            out.append(["+", ev.schema.name, list(ev.values)])
        else:
            raise ProtocolError(
                f"cannot encode feed event {ev!r}; expected a JTuple, "
                "Insert, or Delete"
            )
    return out


def decode_events(schemas: Mapping[str, Any], triples: Iterable[Any]) -> list:
    """Wire triples -> engine events against ``schemas`` (table name ->
    :class:`~repro.core.schema.TableSchema`).  Unknown tables and
    malformed triples are refused *before* anything is admitted."""
    out: list = []
    for i, triple in enumerate(triples):
        if (
            not isinstance(triple, (list, tuple))
            or len(triple) != 3
            or triple[0] not in ("+", "-")
            or not isinstance(triple[2], (list, tuple))
        ):
            raise ProtocolError(
                f"feed event #{i} is not an ['+'|'-', table, values] "
                f"triple: {triple!r}"
            )
        op, table, values = triple
        schema = schemas.get(table)
        if schema is None:
            raise UnknownTableError(
                f"feed event #{i} names unknown table {table!r}"
            )
        tup = JTuple(schema, tuple(values))
        out.append(Insert(tup) if op == "+" else Delete(tup))
    return out


# -- error mapping -------------------------------------------------------------

#: engine-error wire codes (the service relays these verbatim so a
#: client can tell an admission refusal from a retraction misuse)
_ENGINE_CODES = (
    (CausalityError, "admission"),
    (RetractionError, "retraction"),
    (UnknownTableError, "unknown-table"),
    (EngineError, "engine"),
)


def error_code(exc: BaseException) -> tuple[str, bool]:
    """The wire ``(code, retryable)`` pair for an exception."""
    if isinstance(exc, ServiceError):
        return exc.code, exc.retryable
    for klass, code in _ENGINE_CODES:
        if isinstance(exc, klass):
            return code, False
    if isinstance(exc, JStarError):
        return "engine", False
    return "internal", False


def error_payload(request_id: Any, exc: BaseException) -> dict:
    """The structured error response for ``exc``."""
    code, retryable = error_code(exc)
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": str(exc), "retryable": retryable},
    }
