"""The multi-tenant session service: an asyncio TCP frontend
multiplexing many concurrent tenant :class:`~repro.core.EngineSession`s.

Architecture
------------

* One asyncio event loop owns all connections and the tenant table.
  Requests on one connection are processed in order; concurrency comes
  from many connections.
* Engine work (feed admission, settling, snapshotting) is synchronous
  Python; the loop pushes it onto a bounded thread-pool executor so a
  tenant settling a deep derivation never stalls another tenant's
  feeds.  A per-tenant ``asyncio.Lock`` serialises verbs for the same
  tenant — an :class:`~repro.core.EngineSession` is single-threaded by
  contract — while different tenants' sessions proceed in parallel
  across the pool.
* **Admission control** happens on the loop, before any engine work:
  ``open`` beyond ``max_tenants`` and feeds that would push the
  in-flight feed bytes over ``max_inflight_bytes`` are refused with
  *retryable* structured errors (:class:`TenantLimitError` /
  :class:`OverloadedError`) and touch nothing — the backpressure
  contract is "a refusal mutates no state; the identical request is
  valid later".
* **Durability** is per-tenant: each checkpoint atomically writes the
  engine snapshot plus the feed sequence number it covers
  (:mod:`repro.serve.tenant`).  ``open`` of a tenant with a durable
  checkpoint restores it and reports ``last_seq`` so the client can
  replay exactly the feeds the crash lost — duplicates are acknowledged
  without re-admission, gaps are refused, which together give
  exactly-once admission across restarts.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import (
    OverloadedError,
    ProtocolError,
    ServiceError,
    TenantLimitError,
    UnknownTenantError,
    UnknownVerbError,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    error_payload,
    read_frame_with_size,
    write_frame,
)
from repro.serve.registry import ProgramRegistry
from repro.serve.tenant import TenantSession, valid_tenant_id

__all__ = ["ServiceConfig", "ServiceStats", "SessionService", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operator-side service configuration."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; SessionService.port has the bound one
    #: durable checkpoint root (one subdirectory per tenant); None
    #: disables durability (snapshot verb refused, restore impossible)
    data_dir: str | Path | None = None
    #: admission control: refuse ``open`` beyond this many live tenants
    max_tenants: int = 256
    #: admission control: refuse feeds while this many request bytes are
    #: already queued or being admitted across all tenants
    max_inflight_bytes: int = 8 * 1024 * 1024
    #: refuse single frames larger than this (never above the protocol
    #: hard cap)
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: write a checkpoint every N settles (0 = only on explicit
    #: ``snapshot`` verbs and graceful shutdown)
    checkpoint_every_settles: int = 1
    #: additionally checkpoint after this many feeds since the last
    #: durable point (0 = off)
    checkpoint_every_feeds: int = 0
    #: thread-pool width for engine work
    executor_workers: int = 8

    def __post_init__(self) -> None:
        if self.max_frame_bytes > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"max_frame_bytes {self.max_frame_bytes} exceeds the "
                f"protocol hard cap {MAX_FRAME_BYTES}"
            )


@dataclass
class ServiceStats:
    """Service-level counters (the tenant-level ones live on each
    :class:`TenantSession` and surface through the ``stats`` verb)."""

    connections: int = 0
    requests: int = 0
    feeds: int = 0
    fed_tuples: int = 0
    settles: int = 0
    checkpoints: int = 0
    restores: int = 0
    closes: int = 0
    #: structured-error responses by wire code
    rejections: dict[str, int] = field(default_factory=dict)
    peak_tenants: int = 0
    peak_inflight_bytes: int = 0

    def reject(self, code: str) -> None:
        self.rejections[code] = self.rejections.get(code, 0) + 1

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "feeds": self.feeds,
            "fed_tuples": self.fed_tuples,
            "settles": self.settles,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "closes": self.closes,
            "rejections": dict(sorted(self.rejections.items())),
            "peak_tenants": self.peak_tenants,
            "peak_inflight_bytes": self.peak_inflight_bytes,
        }


class SessionService:
    """One running service over one :class:`ProgramRegistry`."""

    def __init__(self, registry: ProgramRegistry, config: ServiceConfig | None = None):
        self.registry = registry
        self.config = config if config is not None else ServiceConfig()
        self.tenants: dict[str, TenantSession] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._inflight_bytes = 0
        self.stats = ServiceStats()
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._stopping = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise ServiceError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "SessionService":
        if self._server is not None:
            raise ServiceError("service already started")
        if self.config.data_dir is not None:
            Path(self.config.data_dir).mkdir(parents=True, exist_ok=True)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="serve-engine",
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def stop(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop accepting, checkpoint every live
        tenant (when durability is on), release the executor."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if checkpoint and self.config.data_dir is not None:
            for tenant in list(self.tenants.values()):
                if tenant.session.closed:
                    continue
                async with self._lock_for(tenant.tenant):
                    await self._run_engine(tenant.checkpoint)
                    self.stats.checkpoints += 1
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._server = None

    async def __aenter__(self) -> "SessionService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(checkpoint=exc_type is None)

    # -- helpers ---------------------------------------------------------------

    def _lock_for(self, tenant: str) -> asyncio.Lock:
        lock = self._locks.get(tenant)
        if lock is None:
            lock = self._locks[tenant] = asyncio.Lock()
        return lock

    async def _run_engine(self, fn, *args):
        """Run synchronous engine work on the pool."""
        if self._pool is None:
            raise ServiceError("service is stopped")
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn, *args
        )

    def _live_tenant(self, msg: dict) -> TenantSession:
        tenant_id = valid_tenant_id(msg.get("tenant"))
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            has_checkpoint = self.config.data_dir is not None and (
                TenantSession.snapshot_path(
                    Path(self.config.data_dir), tenant_id
                ).exists()
            )
            raise UnknownTenantError(
                f"tenant {tenant_id!r} has no live session"
                + (
                    " (a durable checkpoint exists; send open to restore it)"
                    if has_checkpoint
                    else ""
                )
            )
        return tenant

    def _drop_if_dead(self, tenant: TenantSession) -> None:
        """A session shut down by an engine error frees its slot; the
        durable checkpoint (if any) stays restorable."""
        if tenant.session.closed:
            self.tenants.pop(tenant.tenant, None)
            self._locks.pop(tenant.tenant, None)

    # -- connection handling ---------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while not self._stopping:
                try:
                    framed = await read_frame_with_size(
                        reader, self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # the stream may be desynchronised (unread body
                    # bytes): answer, then drop the connection
                    code = error_payload(None, exc)
                    self.stats.reject(code["error"]["code"])
                    with contextlib.suppress(ConnectionError):
                        await write_frame(writer, code)
                    return
                if framed is None:
                    return
                msg, nbytes = framed
                self.stats.requests += 1
                response = await self._dispatch(msg, nbytes)
                if not response.get("ok", False):
                    self.stats.reject(response["error"]["code"])
                try:
                    await write_frame(writer, response)
                except ConnectionError:
                    return
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                with contextlib.suppress(asyncio.CancelledError):
                    await writer.wait_closed()

    async def _dispatch(self, msg: dict, nbytes: int) -> dict:
        request_id = msg.get("id")
        verb = msg.get("verb")
        try:
            if verb not in _HANDLERS:
                raise UnknownVerbError(
                    f"unknown verb {verb!r}; this service speaks: "
                    + ", ".join(sorted(_HANDLERS))
                )
            payload = await _HANDLERS[verb](self, msg, nbytes)
            return {"id": request_id, "ok": True, **payload}
        except Exception as exc:  # noqa: BLE001 — mapped to wire codes
            return error_payload(request_id, exc)

    # -- verbs -----------------------------------------------------------------

    async def _verb_ping(self, msg: dict, nbytes: int) -> dict:
        return {
            "pong": True,
            "programs": self.registry.names(),
            "tenants": len(self.tenants),
        }

    async def _verb_open(self, msg: dict, nbytes: int) -> dict:
        tenant_id = valid_tenant_id(msg.get("tenant"))
        program = msg.get("program")
        if not isinstance(program, str):
            raise ProtocolError(f"open needs a program name, got {program!r}")
        overrides = msg.get("options") or {}
        if not isinstance(overrides, dict):
            raise ProtocolError(f"open options must be an object, got {overrides!r}")
        entry = self.registry.get(program)

        live = self.tenants.get(tenant_id)
        if live is not None:
            # idempotent re-open (e.g. a client retrying after a lost
            # response): same program required, nothing re-built
            if live.entry.name != program:
                raise ProtocolError(
                    f"tenant {tenant_id!r} is open on program "
                    f"{live.entry.name!r}, not {program!r}"
                )
            return {
                "tenant": tenant_id,
                "program": program,
                "resumed": True,
                "created": False,
                "last_seq": live.last_seq,
                "durable_seq": live.durable_seq,
            }

        if len(self.tenants) >= self.config.max_tenants:
            raise TenantLimitError(
                f"session table is full ({self.config.max_tenants} "
                "tenants); close a tenant or retry later"
            )

        data_dir = (
            Path(self.config.data_dir) if self.config.data_dir is not None else None
        )
        restored = False
        async with self._lock_for(tenant_id):
            if data_dir is not None and TenantSession.snapshot_path(
                data_dir, tenant_id
            ).exists():
                tenant = await self._run_engine(
                    TenantSession.restore_from_disk, tenant_id, entry, data_dir
                )
                # a restored tenant keeps its original overrides; a
                # conflicting re-open request is a client bug
                if overrides and overrides != tenant.overrides:
                    tenant.session.close()
                    raise ProtocolError(
                        f"tenant {tenant_id!r} was opened with options "
                        f"{tenant.overrides!r}; reopen with the same "
                        f"options (got {overrides!r})"
                    )
                restored = True
                self.stats.restores += 1
            else:
                tenant = await self._run_engine(
                    TenantSession.create, tenant_id, entry, overrides, data_dir
                )
            self.tenants[tenant_id] = tenant
        self.stats.peak_tenants = max(self.stats.peak_tenants, len(self.tenants))
        return {
            "tenant": tenant_id,
            "program": program,
            "resumed": restored,
            "created": not restored,
            "last_seq": tenant.last_seq,
            "durable_seq": tenant.durable_seq,
        }

    async def _verb_feed(self, msg: dict, nbytes: int, deletes_only: bool = False) -> dict:
        tenant = self._live_tenant(msg)
        events = msg.get("events")
        if not isinstance(events, list):
            raise ProtocolError(
                f"feed needs an events list, got {type(events).__name__}"
            )
        seq = msg.get("seq")
        # backpressure check-and-reserve happens on the loop, before
        # any engine work, so a refusal cannot have mutated anything
        if self._inflight_bytes + nbytes > self.config.max_inflight_bytes:
            raise OverloadedError(
                f"feed of {nbytes} bytes refused: {self._inflight_bytes} "
                f"bytes of feeds already in flight (limit "
                f"{self.config.max_inflight_bytes}); retry after pending "
                "feeds drain"
            )
        self._inflight_bytes += nbytes
        self.stats.peak_inflight_bytes = max(
            self.stats.peak_inflight_bytes, self._inflight_bytes
        )
        try:
            async with self._lock_for(tenant.tenant):
                try:
                    payload = await self._run_engine(
                        tenant.feed, events, seq, deletes_only
                    )
                    if (
                        self.config.checkpoint_every_feeds
                        and tenant.last_seq - tenant.durable_seq
                        >= self.config.checkpoint_every_feeds
                    ):
                        ck = await self._run_engine(tenant.checkpoint)
                        self.stats.checkpoints += 1
                        payload["durable_seq"] = ck["durable_seq"]
                finally:
                    self._drop_if_dead(tenant)
        finally:
            self._inflight_bytes -= nbytes
        self.stats.feeds += 1
        self.stats.fed_tuples += payload["admitted"]
        return payload

    async def _verb_retract(self, msg: dict, nbytes: int) -> dict:
        return await self._verb_feed(msg, nbytes, deletes_only=True)

    async def _verb_settle(self, msg: dict, nbytes: int) -> dict:
        tenant = self._live_tenant(msg)
        async with self._lock_for(tenant.tenant):
            try:
                payload = await self._run_engine(tenant.settle)
                every = self.config.checkpoint_every_settles
                if (
                    every
                    and self.config.data_dir is not None
                    and tenant.settles % every == 0
                ):
                    ck = await self._run_engine(tenant.checkpoint)
                    self.stats.checkpoints += 1
                    payload["durable_seq"] = ck["durable_seq"]
            finally:
                self._drop_if_dead(tenant)
        self.stats.settles += 1
        return payload

    async def _verb_snapshot(self, msg: dict, nbytes: int) -> dict:
        tenant = self._live_tenant(msg)
        async with self._lock_for(tenant.tenant):
            try:
                payload = await self._run_engine(tenant.checkpoint)
            finally:
                self._drop_if_dead(tenant)
        self.stats.checkpoints += 1
        return payload

    async def _verb_close(self, msg: dict, nbytes: int) -> dict:
        tenant = self._live_tenant(msg)
        async with self._lock_for(tenant.tenant):
            try:
                payload = await self._run_engine(tenant.close)
            finally:
                self.tenants.pop(tenant.tenant, None)
                self._locks.pop(tenant.tenant, None)
        self.stats.closes += 1
        return payload

    async def _verb_stats(self, msg: dict, nbytes: int) -> dict:
        if msg.get("tenant") is None:
            return {
                "service": self.stats.as_dict(),
                "tenants": sorted(self.tenants),
                "programs": self.registry.names(),
                "inflight_bytes": self._inflight_bytes,
                "limits": {
                    "max_tenants": self.config.max_tenants,
                    "max_inflight_bytes": self.config.max_inflight_bytes,
                    "max_frame_bytes": self.config.max_frame_bytes,
                },
            }
        tenant = self._live_tenant(msg)
        async with self._lock_for(tenant.tenant):
            return await self._run_engine(tenant.stats)


_HANDLERS = {
    "ping": SessionService._verb_ping,
    "open": SessionService._verb_open,
    "feed": SessionService._verb_feed,
    "retract": SessionService._verb_retract,
    "settle": SessionService._verb_settle,
    "snapshot": SessionService._verb_snapshot,
    "close": SessionService._verb_close,
    "stats": SessionService._verb_stats,
}


def run_service(
    registry: ProgramRegistry,
    config: ServiceConfig,
    *,
    ready_file: str | Path | None = None,
) -> None:
    """Blocking entry point (the crash-test child and ad-hoc servers):
    start the service and serve until cancelled.  When ``ready_file``
    is given, the bound port is written there once listening — the
    parent process polls it instead of racing the bind."""

    async def _main() -> None:
        service = SessionService(registry, config)
        await service.start()
        if ready_file is not None:
            tmp = Path(str(ready_file) + ".tmp")
            tmp.write_text(json.dumps({"port": service.port}))
            tmp.replace(Path(ready_file))
        await service.serve_forever()

    asyncio.run(_main())
