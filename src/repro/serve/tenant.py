"""One tenant of the session service: a wrapped
:class:`~repro.core.session.EngineSession` plus its durability record.

Exactly-once admission across crashes is sequence-numbered: every feed
carries a monotonically increasing ``seq``.  The tenant applies a feed
only when ``seq == last_seq + 1`` — a lower ``seq`` is acknowledged as
a duplicate without touching the engine (so client replay after a
restart is idempotent), a gap is refused (a lost feed must not be
papered over).  Checkpoints write the engine snapshot and the
``last_seq`` that produced it as **one** atomic document
(``snapshot.json``, written via temp-file + ``os.replace``), so a crash
can never persist engine state without the sequence number that
describes it, or vice versa.  On restart the service rebuilds the
tenant from the document and tells the client which ``seq`` is durable;
the client replays everything after it.

All methods that touch the engine are synchronous and must be
serialised per tenant — the service runs them on its executor under a
per-tenant lock.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

from repro.core.errors import ProtocolError, TenantClosedError
from repro.core.session import EngineSession
from repro.serve.protocol import decode_events
from repro.serve.registry import ProgramEntry

__all__ = ["TenantSession", "valid_tenant_id", "TENANT_ID_PATTERN"]

#: tenant ids become directory names; anything else is refused
TENANT_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


def valid_tenant_id(tenant: object) -> str:
    if not isinstance(tenant, str) or not TENANT_ID_PATTERN.fullmatch(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}; tenant ids are 1-64 chars of "
            "[A-Za-z0-9._-] starting with an alphanumeric"
        )
    return tenant


class TenantSession:
    """A live tenant: engine session + sequence/durability bookkeeping."""

    def __init__(
        self,
        tenant: str,
        entry: ProgramEntry,
        overrides: dict | None,
        data_dir: Path | None,
        session: EngineSession,
        *,
        last_seq: int = 0,
        fed_tuples: int = 0,
        settles: int = 0,
    ):
        self.tenant = tenant
        self.entry = entry
        self.overrides = dict(overrides or {})
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.session = session
        self.last_seq = last_seq            # last feed applied to the engine
        self.durable_seq = last_seq         # last feed captured by a checkpoint
        self.fed_tuples = fed_tuples
        self.quarantined_tuples = 0
        self.settles = settles
        self.checkpoints = 0
        self.opened_at = time.time()
        self.last_active = self.opened_at

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        tenant: str,
        entry: ProgramEntry,
        overrides: dict | None,
        data_dir: Path | None,
    ) -> "TenantSession":
        options = entry.build_options(overrides)
        session = EngineSession(entry.factory(), options).open()
        return cls(tenant, entry, overrides, data_dir, session)

    @classmethod
    def restore_from_disk(
        cls, tenant: str, entry: ProgramEntry, data_dir: Path
    ) -> "TenantSession":
        """Rebuild a tenant from its durable checkpoint.  The engine
        state and the ``last_seq`` come from the same atomic document,
        so they are consistent by construction."""
        doc = json.loads(cls.snapshot_path(data_dir, tenant).read_text())
        extra = doc.get("extra") or {}
        if extra.get("tenant") != tenant:
            raise ProtocolError(
                f"checkpoint at {cls.snapshot_path(data_dir, tenant)} "
                f"belongs to tenant {extra.get('tenant')!r}, not {tenant!r}"
            )
        if extra.get("program") != entry.name:
            raise ProtocolError(
                f"tenant {tenant!r} was opened on program "
                f"{extra.get('program')!r}, not {entry.name!r}"
            )
        overrides = extra.get("overrides") or {}
        options = entry.build_options(overrides)
        session = EngineSession.restore(doc, entry.factory(), options)
        return cls(
            tenant,
            entry,
            overrides,
            data_dir,
            session,
            last_seq=int(extra.get("last_seq", 0)),
            fed_tuples=int(extra.get("fed_tuples", 0)),
            settles=int(extra.get("settles", 0)),
        )

    @staticmethod
    def tenant_dir(data_dir: Path, tenant: str) -> Path:
        return Path(data_dir) / tenant

    @staticmethod
    def snapshot_path(data_dir: Path, tenant: str) -> Path:
        return TenantSession.tenant_dir(data_dir, tenant) / "snapshot.json"

    # -- verbs (sync; run on the service executor under the tenant lock) ------

    def _require_live(self) -> None:
        if self.session.closed:
            raise TenantClosedError(
                f"tenant {self.tenant!r} session is closed"
            )

    def feed(self, triples: list, seq: int | None, deletes_only: bool = False) -> dict:
        """Apply one sequenced feed.  Returns the wire payload."""
        self._require_live()
        self.last_active = time.time()
        if seq is None:
            seq = self.last_seq + 1
        elif not isinstance(seq, int) or seq < 1:
            raise ProtocolError(f"feed seq must be a positive integer, got {seq!r}")
        if seq <= self.last_seq:
            # a replay of an already-applied feed: acknowledge without
            # touching the engine — this is what makes client replay
            # after a crash idempotent
            return {
                "seq": seq,
                "duplicate": True,
                "admitted": 0,
                "quarantined": 0,
                "last_seq": self.last_seq,
                "durable_seq": self.durable_seq,
            }
        if seq != self.last_seq + 1:
            raise ProtocolError(
                f"feed seq {seq} leaves a gap: tenant {self.tenant!r} has "
                f"applied up to seq {self.last_seq}; feeds must arrive in "
                "order (replay from durable_seq + 1 after a restart)"
            )
        events = decode_events(self.session.program.schemas(), triples)
        if deletes_only:
            from repro.core.delta import Insert

            bad = [i for i, ev in enumerate(events) if isinstance(ev, Insert)]
            if bad:
                raise ProtocolError(
                    f"retract verb accepts only '-' events; events "
                    f"{bad} are inserts (use feed for mixed batches)"
                )
        report = self.session.feed(events, source=f"<{self.tenant}:{seq}>")
        self.last_seq = seq
        self.fed_tuples += report.admitted
        self.quarantined_tuples += len(report.quarantined)
        return {
            "seq": seq,
            "duplicate": False,
            "admitted": report.admitted,
            "quarantined": len(report.quarantined),
            "last_seq": self.last_seq,
            "durable_seq": self.durable_seq,
        }

    def settle(self) -> dict:
        self._require_live()
        self.last_active = time.time()
        result = self.session.settle()
        self.settles += 1
        return {
            "settle": self.settles,
            "steps": result.steps,
            "output": list(result.output),
            "engine_wall": result.wall_time,
        }

    def checkpoint(self) -> dict:
        """Write the atomic engine-state + durability document."""
        self._require_live()
        if self.data_dir is None:
            raise ProtocolError(
                "this service runs without a data directory; snapshots "
                "are disabled"
            )
        tdir = self.tenant_dir(self.data_dir, self.tenant)
        tdir.mkdir(parents=True, exist_ok=True)
        path = self.snapshot_path(self.data_dir, self.tenant)
        tmp = tdir / "snapshot.json.tmp"
        doc = self.session.snapshot(extra=self._extra())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.durable_seq = self.last_seq
        self.checkpoints += 1
        return {"durable_seq": self.durable_seq, "checkpoints": self.checkpoints}

    def _extra(self) -> dict:
        return {
            "tenant": self.tenant,
            "program": self.entry.name,
            "overrides": dict(self.overrides),
            "last_seq": self.last_seq,
            "fed_tuples": self.fed_tuples,
            "settles": self.settles,
        }

    def close(self) -> dict:
        """Close the engine session and reap the durable state: a closed
        tenant is finished, not restartable."""
        self._require_live()
        result = self.session.close()
        if self.data_dir is not None:
            path = self.snapshot_path(self.data_dir, self.tenant)
            tdir = self.tenant_dir(self.data_dir, self.tenant)
            try:
                path.unlink(missing_ok=True)
                (tdir / "snapshot.json.tmp").unlink(missing_ok=True)
                tdir.rmdir()
            except OSError:
                pass  # someone else's files in the dir: leave them
        return {
            "output": list(result.output),
            "steps": result.steps,
            "table_sizes": dict(sorted(result.table_sizes.items())),
            "fed_tuples": self.fed_tuples,
            "settles": self.settles,
        }

    def stats(self) -> dict:
        """The ``stats`` verb payload: the engine's collector view plus
        the service-side per-tenant counters.  (The collector is
        settle-consistent: each ``settle`` folds the kernel's deferred
        tallies, so no extra flush is needed — or wanted, since an early
        flush would skew the next settle's per-settle delta record.)"""
        return {
            "tenant": self.tenant,
            "program": self.entry.name,
            "strategy": self.session.options.strategy,
            "retraction": self.session.options.retraction,
            "last_seq": self.last_seq,
            "durable_seq": self.durable_seq,
            "fed_tuples": self.fed_tuples,
            "quarantined_tuples": self.quarantined_tuples,
            "settles": self.settles,
            "checkpoints": self.checkpoints,
            "opened_at": self.opened_at,
            "last_active": self.last_active,
            "engine": self.session.stats.as_dict(),
        }
