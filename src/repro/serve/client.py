"""Asyncio client for the session service.

One :class:`ServiceClient` owns one connection; requests on it are
strictly request→response (the service answers in order), so drive
concurrency with one client per tenant (the soak battery and the
benchmark both do).  The client tracks a ``next_seq`` per tenant —
seeded from ``open``'s ``last_seq`` — so ordinary callers never touch
sequence numbers; crash-replay callers pass explicit ``seq`` values
from their own journal.

Structured error responses raise :class:`ServiceCallError`, which
carries the wire ``code`` and ``retryable`` flag;
:meth:`ServiceClient.feed` can retry retryable refusals (backpressure)
with exponential backoff.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable

from repro.core.errors import ProtocolError
from repro.serve.protocol import read_frame, wire_events, write_frame

__all__ = ["ServiceCallError", "ServiceClient"]


class ServiceCallError(Exception):
    """A structured ``ok: false`` response from the service."""

    def __init__(self, code: str, message: str, retryable: bool):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retryable = retryable


class ServiceClient:
    """One connection to one service."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 1
        #: tenant -> next feed sequence number (seeded by ``open``)
        self.next_seq: dict[str, int] = {}

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close_connection()

    async def close_connection(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- raw calls -------------------------------------------------------------

    async def call_raw(self, verb: str, **fields: Any) -> dict:
        """Send one request, await its response dict (no raising on
        ``ok: false`` — the backpressure tests inspect these directly)."""
        request_id = self._next_id
        self._next_id += 1
        await write_frame(self._writer, {"id": request_id, "verb": verb, **fields})
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("service closed the connection mid-call")
        if response.get("id") != request_id:
            # a connection-level refusal (e.g. frame-too-large) carries
            # id null: the service could not parse the frame it is
            # answering, and this connection has exactly one request in
            # flight, so it is ours
            if not (response.get("id") is None and not response.get("ok", False)):
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
        return response

    async def call(self, verb: str, **fields: Any) -> dict:
        response = await self.call_raw(verb, **fields)
        if not response.get("ok", False):
            err = response.get("error") or {}
            raise ServiceCallError(
                err.get("code", "internal"),
                err.get("message", "missing error payload"),
                bool(err.get("retryable", False)),
            )
        return response

    # -- verbs -----------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.call("ping")

    async def open(
        self, tenant: str, program: str, options: dict | None = None
    ) -> dict:
        response = await self.call("open", tenant=tenant, program=program,
                                   options=options or {})
        self.next_seq[tenant] = int(response["last_seq"]) + 1
        return response

    async def feed(
        self,
        tenant: str,
        events: Iterable[Any],
        seq: int | None = None,
        *,
        verb: str = "feed",
        retries: int = 0,
        backoff: float = 0.05,
    ) -> dict:
        """Feed engine events (JTuple / Insert / Delete) or pre-encoded
        wire triples.  ``retries`` > 0 retries *retryable* refusals
        (backpressure) with exponential backoff; non-retryable errors
        raise immediately."""
        events = list(events)
        if all(isinstance(ev, list) for ev in events):
            triples = events  # already wire triples
        else:
            triples = wire_events(events)
        if seq is None:
            seq = self.next_seq.get(tenant, 1)
        attempt = 0
        while True:
            try:
                response = await self.call(verb, tenant=tenant, seq=seq,
                                           events=triples)
            except ServiceCallError as exc:
                if exc.retryable and attempt < retries:
                    await asyncio.sleep(backoff * (2 ** attempt))
                    attempt += 1
                    continue
                raise
            self.next_seq[tenant] = max(self.next_seq.get(tenant, 1), seq + 1)
            return response

    async def retract(self, tenant: str, events: Iterable[Any],
                      seq: int | None = None, **kw: Any) -> dict:
        return await self.feed(tenant, events, seq, verb="retract", **kw)

    async def settle(self, tenant: str) -> dict:
        return await self.call("settle", tenant=tenant)

    async def snapshot(self, tenant: str) -> dict:
        return await self.call("snapshot", tenant=tenant)

    async def stats(self, tenant: str | None = None) -> dict:
        if tenant is None:
            return await self.call("stats")
        return await self.call("stats", tenant=tenant)

    async def close(self, tenant: str) -> dict:
        response = await self.call("close", tenant=tenant)
        self.next_seq.pop(tenant, None)
        return response
