"""The multi-tenant session service (:mod:`repro.serve`).

PR 4's resumable sessions and PR 6's retraction, assembled into a
server: an asyncio TCP frontend (length-prefixed JSON frames, see
:mod:`repro.serve.protocol`) multiplexing many concurrent tenant
:class:`~repro.core.EngineSession`s with per-tenant snapshot-backed
durability, sequence-numbered exactly-once feed admission, admission
control with explicit backpressure, and per-tenant statistics.

Quick taste::

    from repro.serve import ProgramRegistry, ServiceConfig, SessionService
    from repro.serve import ServiceClient

    registry = ProgramRegistry()
    registry.register("sensors", build_my_sensor_program)

    async def main():
        async with SessionService(registry, ServiceConfig(data_dir="state")) as svc:
            client = await ServiceClient.connect("127.0.0.1", svc.port)
            await client.open("tenant-a", "sensors")
            await client.feed("tenant-a", [Reading.new(0, 1, 55)])
            settled = await client.settle("tenant-a")
            print(settled["output"])
            await client.close("tenant-a")
"""

from repro.serve.client import ServiceCallError, ServiceClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    VERBS,
    decode_events,
    encode_frame,
    read_frame,
    wire_events,
    write_frame,
)
from repro.serve.registry import ProgramEntry, ProgramRegistry
from repro.serve.service import (
    ServiceConfig,
    ServiceStats,
    SessionService,
    run_service,
)
from repro.serve.tenant import TenantSession

__all__ = [
    "MAX_FRAME_BYTES",
    "VERBS",
    "ProgramEntry",
    "ProgramRegistry",
    "ServiceCallError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "SessionService",
    "TenantSession",
    "decode_events",
    "encode_frame",
    "read_frame",
    "run_service",
    "wire_events",
    "write_frame",
]
