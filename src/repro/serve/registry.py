"""The program registry: what the session service can serve.

Rules are code, so a service cannot accept programs over the wire — it
is configured at construction with named *program factories*.  A tenant
opens a session naming a registered program; the factory builds a fresh
:class:`~repro.core.Program` per tenant (sessions never share mutable
engine state; a frozen program is shareable in principle, but a fresh
instance per tenant keeps tenants fully isolated, plan caches
included).

Each entry also fixes the *server-side* execution options and which of
them a tenant may override.  Tenants are untrusted: the overridable set
defaults to the semantics-neutral knobs (``retraction``, ``admission``)
and never includes resource-shaped ones (``strategy``, ``threads``,
``max_steps``) unless the operator lists them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import EngineError, UnknownProgramError
from repro.core.program import ExecOptions, Program

__all__ = ["ProgramEntry", "ProgramRegistry", "DEFAULT_TENANT_KNOBS"]

#: option fields a tenant may set in ``open`` unless the operator says
#: otherwise — the ones that change *what the tenant means*, not what
#: the server spends
DEFAULT_TENANT_KNOBS = frozenset({"retraction", "admission"})


@dataclass(frozen=True)
class ProgramEntry:
    """One registered program: factory + server-side options policy."""

    name: str
    factory: Callable[[], Program]
    options: ExecOptions = field(default_factory=ExecOptions)
    tenant_knobs: frozenset[str] = DEFAULT_TENANT_KNOBS

    def build_options(self, overrides: dict | None) -> ExecOptions:
        """The entry's options with a tenant's requested overrides
        applied; refuses knobs outside the entry's allowlist.  Invalid
        values surface as the canonical ``ExecOptions`` refusal."""
        if not overrides:
            return self.options
        refused = sorted(set(overrides) - set(self.tenant_knobs))
        if refused:
            raise EngineError(
                f"tenant options {refused} are not overridable for "
                f"program {self.name!r}; allowed: {sorted(self.tenant_knobs)}"
            )
        return self.options.with_(**overrides)


class ProgramRegistry:
    """Name -> :class:`ProgramEntry` with refusal on unknown names."""

    def __init__(self) -> None:
        self._entries: dict[str, ProgramEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], Program],
        options: ExecOptions | None = None,
        tenant_knobs: frozenset[str] | None = None,
    ) -> ProgramEntry:
        if name in self._entries:
            raise EngineError(f"program {name!r} registered twice")
        entry = ProgramEntry(
            name,
            factory,
            options if options is not None else ExecOptions(),
            tenant_knobs if tenant_knobs is not None else DEFAULT_TENANT_KNOBS,
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ProgramEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownProgramError(
                f"program {name!r} is not registered with this service; "
                f"registered: {sorted(self._entries) or 'none'}"
            )
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
