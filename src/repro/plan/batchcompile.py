"""Batch (columnar) compilation of rule metadata into prefetch plans.

Under ``ExecOptions(execution="columnar")`` the kernel's phase B wants
to evaluate a rule's queries once per *trigger batch* instead of once
per firing.  Rule bodies are opaque Python, so the only static
description of their queries is the rule's :class:`RuleMeta` — and meta
is advisory: it was written for the causality prover, nothing checks it
against the body.  A plan compiled from it therefore must never be
*trusted*, only *used as a prediction*:

* at ``freeze()`` time, :func:`compile_batch_plan` turns each
  prefetchable ``SymQuery`` of a single-branch meta into a
  :class:`_SpecCompiled` — per-field value *sources* (trigger field,
  constant, or a trigger-linear expression) for the equality bindings,
  and range operators decomposed from the meta's linear constraints;
* per step, the bound plan prefetches every spec over the whole
  trigger batch — through the store's bulk ``prepare_batch`` path when
  it has one (:class:`~repro.gamma.columnar.ColumnarStore`), else via
  the shared compiled-plan prepared select per trigger;
* at body-call time, :class:`BatchRuleContext` *verifies* the concrete
  call against the prediction — schema identity, kind, constrained
  positions, and every eq/range **value** — and only on an exact match
  serves the prefetched result (computed from the same read-only Gamma
  through the same access path, hence provably what the scalar path
  would have returned, with the identical trace event).  Any mismatch
  falls through to the normal planned path, so wrong or stale meta is
  an efficiency miss, never a correctness bug.

Two hazards make "same read-only Gamma" subtle, and both are handled
here: a ``-noDelta`` cascade can insert into Gamma *during* phase B, so
every spec on a ``-noDelta`` table carries a mutation-epoch snapshot
and refuses to serve if the table changed since prefetch; and a query
that follows a NEGATIVE guard in the meta is only prefetched for
triggers whose guard result was empty (the guard-taken branch never
reaches it — prefetching it anyway would be wasted work, and serving
semantics never depend on the gating being right).

Rules whose negative/aggregate queries must still be *adjudicated*
dynamically (``causality_check != "off"`` without
``assume_stratified``) are excluded by the kernel at bind time: the
adjudicator needs a concrete query + compiled bound, so those rules
keep the scalar path and their exact warning behaviour.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Mapping

from repro.core.errors import CausalityError, RuleError
from repro.core.ordering import (
    Lit,
    OrderDecls,
    OrderingError,
    Par,
    Seq,
    compare_timestamps,
)
from repro.core.query import Query, QueryKind
from repro.core.rules import Rule, RuleContext
from repro.core.reducers import reduce_all
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple, TableHandle
from repro.solver.terms import Rel, Term, var

__all__ = [
    "BatchCompiledPlan",
    "BatchBoundPlan",
    "BatchPrefetch",
    "BatchRuleContext",
    "compile_batch_plan",
    "put_always_causal",
    "put_fast_compare",
]

_NUMERIC = ("int", "float", "bool")

#: fresh-variable prefix for a query's own (unbound) fields when the
#: meta's constraint callback is evaluated for decomposition
_QVAR = "__batchq."

_MISSING = object()
_MISS = object()


def _num(frac: Fraction):
    return int(frac) if frac.denominator == 1 else float(frac)


def put_always_causal(
    put_schema: TableSchema, trigger_schema: TableSchema, decls: OrderDecls
) -> bool:
    """True iff *every* tuple of ``put_schema`` is timestamped at or
    after *every* tuple of ``trigger_schema`` — i.e. the put-side
    causality comparison is decided by the orderby structure alone,
    before any data-dependent (``seq``) level is reached.  Used to skip
    the per-put ``compare_timestamps`` in the columnar context; a
    ``False`` just keeps the dynamic check, so this never loosens §4."""
    po = put_schema.orderby
    to = trigger_schema.orderby
    for pe, te in zip(po, to):
        kind = type(pe)
        if kind is not type(te):
            return False  # structurally mismatched level: runtime raises
        if kind is Lit:
            if pe.name == te.name:
                continue
            try:
                return decls.rank(pe.name) > decls.rank(te.name)
            except OrderingError:
                return False
        if kind is Par:
            continue  # par levels compare equal regardless of value
        return False  # seq level: data-dependent
    # every shared level ties; a longer put key extends the trigger's
    # (compares after), an equal length ties, a shorter one precedes
    return len(po) >= len(to)


def put_fast_compare(
    put_schema: TableSchema, trigger_schema: TableSchema
) -> tuple[int, int] | None:
    """Field positions ``(put_pos, trig_pos)`` when the first orderby
    level that can differ between the two schemas is a ``seq`` field on
    both sides (every earlier level an identical literal): a put whose
    seq value is *strictly greater* then compares after the trigger at
    that level, so the §4 check can be skipped without materialising
    either timestamp.  Lower-or-equal values fall back to the exact
    dynamic comparison, so this is a pure short-circuit."""
    po = put_schema.orderby
    to = trigger_schema.orderby
    if len(po) != len(to):
        return None
    for pe, te in zip(po, to):
        kind = type(pe)
        if kind is not type(te):
            return None
        if kind is Lit:
            if pe.name != te.name:
                return None
            continue
        if kind is Seq:
            return (
                put_schema.field_position(pe.field),
                trigger_schema.field_position(te.field),
            )
        return None  # par level: values erased, nothing to compare
    return None  # fully literal and identical: put_always_causal covers it


def _compile_source(term: Term, trigger: TableSchema):
    """Compile a trigger-linear :class:`Term` into a closure
    ``trigger_values -> value``; ``None`` when the term involves
    anything but numeric trigger fields and constants."""
    if term.is_constant():
        c = _num(term.constant)
        return lambda values: c
    items: list[tuple[int, Fraction]] = []
    for name, coeff in term.coeffs.items():
        if not name.startswith("trig."):
            return None
        pos = trigger.index.get(name[5:])
        if pos is None or trigger.fields[pos].type not in _NUMERIC:
            return None
        items.append((pos, coeff))
    const = term.constant
    if len(items) == 1 and items[0][1] == 1:
        pos = items[0][0]
        if const == 0:
            return lambda values: values[pos]
        if const.denominator == 1:
            c = int(const)
            return lambda values: values[pos] + c
    coeffs = tuple((pos, _num(c)) for pos, c in items)
    k = _num(const)

    def source(values):
        v = k
        for pos, c in coeffs:
            v = v + c * values[pos]
        return v

    return source


def _decompose_constraints(
    query_schema: TableSchema,
    trigger: TableSchema,
    constraints: Callable | None,
) -> list[tuple[str, str, Callable]] | None:
    """Turn a meta query's constraint callback into ``(field, op,
    bound-source)`` triples — the range spec the body is predicted to
    pass.  ``None`` = not decomposable (spec is unprefetchable)."""
    if constraints is None:
        return []
    q_fields = {
        f.name: var(_QVAR + f.name)
        for f in query_schema.fields
        if f.type in _NUMERIC
    }
    try:
        atoms = list(constraints(q_fields))
    except Exception:
        return None
    out: list[tuple[str, str, Callable]] = []
    for con in atoms:
        if con.rel == Rel.EQ:
            return None  # bodies express equalities as eq args, not ranges
        term = con.term
        qvars = [(v, c) for v, c in term.coeffs.items() if v.startswith(_QVAR)]
        if not qvars:
            continue  # pure trigger fact: not part of the query shape
        if len(qvars) > 1:
            return None  # cross-field constraint: not a range
        qname, coeff = qvars[0]
        fname = qname[len(_QVAR):]
        # coeff*q + rest REL 0  ->  q REL' -rest/coeff (flip on coeff<0)
        rest_coeffs = {v: -c / coeff for v, c in term.coeffs.items() if v != qname}
        bound = Term(rest_coeffs, -term.constant / coeff)
        source = _compile_source(bound, trigger)
        if source is None:
            return None
        if coeff > 0:
            op = "lt" if con.rel == Rel.LT else "le"
        else:
            op = "gt" if con.rel == Rel.LT else "ge"
        out.append((fname, op, source))
    return out


class _SpecCompiled:
    """One prefetchable query of a rule's meta, fully compiled."""

    __slots__ = (
        "schema",
        "kind",
        "eq_positions",
        "eq_sources",
        "range_fields",
        "range_positions",
        "gate",
        "match",
    )

    def __init__(
        self,
        schema: TableSchema,
        kind: QueryKind,
        eq_items: list[tuple[int, Callable]],
        range_items: list[tuple[str, str, Callable]],
        gate: int | None,
    ):
        # canonical order: ascending field position (matches both the
        # Query eq dict the prefetch builds and the bulk-store row
        # convention); the serve-time match works by position, so the
        # body may use either positional-prefix or named-kwarg style
        eq_items = sorted(eq_items)
        self.schema = schema
        self.kind = kind
        self.eq_positions = tuple(pos for pos, _src in eq_items)
        self.eq_sources = tuple(src for _pos, src in eq_items)
        # group range ops per field, fields in ascending position order
        grouped: dict[str, list[tuple[str, Callable]]] = {}
        for fname, op, src in range_items:
            grouped.setdefault(fname, []).append((op, src))
        fields = sorted(grouped, key=schema.field_position)
        self.range_fields = tuple(
            (fname, tuple(op for op, _s in grouped[fname]), tuple(s for _o, s in grouped[fname]))
        for fname in fields)
        self.range_positions = tuple(schema.field_position(f) for f in fields)
        self.gate = gate
        self.match = self._compile_match()

    def _compile_match(self):
        schema = self.schema
        eq_positions = self.eq_positions
        names = tuple(schema.field_names[p] for p in eq_positions)
        n_eq = len(eq_positions)
        pos_set = frozenset(eq_positions)
        range_fields = self.range_fields

        def match(prefix: tuple, eq: Mapping, ranges, exp: tuple) -> bool:
            np_ = len(prefix)
            if np_ + len(eq) != n_eq:
                return False
            for i in range(np_):
                if i not in pos_set:
                    return False
            j = 0
            for pos, name in zip(eq_positions, names):
                v = prefix[pos] if pos < np_ else eq.get(name, _MISSING)
                if v is _MISSING or v != exp[j]:
                    return False
                j += 1
            if range_fields:
                if not ranges or len(ranges) != len(range_fields):
                    return False
                for fname, ops, _srcs in range_fields:
                    spec = ranges.get(fname)
                    if not isinstance(spec, Mapping) or len(spec) != len(ops):
                        return False
                    for op in ops:
                        v = spec.get(op, _MISSING)
                        if v is _MISSING or v != exp[j]:
                            return False
                        j += 1
            elif ranges:
                return False
            return True

        return match


class _TailProbe:
    """A trailing *unbound* NEGATIVE meta query on a keyed table: the
    meta predicts no values (its call count and bindings are decided by
    the body's inner loop), so nothing can be prefetched — but once the
    positional specs are consumed, any ``get_uniq``/``absent`` that
    fully binds the table's primary key can be served **live** by one
    ``lookup_key`` (the key invariant caps matches at one, so this is
    exactly what the scalar prepared select returns, read at the same
    moment the scalar path would read it — no staleness is possible)."""

    __slots__ = ("schema",)

    def __init__(self, schema: TableSchema):
        self.schema = schema


class BatchCompiledPlan:
    """The freeze-time batch plan of one rule: its prefetchable query
    specs, in predicted call order, plus an optional tail probe."""

    __slots__ = ("rule", "specs", "tail")

    def __init__(
        self, rule: Rule, specs: list[_SpecCompiled], tail: _TailProbe | None
    ):
        self.rule = rule
        self.specs = specs
        self.tail = tail

    def bind(self, db, plans, mut_epoch: dict[str, int]) -> "BatchBoundPlan":
        """Resolve the specs against one run's database and plan cache."""
        return BatchBoundPlan(self, db, plans, mut_epoch)


def compile_batch_plan(rule: Rule) -> BatchCompiledPlan | None:
    """Compile a rule's meta into a batch prefetch plan; ``None`` when
    nothing is prefetchable (no meta, several branches — whose call
    order is data-dependent — or no decomposable query)."""
    meta = rule.meta
    if meta is None or len(getattr(meta, "branches", ())) != 1:
        return None
    trigger = meta.trigger_schema
    branch = meta.branches[0]
    specs: list[_SpecCompiled] = []
    tail: _TailProbe | None = None
    last_negative: int | None = None
    for q in branch.queries:
        compiled = _compile_spec(q, trigger, last_negative)
        if compiled is None:
            if (
                q.kind is QueryKind.NEGATIVE
                and not q.bound
                and q.constraints is None
                and q.schema.has_key
            ):
                # the cursor cannot represent specs past a variable
                # -count probe loop, so the tail ends the plan
                tail = _TailProbe(q.schema)
                break
            continue
        specs.append(compiled)
        if compiled.kind is QueryKind.NEGATIVE:
            last_negative = len(specs) - 1
    if not specs and tail is None:
        return None
    return BatchCompiledPlan(rule, specs, tail)


def _compile_spec(q, trigger: TableSchema, gate: int | None) -> _SpecCompiled | None:
    eq_items: list[tuple[int, Callable]] = []
    for name, term in q.bound.items():
        pos = q.schema.index.get(name)
        if pos is None:
            return None
        source = _compile_source(term, trigger)
        if source is None:
            return None  # string-typed or non-trigger binding
        eq_items.append((pos, source))
    if not eq_items:
        return None  # unbounded query: never worth predicting
    range_items = _decompose_constraints(q.schema, trigger, q.constraints)
    if range_items is None:
        return None
    rng_pos = {q.schema.field_position(f) for f, _op, _s in range_items}
    if rng_pos & {pos for pos, _src in eq_items}:
        return None  # eq+range on one field: bodies cannot express this
    return _SpecCompiled(q.schema, q.kind, eq_items, range_items, gate)


class _SpecBound:
    """A compiled spec resolved against one run: shared prepared
    select, optional store bulk path, mutation-epoch guard."""

    __slots__ = ("spec", "plan", "batch_run", "epoch_ref", "table_name")

    def __init__(self, spec: _SpecCompiled, db, plans, mut_epoch: dict[str, int]):
        self.spec = spec
        schema = spec.schema
        self.table_name = schema.name
        handle = TableHandle(schema)
        # register the shape in the shared plan cache (dummy values;
        # plan compilation depends only on constrained positions) so
        # serve-time hits bump the same per-plan stats the scalar path
        # would, and the generic prefetch path reuses its access path
        eq = {schema.field_names[p]: 0 for p in spec.eq_positions}
        ranges = (
            {fname: {op: 0 for op in ops} for fname, ops, _s in spec.range_fields}
            or None
        )
        self.plan, _probe = plans.lookup(handle, (), None, ranges, eq, spec.kind)
        store = db.store(schema.name)
        prepare_batch = getattr(store, "prepare_batch", None)
        self.batch_run = (
            prepare_batch(_probe) if prepare_batch is not None else None
        )
        # -noDelta tables can grow *during* phase B (cascade inserts);
        # a spec on one only serves while its epoch is unchanged
        self.epoch_ref = mut_epoch if schema.name in mut_epoch else None


class _TailBound:
    """A :class:`_TailProbe` resolved against one run: the store's
    ``lookup_key`` plus the shared compiled plan the scalar path would
    use for the same full-key shape (so serve-time hits bump the same
    per-plan stats)."""

    __slots__ = (
        "schema",
        "plan",
        "lookup",
        "key_positions",
        "key_names",
        "n_key",
        "pos_set",
        "table_name",
    )

    def __init__(self, tail: _TailProbe, db, plans):
        schema = tail.schema
        self.schema = schema
        self.table_name = schema.name
        self.key_positions = schema.key_indexes
        self.key_names = tuple(schema.field_names[i] for i in schema.key_indexes)
        self.n_key = len(self.key_positions)
        self.pos_set = frozenset(self.key_positions)
        handle = TableHandle(schema)
        eq = {name: 0 for name in self.key_names}
        self.plan, _probe = plans.lookup(
            handle, (), None, None, eq, QueryKind.NEGATIVE
        )
        self.lookup = db.store(schema.name).lookup_key


class BatchPrefetch:
    """One rule's prefetched results for one trigger batch."""

    __slots__ = ("bound", "results", "expects", "epochs", "next_index")

    def __init__(self, bound, results, expects, epochs):
        self.bound = bound
        self.results = results
        self.expects = expects
        self.epochs = epochs
        self.next_index = 0


class BatchBoundPlan:
    """A rule's batch plan bound to one run; builds a
    :class:`BatchPrefetch` per trigger batch."""

    __slots__ = ("rule", "specs", "n_specs", "tail", "mut_epoch")

    def __init__(self, compiled: BatchCompiledPlan, db, plans, mut_epoch):
        self.rule = compiled.rule
        self.specs = [
            _SpecBound(s, db, plans, mut_epoch) for s in compiled.specs
        ]
        self.n_specs = len(self.specs)
        self.tail = (
            _TailBound(compiled.tail, db, plans)
            if compiled.tail is not None
            else None
        )
        self.mut_epoch = mut_epoch

    def prefetch(self, triggers: list[JTuple]) -> tuple[BatchPrefetch, int]:
        """Evaluate every spec over the trigger batch.  Returns the
        prefetch plus the number of bulk-resolved probes (for the
        ``gamma_batchselect`` meter)."""
        results: list[list] = []
        expects: list[list] = []
        epochs: list[int | None] = []
        n = len(triggers)
        n_probes = 0
        for st in self.specs:
            spec = st.spec
            rows: list = [None] * n
            exps: list = [None] * n
            gate = spec.gate
            gate_rows = results[gate] if gate is not None else None
            eq_sources = spec.eq_sources
            range_fields = spec.range_fields
            probe_idx: list[int] = []
            eq_rows: list[tuple] = []
            rng_rows: list[tuple] | None = [] if range_fields else None
            for i, tup in enumerate(triggers):
                if gate_rows is not None:
                    g = gate_rows[i]
                    if g is None or g:
                        continue  # guard taken (or unknown): body never asks
                values = tup.values
                erow = tuple(src(values) for src in eq_sources)
                if range_fields:
                    quads = []
                    flat = []
                    for _fname, ops, srcs in range_fields:
                        lo = hi = None
                        lo_inc = hi_inc = True
                        for op, src in zip(ops, srcs):
                            v = src(values)
                            flat.append(v)
                            if op == "lt":
                                hi, hi_inc = v, False
                            elif op == "le":
                                hi, hi_inc = v, True
                            elif op == "gt":
                                lo, lo_inc = v, False
                            else:
                                lo, lo_inc = v, True
                        quads.append((lo, hi, lo_inc, hi_inc))
                    exps[i] = erow + tuple(flat)
                    rng_rows.append(tuple(quads))
                else:
                    exps[i] = erow
                probe_idx.append(i)
                eq_rows.append(erow)
            if eq_rows:
                n_probes += len(eq_rows)
                if st.batch_run is not None:
                    got = st.batch_run(eq_rows, rng_rows)
                else:
                    got = []
                    run = st.plan.prepared.run
                    schema = spec.schema
                    kind = spec.kind
                    eq_positions = spec.eq_positions
                    rng_positions = spec.range_positions
                    for j, erow in enumerate(eq_rows):
                        rdict = (
                            dict(zip(rng_positions, rng_rows[j]))
                            if rng_rows is not None
                            else {}
                        )
                        q = Query(
                            schema, dict(zip(eq_positions, erow)), rdict, None, kind
                        )
                        got.append(run(q))
                for j, i in enumerate(probe_idx):
                    rows[i] = got[j]
            results.append(rows)
            expects.append(exps)
            ep = st.epoch_ref
            epochs.append(ep[st.table_name] if ep is not None else None)
        return BatchPrefetch(self, results, expects, epochs), n_probes


class BatchRuleContext(RuleContext):
    """A :class:`RuleContext` that first offers each query to the
    firing's prefetched rows (strict positional cursor), falling back
    to the inherited planned path on any mismatch.  Reused across
    firings by the columnar kernel — :meth:`reset` restores the
    per-firing state ``__init__`` would."""

    __slots__ = ("_pf", "_pfi", "_cursor", "_put_safe", "in_use")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pf = None
        self._pfi = 0
        self._cursor = 0
        self._put_safe: dict[int, object] = {}
        self.in_use = False

    def reset(
        self,
        trigger: JTuple,
        trigger_ts,
        trace: list | None,
        pf: BatchPrefetch | None,
        pfi: int,
        put_safe: dict[int, object],
    ) -> None:
        self.trigger = trigger
        self.trigger_ts = trigger_ts
        self.puts = []
        self.output = []
        self._finished = False
        self._neg_warned = False
        self._ts_ok = None
        self._trace = trace
        self._pf = pf
        self._pfi = pfi
        self._cursor = 0
        self._put_safe = put_safe

    # -- effects: the scalar ``put`` minus dead weight -----------------------

    def put(self, tup: JTuple) -> None:
        """Base :meth:`RuleContext.put` with the no-op meter charge
        dropped (columnar firings share ``NULL_METER``) and the §4
        comparison skipped when it is statically decided
        (:func:`put_always_causal`) or short-circuited by a seq-value
        compare (:func:`put_fast_compare`) — everything else, including
        every error message, is byte-identical."""
        if self._finished:
            self._guard()
        if self._sched is not None:
            self._sched()
        if not isinstance(tup, JTuple):
            raise RuleError(f"put expects a tuple, got {type(tup).__name__}")
        if self._trace is not None:
            self._trace.append(
                (
                    "put",
                    {
                        "rule": self._rule.name,
                        "table": tup.schema.name,
                        "tuple": repr(tup),
                    },
                )
            )
        if self._check_mode != "off":
            # True = statically causal; (p, t) = skip iff the put's seq
            # value strictly exceeds the trigger's; absent = full check
            ent = self._put_safe.get(id(tup.schema))
            if ent is not True and (
                ent is None or tup.values[ent[0]] <= self.trigger.values[ent[1]]
            ):
                ts = self._db.timestamp(tup)
                if ts is not self._ts_ok:
                    if compare_timestamps(ts, self.trigger_ts) < 0:
                        raise CausalityError(
                            f"rule {self._rule.name} put {tup!r} (ts {ts}) into the "
                            f"past of its trigger {self.trigger!r} (ts {self.trigger_ts})"
                        )
                    self._ts_ok = ts
        self.puts.append(tup)

    # -- queries: serve from the prefetch / the live tail probe --------------

    def _serve_tail(self, tail: _TailBound, table, prefix, eq, ranges, where):
        """Serve a full-key NEGATIVE probe by one live ``lookup_key``.
        The cursor does not advance: the tail absorbs any number of
        probes (the body's inner loop decides how many)."""
        if table.schema is not tail.schema or where is not None or ranges:
            return _MISS
        np_ = len(prefix)
        if np_ + len(eq) != tail.n_key:
            return _MISS
        key_names = tail.key_names
        if np_ == 0:
            if tail.n_key == 1:
                vals = eq.get(key_names[0], _MISSING)
                if vals is _MISSING:
                    return _MISS
                vals = (vals,)
            else:
                out = []
                for name in key_names:
                    v = eq.get(name, _MISSING)
                    if v is _MISSING:
                        return _MISS
                    out.append(v)
                vals = tuple(out)
        else:
            pos_set = tail.pos_set
            for p in range(np_):
                if p not in pos_set:
                    return _MISS
            out = []
            for j, pos in enumerate(tail.key_positions):
                if pos < np_:
                    out.append(prefix[pos])
                else:
                    v = eq.get(key_names[j], _MISSING)
                    if v is _MISSING:
                        return _MISS
                    out.append(v)
            vals = tuple(out)
        t = tail.lookup(vals)
        res = [] if t is None else [t]
        plan = tail.plan
        if self._collector is not None:
            hit = plan.rule_hits.get(self._rule.name)
            if hit is None:
                plan.rule_hits[self._rule.name] = [1, len(res)]
            else:
                hit[0] += 1
                hit[1] += len(res)
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": plan.table_name,
                        "kind": QueryKind.NEGATIVE.value,
                        "n_results": len(res),
                    },
                )
            )
        return res

    def _serve(self, table: TableHandle, prefix, eq, ranges, where, kind):
        pf = self._pf
        if pf is None:
            return _MISS
        cur = self._cursor
        bound = pf.bound
        specs = bound.specs
        if cur >= bound.n_specs:
            tail = bound.tail
            if tail is None or kind is not QueryKind.NEGATIVE:
                return _MISS
            return self._serve_tail(tail, table, prefix, eq, ranges, where)
        st = specs[cur]
        spec = st.spec
        if spec.kind is not kind or spec.schema is not table.schema:
            return _MISS
        i = self._pfi
        res = pf.results[cur][i]
        if res is None:
            return _MISS
        snap = pf.epochs[cur]
        if snap is not None and st.epoch_ref[st.table_name] != snap:
            return _MISS  # a -noDelta cascade touched the table: stale
        if not spec.match(prefix, eq, ranges, pf.expects[cur][i]) or where is not None:
            return _MISS
        self._cursor = cur + 1
        plan = st.plan
        n = len(res)
        if self._collector is not None:
            hit = plan.rule_hits.get(self._rule.name)
            if hit is None:
                plan.rule_hits[self._rule.name] = [1, n]
            else:
                hit[0] += 1
                hit[1] += n
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": plan.table_name,
                        "kind": kind.value,
                        "n_results": n,
                    },
                )
            )
        return res

    # -- query overrides: serve-or-fallback ---------------------------------

    def get(self, table, *prefix, where=None, ranges=None, **eq):
        res = self._serve(table, prefix, eq, ranges, where, QueryKind.POSITIVE)
        if res is not _MISS:
            if self._finished:
                self._guard()
            return res
        return super().get(table, *prefix, where=where, ranges=ranges, **eq)

    def get_uniq(self, table, *prefix, where=None, ranges=None, **eq):
        res = self._serve(table, prefix, eq, ranges, where, QueryKind.NEGATIVE)
        if res is _MISS:
            return super().get_uniq(
                table, *prefix, where=where, ranges=ranges, **eq
            )
        if self._finished:
            self._guard()
        if len(res) > 1:
            raise RuleError(f"get uniq? {table.name} matched {len(res)} tuples")
        return res[0] if res else None

    def absent(self, table, *prefix, where=None, ranges=None, **eq):
        res = self._serve(table, prefix, eq, ranges, where, QueryKind.NEGATIVE)
        if res is _MISS:
            return super().absent(
                table, *prefix, where=where, ranges=ranges, **eq
            )
        if self._finished:
            self._guard()
        return not res

    def reduce(self, table, *prefix, reducer, value, where=None, ranges=None, **eq):
        res = self._serve(table, prefix, eq, ranges, where, QueryKind.AGGREGATE)
        if res is _MISS:
            return super().reduce(
                table,
                *prefix,
                reducer=reducer,
                value=value,
                where=where,
                ranges=ranges,
                **eq,
            )
        self._guard()
        self._meter.charge("reduce_op", n=len(res))
        return reduce_all(reducer, (value(t) for t in res))
