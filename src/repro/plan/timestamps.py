"""Compiled timestamp evaluation.

:func:`repro.core.ordering.evaluate_orderby` re-interprets a schema's
orderby spec for every tuple: it builds a field-name → value dict,
walks the entries, and dispatches on their type.  The spec, however, is
fixed per schema once the program's order declarations freeze — so a
:class:`CompiledTimestamper` resolves everything static exactly once:

* ``Lit`` entries become constant ``(KIND_LIT, rank)`` components;
* ``Seq`` / ``Par`` entries become field *positions* into the tuple's
  value vector (no dict build per tuple);
* an all-literal orderby (``("PvWatts",)``-style, very common) becomes
  a single shared :class:`~repro.core.ordering.Timestamp` object.

The produced timestamps are equal (same ``key``/``display``) to the
interpreter's — asserted by the plan-cache unit tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ordering import (
    KIND_LIT,
    KIND_PAR,
    KIND_SEQ,
    Lit,
    OrderDecls,
    Seq,
    Timestamp,
)
from repro.core.schema import TableSchema

__all__ = ["CompiledTimestamper"]

# op codes for the compiled entry list
_OP_CONST = 0  # payload = finished key component, disp = display value
_OP_SEQ = 1    # payload = field position
_OP_PAR = 2    # payload = field position (display only)

_PAR_COMPONENT = (KIND_PAR,)


class CompiledTimestamper:
    """Per-schema orderby spec, pre-resolved against frozen decls."""

    __slots__ = ("_ops", "_const")

    def __init__(self, schema: TableSchema, decls: OrderDecls):
        ops: list[tuple] = []
        constant = True
        for entry in schema.orderby:
            if isinstance(entry, Lit):
                ops.append((_OP_CONST, (KIND_LIT, decls.rank(entry.name)), entry.name))
            elif isinstance(entry, Seq):
                ops.append((_OP_SEQ, schema.field_position(entry.field), None))
                constant = False
            else:  # Par
                ops.append((_OP_PAR, schema.field_position(entry.field), None))
                constant = False
        self._ops: tuple[tuple, ...] = tuple(ops)
        #: the one shared Timestamp when no entry depends on the tuple
        self._const: Timestamp | None = None
        if constant:
            self._const = Timestamp(
                tuple(comp for _, comp, _ in ops),
                tuple(disp for _, _, disp in ops),
            )
    def timestamp(self, values: Sequence) -> Timestamp:
        """The timestamp of a tuple with these field ``values``."""
        const = self._const
        if const is not None:
            return const
        key: list[tuple] = []
        display: list = []
        for op, payload, disp in self._ops:
            if op == _OP_CONST:
                key.append(payload)
                display.append(disp)
            elif op == _OP_SEQ:
                v = values[payload]
                key.append((KIND_SEQ, v))
                display.append(v)
            else:  # _OP_PAR: value erased from the ordering key (§5)
                key.append(_PAR_COMPONENT)
                display.append(values[payload])
        return Timestamp(tuple(key), tuple(display))
