"""Query-shape compilation: everything a rule's ``get`` re-derives per
firing, resolved once per *shape*.

A call site like ``ctx.get(Edge, dist.vertex)`` always produces queries
of one shape: same table, same number of positional constraints, same
named equality fields, same range forms, same kind.  Only the *values*
change between firings.  The plan cache runs the slow generic path
(:func:`repro.core.query.build_query`) exactly once on the first call —
so all of its validation errors still fire — and extracts:

* ``eq_positions`` — the field positions of the equality constraints,
  in the insertion order ``build_query`` would produce (prefix first,
  then named kwargs), so rebuilt queries are structurally identical;
* per-range extractor closures replaying
  :func:`~repro.core.query._normalise_range` for the shape's exact
  spec form (``(lo, hi)`` pair or an op dict with a fixed key order);
* the stats-collector field-name tuples (sorted eq / range names);
* a compiled causality upper bound (:class:`CompiledBound`) replaying
  :func:`repro.core.rules.query_upper_bound` without re-walking the
  orderby spec;
* the store's :class:`~repro.gamma.base.PreparedSelect` — index
  selection / fully-bound-key detection resolved per shape, not per
  firing (supplied by the cache, which shares prepared selects between
  shapes that bind the same positions).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.errors import SchemaError
from repro.core.ordering import (
    KIND_LIT,
    KIND_PAR,
    KIND_SEQ,
    Lit,
    OrderDecls,
    Seq,
    Timestamp,
)
from repro.core.query import Query
from repro.core.schema import TableSchema
from repro.gamma.base import PreparedSelect

__all__ = ["RANGE_PAIR", "range_form", "CompiledBound", "CompiledQueryPlan"]

#: shape tag for the inclusive ``(lo, hi)`` range form
RANGE_PAIR = "pair"

_VALID_OPS = frozenset(("gt", "ge", "lt", "le"))


def range_form(spec: Any):
    """The shape of one range spec: :data:`RANGE_PAIR` for a 2-tuple,
    the ordered op-key tuple for a mapping.  Mirrors the forms (and the
    error) of :func:`repro.core.query._normalise_range`."""
    tp = type(spec)
    if tp is dict:  # exact-type fast path: Mapping instancechecks are slow
        return tuple(spec.keys())
    if tp is tuple and len(spec) == 2:
        return RANGE_PAIR
    if isinstance(spec, tuple) and len(spec) == 2:
        return RANGE_PAIR
    if isinstance(spec, Mapping):
        return tuple(spec.keys())
    raise SchemaError(f"bad range spec {spec!r}")


def _make_range_extractor(form) -> Callable[[Any], tuple]:
    """A closure turning one runtime spec of ``form`` into the
    normalised ``(lo, hi, lo_inc, hi_inc)`` quadruple."""
    if form == RANGE_PAIR:
        return lambda spec: (spec[0], spec[1], True, True)
    # op-dict form: the key order is part of the shape, so replaying the
    # ops in that order reproduces _normalise_range's last-wins result
    ops = tuple(form)

    def extract(spec: Mapping) -> tuple:
        lo = hi = None
        lo_inc = hi_inc = True
        for op in ops:
            v = spec[op]
            if op == "gt":
                lo, lo_inc = v, False
            elif op == "ge":
                lo, lo_inc = v, True
            elif op == "lt":
                hi, hi_inc = v, False
            else:  # "le" — unknown ops already rejected at compile
                hi, hi_inc = v, True
        return (lo, hi, lo_inc, hi_inc)

    return extract


# CompiledBound op codes
_B_CONST = 0  # payload = finished key component, disp = literal name
_B_EQ = 1     # payload = eq field position
_B_HI = 2     # payload = range field position (deciding level)
_B_PAR = 3


class CompiledBound:
    """:func:`repro.core.rules.query_upper_bound`, shape-resolved.

    The orderby walk, isinstance dispatch, and eq-vs-range membership
    tests happen at compile time; per query only the bound *values* are
    read.  Whether a range's upper bound is ``None`` (→ unbounded) can
    genuinely vary per call for the pair form, so that check stays in
    :meth:`evaluate`.
    """

    __slots__ = ("_ops",)

    def __init__(self, ops: tuple):
        self._ops = ops

    def evaluate(self, query: Query) -> tuple[Timestamp, bool] | None:
        key: list[tuple] = []
        display: list = []
        strict = False
        for op, payload, disp in self._ops:
            if op == _B_CONST:
                key.append(payload)
                display.append(disp)
            elif op == _B_EQ:
                v = query.eq[payload]
                key.append((KIND_SEQ, v))
                display.append(v)
            elif op == _B_HI:
                hi = query.ranges[payload]
                if hi[1] is None:
                    return None
                key.append((KIND_SEQ, hi[1]))
                display.append(hi[1])
                strict = not hi[3]
                break  # later levels cannot raise the bound (see query_upper_bound)
            else:  # _B_PAR
                key.append((KIND_PAR,))
                display.append("*")
        return Timestamp(tuple(key), tuple(display)), strict


def compile_bound(
    schema: TableSchema, probe: Query, decls: OrderDecls
) -> CompiledBound | None:
    """``None`` when the shape leaves some ``seq`` level statically
    unconstrained — the dynamic checker then defers, exactly like
    ``query_upper_bound`` returning ``None``."""
    ops: list[tuple] = []
    for entry in schema.orderby:
        if isinstance(entry, Lit):
            ops.append((_B_CONST, (KIND_LIT, decls.rank(entry.name)), entry.name))
        elif isinstance(entry, Seq):
            pos = schema.field_position(entry.field)
            if pos in probe.eq:
                ops.append((_B_EQ, pos, None))
            elif pos in probe.ranges:
                ops.append((_B_HI, pos, None))
                break
            else:
                return None
        else:  # Par: contributes nothing decidable
            ops.append((_B_PAR, None, None))
    return CompiledBound(tuple(ops))


class CompiledQueryPlan:
    """One query shape, fully resolved; :meth:`build` only plugs values."""

    __slots__ = (
        "schema",
        "table_name",
        "kind",
        "eq_positions",
        "range_builders",
        "prepared",
        "stat_eq_fields",
        "stat_range_fields",
        "stat_shape",
        "bound",
        "rule_hits",
    )

    def __init__(
        self,
        probe: Query,
        ranges: Mapping[str, Any] | None,
        decls: OrderDecls,
        prepared: PreparedSelect,
    ):
        schema = probe.schema
        self.schema = schema
        self.table_name = schema.name
        self.kind = probe.kind
        # insertion order of probe.eq == prefix positions then named
        # kwargs, which is exactly how build() re-zips the values
        self.eq_positions = tuple(probe.eq)
        builders: list[tuple] = []
        if ranges:
            for name, spec in ranges.items():
                builders.append(
                    (schema.field_position(name), name, _make_range_extractor(range_form(spec)))
                )
        self.range_builders = tuple(builders)
        self.prepared = prepared
        names = schema.field_names
        self.stat_eq_fields = tuple(sorted(names[i] for i in probe.eq))
        self.stat_range_fields = tuple(sorted(names[i] for i in probe.ranges))
        # prebuilt (table, eq fields, range fields) key for the stats
        # collector, so the hot path never re-tuples it
        self.stat_shape = (self.table_name, self.stat_eq_fields, self.stat_range_fields)
        self.bound = compile_bound(schema, probe, decls)
        # rule name -> [n_queries, n_results]; the context bumps these
        # inline per firing and the collector absorbs them once at run
        # end (same totals as per-call on_query, none of its dict churn)
        self.rule_hits: dict[str, list] = {}

    def build(
        self,
        prefix: tuple,
        eq: Mapping[str, Any],
        ranges: Mapping[str, Any] | None,
        where: Callable | None,
    ) -> Query:
        """The per-firing fast path: two dict builds, no validation —
        the shape already validated on first compile."""
        vals = prefix + tuple(eq.values()) if eq else prefix
        if self.range_builders:
            rng = {pos: ex(ranges[name]) for pos, name, ex in self.range_builders}
        else:
            rng = {}
        return Query(self.schema, dict(zip(self.eq_positions, vals)), rng, where, self.kind)
