"""freeze()-time rule-body compilation for the codegen execution tier.

The scalar tier interprets every rule firing through a
:class:`~repro.core.rules.RuleContext`: each ``ctx.get`` re-enters the
plan cache through keyword dicts, each ``ctx.put`` re-derives the §4
causality comparison, and every tuple field read goes through
``JTuple.__getattr__``.  This module removes that interpretation layer
once per program: it parses the rule body's source, intercepts only the
``ctx.*`` calls, and emits the whole query-and-put loop as straight-line
Python with

* field reads pre-resolved to ``values[i]`` tuple indexing,
* query sites compiled to a prebound ``PreparedSelect.run`` call on an
  inline :class:`~repro.core.query.Query` (or a direct primary-key
  ``lookup_key`` when the store provides one and the site binds the
  whole key),
* put sites that inline the positional ``TableHandle.new`` fast path and
  skip the causality comparison when the orderby structure decides it
  statically (:func:`~repro.plan.batchcompile.put_always_causal`) or by
  one seq-value compare (:func:`~repro.plan.batchcompile.put_fast_compare`),
* the trigger timestamp, output list, and put buffer passed as plain
  arguments — the generated driver holds no per-firing state, so
  -noDelta cascades may re-enter it freely.

Everything outside ``ctx.*`` — closure variables, helper calls, user
lambdas — resolves against the rule body's own globals and closure
cells, snapshotted when the driver is compiled (kernel init).  Bodies
the compiler cannot prove equivalent *refuse* with a reason string and
keep the scalar path; refusal is per rule, never per firing.

Known, documented divergences from the scalar tier (both gated by the
registry so they cannot be observed): generated bodies emit no trace
events (``trace=True`` downgrades the whole run to scalar) and carry no
cost meter (the codegen executor forces metering off, like columnar).
``ctx.charge`` arguments that are statically side-effect-free are
dropped entirely; impure arguments are still evaluated for their
effects.
"""

from __future__ import annotations

import ast
import inspect
import linecache
import textwrap
import weakref
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import CausalityError, RuleError
from repro.core.ordering import compare_timestamps
from repro.core.query import Query, QueryKind
from repro.core.reducers import reduce_all
from repro.core.rules import Rule
from repro.core.tuples import JTuple, TableHandle
from repro.gamma.base import TableStore
from repro.plan.batchcompile import put_always_causal, put_fast_compare

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepKernel
    from repro.core.program import Program

__all__ = [
    "CodegenRefusal",
    "CompiledRuleBody",
    "compile_rule",
    "compiled_for",
    "bind_driver",
    "dump_generated_source",
    "all_generated_sources",
]

#: real attributes of JTuple (``schema``, ``values``, ``copy``...);
#: a field with one of these names never reaches ``__getattr__``, so
#: attribute rewriting must leave it alone
_JTUPLE_ATTRS = frozenset(dir(JTuple))

_QUERY_KINDS = {
    "get": QueryKind.POSITIVE,
    "exists": QueryKind.POSITIVE,
    "get_uniq": QueryKind.NEGATIVE,
    "absent": QueryKind.NEGATIVE,
    "count": QueryKind.AGGREGATE,
    "get_min": QueryKind.AGGREGATE,
    "reduce": QueryKind.AGGREGATE,
}

_RANGE_OPS = ("lt", "le", "gt", "ge")

#: generated source by rule body function, for post-mortem inspection
_SOURCE_BY_BODY: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class CodegenRefusal(Exception):
    """Raised (internally) when a rule body cannot be compiled; the
    reason string surfaces as a ``codegen: rule ... kept scalar: ...``
    stats note and the rule fires through the scalar path."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _strjoin(vals: tuple) -> str:
    return " ".join(str(a) for a in vals)


def _make_put_check(rule_name: str, db) -> Callable:
    """The full dynamic §4 put comparison, bound once per rule; the
    error message is byte-identical to :meth:`RuleContext.put`'s."""
    timestamp = db.timestamp

    def check(tup, trigger, trigger_ts):
        ts = timestamp(tup)
        if compare_timestamps(ts, trigger_ts) < 0:
            raise CausalityError(
                f"rule {rule_name} put {tup!r} (ts {ts}) into the "
                f"past of its trigger {trigger!r} (ts {trigger_ts})"
            )

    return check


# -- site descriptors --------------------------------------------------------


class _QuerySite:
    __slots__ = (
        "i",
        "flavor",
        "handle",
        "prefix_arity",
        "eq_names",
        "ranges",  # tuple[(field_name, form)]; form = "pair" | tuple[op,...]
        "kind",
        "key_args",  # arg indices in schema.key_indexes order, or None
        "min_pos",  # get_min: position of the `by` field
    )


class _PutSite:
    __slots__ = ("i", "schema", "mode", "pp", "tp", "inline")
    # mode: "always" (statically causal) | "ge" (seq compare short-circuit)
    #       | "dyn" (full check); schema None => untyped (isinstance guard)


class CompiledRuleBody:
    """One rule body compiled to a driver factory.

    ``make(bindings)`` returns ``driver(trigger, ts, puts, out)``;
    ``bindings`` is the dict :func:`bind_driver` assembles against one
    kernel (plan runs, stores, hit counters, the put check)."""

    __slots__ = (
        "rule_name",
        "source",
        "make",
        "query_sites",
        "put_sites",
        "has_neg_agg",
    )


# -- purity (for dropping ctx.charge argument evaluation) --------------------


def _is_pure(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return isinstance(node.ctx, ast.Load)
    if isinstance(node, ast.Attribute):
        return _is_pure(node.value)
    if isinstance(node, ast.Subscript):
        return _is_pure(node.value) and _is_pure(node.slice)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_is_pure(e) for e in node.elts)
    if isinstance(node, ast.BinOp):
        return _is_pure(node.left) and _is_pure(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_pure(node.operand)
    if isinstance(node, ast.BoolOp):
        return all(_is_pure(v) for v in node.values)
    if isinstance(node, ast.Compare):
        return _is_pure(node.left) and all(_is_pure(c) for c in node.comparators)
    if isinstance(node, ast.JoinedStr):
        return all(_is_pure(v) for v in node.values)
    if isinstance(node, ast.FormattedValue):
        return _is_pure(node.value)
    if isinstance(node, ast.Call):
        # len() on pure arguments: the dominant ctx.charge shape
        # (``ctx.charge(0.4 * len(neighbours), ...)``)
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and not node.keywords
            and len(node.args) == 1
            and _is_pure(node.args[0])
        )
    return False


# -- variable tracking prepass -----------------------------------------------


def _is_positive_get(node: ast.AST, ctx_name: str, env: dict):
    """The schema a ``ctx.get(Table, ...)`` call returns elements of,
    or None when ``node`` is not such a call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == ctx_name
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Name)
    ):
        h = env.get(node.args[0].id)
        if isinstance(h, TableHandle):
            return h.schema
    return None


def _collect_tracking(
    fn: ast.FunctionDef, ctx_name: str, trig_name: str, env: dict, trigger_schema
) -> dict:
    """Names provably bound to JTuples of one schema throughout the
    body: the trigger parameter (when never rebound) and for-loop
    targets iterating a ``ctx.get`` result (directly or via a variable
    that only ever holds such a result).  Conservative: any other
    binding of a name untracks it everywhere."""
    bindings: dict[str, list] = {}

    def other(target: ast.AST) -> None:
        for n in ast.walk(target):
            if isinstance(n, ast.Name):
                bindings.setdefault(n.id, []).append(("other",))

    class V(ast.NodeVisitor):
        def visit_Assign(self, node):
            self.generic_visit(node)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                sch = _is_positive_get(node.value, ctx_name, env)
                src = ("list", sch) if sch is not None else ("other",)
                bindings.setdefault(node.targets[0].id, []).append(src)
            else:
                for t in node.targets:
                    other(t)

        def visit_For(self, node):
            self.generic_visit(node)
            if isinstance(node.target, ast.Name):
                sch = _is_positive_get(node.iter, ctx_name, env)
                if sch is not None:
                    src = ("elem", sch)
                elif isinstance(node.iter, ast.Name):
                    src = ("elem_of", node.iter.id)
                else:
                    src = ("other",)
                bindings.setdefault(node.target.id, []).append(src)
            else:
                other(node.target)

        def visit_AugAssign(self, node):
            self.generic_visit(node)
            other(node.target)

        def visit_AnnAssign(self, node):
            self.generic_visit(node)
            other(node.target)

        def visit_NamedExpr(self, node):
            self.generic_visit(node)
            other(node.target)

        def visit_withitem(self, node):
            self.generic_visit(node)
            if node.optional_vars is not None:
                other(node.optional_vars)

        def visit_comprehension(self, node):
            self.generic_visit(node)
            other(node.target)

        def visit_ExceptHandler(self, node):
            self.generic_visit(node)
            if node.name:
                bindings.setdefault(node.name, []).append(("other",))

        def visit_Delete(self, node):
            self.generic_visit(node)
            for t in node.targets:
                other(t)

        def visit_Import(self, node):
            for a in node.names:
                bindings.setdefault(
                    (a.asname or a.name).split(".")[0], []
                ).append(("other",))

        visit_ImportFrom = visit_Import

        def visit_Lambda(self, node):
            self.generic_visit(node)
            args = node.args
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
            ) + ([args.vararg] if args.vararg else []) + (
                [args.kwarg] if args.kwarg else []
            ):
                bindings.setdefault(a.arg, []).append(("other",))

        def visit_FunctionDef(self, node):
            self.generic_visit(node)
            bindings.setdefault(node.name, []).append(("other",))
            self.visit_Lambda(node)  # shadow its params too

        visit_AsyncFunctionDef = visit_FunctionDef

    for stmt in fn.body:
        V().visit(stmt)

    list_schema: dict[str, Any] = {}
    for n, srcs in bindings.items():
        if srcs and all(s[0] == "list" for s in srcs):
            schemas = {id(s[1]) for s in srcs}
            if len(schemas) == 1:
                list_schema[n] = srcs[0][1]
    elem: dict[str, Any] = {}
    for n, srcs in bindings.items():
        sch = None
        ok = bool(srcs)
        for s in srcs:
            if s[0] == "elem":
                t = s[1]
            elif s[0] == "elem_of":
                t = list_schema.get(s[1])
            else:
                t = None
            if t is None or (sch is not None and t is not sch):
                ok = False
                break
            sch = t
        if ok:
            elem[n] = sch
    if trig_name not in bindings:
        elem[trig_name] = trigger_schema
    return elem


# -- the body transformer ----------------------------------------------------


class _BodyTransformer(ast.NodeTransformer):
    def __init__(self, rule, program, env, ctx_name, trig_name, elem):
        self.rule = rule
        self.program = program
        self.env = env
        self.ctx_name = ctx_name
        self.trig_name = trig_name
        self.elem = elem  # name -> TableSchema
        self.qsites: list[_QuerySite] = []
        self.psites: list[_PutSite] = []
        self.uses_tv = False
        self.uses: set[str] = set()  # helper bindings the module needs

    # -- helpers -------------------------------------------------------------

    def _refuse(self, reason: str):
        raise CodegenRefusal(reason)

    def _handle_of(self, node: ast.AST) -> TableHandle:
        if isinstance(node, ast.Name):
            h = self.env.get(node.id)
            if isinstance(h, TableHandle):
                return h
        self._refuse("query table argument is not a statically-known table handle")

    def _is_ctx_call(self, node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self.ctx_name
        ):
            return node.func.attr
        return None

    # -- names / attributes --------------------------------------------------

    def visit_Name(self, node):
        if node.id == self.ctx_name:
            self._refuse(
                "the rule context escapes the body (used outside a "
                "direct ctx.<method>(...) call)"
            )
        if node.id.startswith("_cg"):
            self._refuse("identifiers starting with '_cg' collide with generated code")
        return node

    def visit_Attribute(self, node):
        self.generic_visit(node)
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.elem
            and node.attr not in _JTUPLE_ATTRS
        ):
            schema = self.elem[node.value.id]
            pos = schema.index.get(node.attr)
            if pos is not None:
                if node.value.id == self.trig_name:
                    self.uses_tv = True
                    base = ast.Name(id="_cg_tv", ctx=ast.Load())
                else:
                    base = ast.Attribute(
                        value=node.value, attr="values", ctx=ast.Load()
                    )
                return ast.copy_location(
                    ast.Subscript(
                        value=base,
                        slice=ast.Constant(value=pos),
                        ctx=ast.Load(),
                    ),
                    node,
                )
        return node

    # -- constructs that refuse ----------------------------------------------

    def visit_Global(self, node):
        self._refuse("global declarations")

    def visit_Nonlocal(self, node):
        self._refuse("nonlocal declarations")

    def visit_Await(self, node):
        self._refuse("async constructs")

    visit_AsyncFor = visit_AsyncWith = visit_AsyncFunctionDef = visit_Await

    def visit_Yield(self, node):
        self._refuse("generator constructs")

    visit_YieldFrom = visit_Yield

    def _uses_ctx(self, node) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == self.ctx_name
            for n in ast.walk(node)
        )

    def visit_FunctionDef(self, node):
        if self._uses_ctx(node):
            self._refuse(
                f"nested function {node.name!r} uses the rule context"
            )
        return node  # opaque helper: leave untouched

    def visit_Lambda(self, node):
        if self._uses_ctx(node):
            self._refuse("a lambda uses the rule context")
        return self.generic_visit(node)

    # -- statements ----------------------------------------------------------

    def visit_Expr(self, node):
        m = self._is_ctx_call(node.value)
        if m == "charge":
            call = node.value
            if any(isinstance(a, ast.Starred) for a in call.args) or any(
                k.arg is None for k in call.keywords
            ):
                self._refuse("ctx.charge(...) with starred arguments")
            args = [a for a in call.args] + [k.value for k in call.keywords]
            if all(_is_pure(a) for a in args):
                # metering is off under codegen; pure cost expressions
                # need not be evaluated at all
                return ast.copy_location(ast.Pass(), node)
            vals = [self.visit(a) for a in args]
            keep = vals[0] if len(vals) == 1 else ast.Tuple(
                elts=vals, ctx=ast.Load()
            )
            return ast.copy_location(ast.Expr(value=keep), node)
        if m == "io_allowed":
            if not self.rule.unsafe:
                self._refuse(
                    "ctx.io_allowed() in a rule not declared unsafe"
                )
            return ast.copy_location(ast.Pass(), node)
        return self.generic_visit(node)

    # -- ctx.* calls ---------------------------------------------------------

    def visit_Call(self, node):
        m = self._is_ctx_call(node)
        if m is None:
            return self.generic_visit(node)
        if m in _QUERY_KINDS:
            return self._query_site(m, node)
        if m == "put":
            return self._put_site(node)
        if m == "println":
            args = [self.visit(a) for a in node.args]
            if any(isinstance(a, ast.Starred) for a in node.args) or node.keywords:
                self._refuse("ctx.println(...) with starred arguments")
            if not args:
                payload = ast.Constant(value="")
            elif len(args) == 1:
                self.uses.add("str")
                payload = ast.Call(
                    func=ast.Name(id="_cg_str", ctx=ast.Load()),
                    args=args,
                    keywords=[],
                )
            else:
                self.uses.add("strjoin")
                payload = ast.Call(
                    func=ast.Name(id="_cg_strjoin", ctx=ast.Load()),
                    args=[ast.Tuple(elts=args, ctx=ast.Load())],
                    keywords=[],
                )
            return ast.copy_location(
                ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id="_cg_out", ctx=ast.Load()),
                        attr="append",
                        ctx=ast.Load(),
                    ),
                    args=[payload],
                    keywords=[],
                ),
                node,
            )
        if m == "io_allowed":
            if not self.rule.unsafe:
                self._refuse("ctx.io_allowed() in a rule not declared unsafe")
            return ast.copy_location(ast.Constant(value=None), node)
        if m == "charge":
            self._refuse("ctx.charge(...) used outside statement position")
        self._refuse(f"unsupported context method ctx.{m}(...)")

    def _query_site(self, flavor: str, node: ast.Call) -> ast.Call:
        if any(isinstance(a, ast.Starred) for a in node.args):
            self._refuse("starred query arguments")
        handle = self._handle_of(node.args[0] if node.args else None)
        schema = handle.schema
        prefix = [self.visit(a) for a in node.args[1:]]
        eq: list[tuple[str, ast.AST]] = []
        ranges: list[tuple[str, Any, list]] = []  # (field, form, value exprs)
        min_by = None
        reduce_args: list[ast.AST] = []
        for kw in node.keywords:
            if kw.arg is None:
                self._refuse("**kwargs in a query call")
            if kw.arg == "where":
                if not (isinstance(kw.value, ast.Constant) and kw.value.value is None):
                    self._refuse("where= lambdas are opaque to generated code")
                continue
            if kw.arg == "ranges":
                ranges = self._parse_ranges(kw.value, schema)
                continue
            if flavor == "get_min" and kw.arg == "by":
                if not (isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str)):
                    self._refuse("get_min by= must be a literal field name")
                min_by = kw.value.value
                continue
            if flavor == "reduce" and kw.arg in ("reducer", "value"):
                continue  # collected below, in signature order
            schema.field_position(kw.arg)  # refuse unknown fields here
            eq.append((kw.arg, self.visit(kw.value)))
        if flavor == "reduce":
            kwmap = {k.arg: k.value for k in node.keywords}
            if "reducer" not in kwmap or "value" not in kwmap:
                self._refuse("ctx.reduce(...) without reducer=/value=")
            reduce_args = [self.visit(kwmap["reducer"]), self.visit(kwmap["value"])]
        if flavor == "get_min":
            if min_by is None:
                self._refuse("ctx.get_min(...) without by=")
            min_pos = schema.field_position(min_by)
        else:
            min_pos = None

        positions = list(range(len(prefix))) + [
            schema.field_position(n) for n, _ in eq
        ]
        if len(set(positions)) != len(positions):
            self._refuse("a query field is constrained twice")

        s = _QuerySite()
        s.i = len(self.qsites)
        s.flavor = flavor
        s.handle = handle
        s.prefix_arity = len(prefix)
        s.eq_names = tuple(n for n, _ in eq)
        s.ranges = tuple((f, form) for f, form, _ in ranges)
        s.kind = _QUERY_KINDS[flavor]
        s.min_pos = min_pos
        s.key_args = None
        if (
            flavor in ("get_uniq", "absent")
            and not ranges
            and schema.has_key
            and sorted(positions) == sorted(schema.key_indexes)
        ):
            pos2arg = {p: j for j, p in enumerate(positions)}
            s.key_args = tuple(pos2arg[p] for p in schema.key_indexes)
        self.qsites.append(s)

        call_args = [e for _, e in [(None, p) for p in prefix]] + [e for _, e in eq]
        for _f, _form, exprs in ranges:
            call_args.extend(exprs)
        call_args.extend(reduce_args)
        return ast.copy_location(
            ast.Call(
                func=ast.Name(id=f"_cg_s{s.i}", ctx=ast.Load()),
                args=call_args,
                keywords=[],
            ),
            node,
        )

    def _parse_ranges(self, node: ast.AST, schema) -> list:
        if not isinstance(node, ast.Dict):
            self._refuse("ranges= must be a literal dict of literal specs")
        out = []
        for k, v in zip(node.keys, node.values):
            if not (isinstance(k, ast.Constant) and isinstance(k.value, str)):
                self._refuse("ranges= must be a literal dict of literal specs")
            field = k.value
            schema.field_position(field)  # refuse unknown fields here
            if isinstance(v, ast.Dict):
                ops = []
                exprs = []
                for ok, ov in zip(v.keys, v.values):
                    if not (
                        isinstance(ok, ast.Constant)
                        and ok.value in _RANGE_OPS
                    ):
                        self._refuse(
                            "ranges= must be a literal dict of literal specs"
                        )
                    ops.append(ok.value)
                    exprs.append(self.visit(ov))
                out.append((field, tuple(ops), exprs))
            elif isinstance(v, ast.Tuple) and len(v.elts) == 2:
                out.append((field, "pair", [self.visit(e) for e in v.elts]))
            else:
                self._refuse("ranges= must be a literal dict of literal specs")
        return out

    def _put_site(self, node: ast.Call) -> ast.Call:
        if len(node.args) != 1 or node.keywords or isinstance(node.args[0], ast.Starred):
            self._refuse("ctx.put(...) must take exactly one tuple argument")
        arg = node.args[0]
        handle = None
        ctor = None
        if isinstance(arg, ast.Call) and not any(
            isinstance(a, ast.Starred) for a in arg.args
        ):
            f = arg.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "new"
                and isinstance(f.value, ast.Name)
            ):
                h = self.env.get(f.value.id)
                if isinstance(h, TableHandle):
                    handle, ctor = h, arg
            elif isinstance(f, ast.Name):
                h = self.env.get(f.id)
                if isinstance(h, TableHandle):
                    handle, ctor = h, arg

        p = _PutSite()
        p.i = len(self.psites)
        p.pp = p.tp = -1
        trig_schema = self.rule.trigger.schema
        decls = self.program.decls
        if handle is not None:
            p.schema = handle.schema
            if put_always_causal(p.schema, trig_schema, decls):
                p.mode = "always"
            else:
                fc = put_fast_compare(p.schema, trig_schema)
                if fc is not None:
                    p.mode = "ge"
                    p.pp, p.tp = fc
                else:
                    p.mode = "dyn"
            p.inline = (
                len(ctor.args) == len(p.schema.fields) and not ctor.keywords
            )
        else:
            p.schema = None
            p.mode = "dyn"
            p.inline = False
        self.psites.append(p)

        if p.inline:
            values = ast.Tuple(
                elts=[self.visit(a) for a in ctor.args], ctx=ast.Load()
            )
            payload = values
        else:
            payload = self.visit(arg)
        return ast.copy_location(
            ast.Call(
                func=ast.Name(id=f"_cg_p{p.i}", ctx=ast.Load()),
                args=[
                    ast.Name(id="_cg_puts", ctx=ast.Load()),
                    ast.Name(id="_cg_trig", ctx=ast.Load()),
                    ast.Name(id="_cg_ts", ctx=ast.Load()),
                    payload,
                ],
                keywords=[],
            ),
            node,
        )


# -- module assembly ---------------------------------------------------------


def _quad_src(form, syms: list[str]) -> str:
    """Source text of the normalised ``(lo, hi, lo_inc, hi_inc)``
    quadruple — :func:`repro.core.query._normalise_range` replayed at
    compile time over symbolic values."""
    if form == "pair":
        return f"({syms[0]}, {syms[1]}, True, True)"
    lo, hi = "None", "None"
    lo_inc, hi_inc = "True", "True"
    for op, sym in zip(form, syms):
        if op == "gt":
            lo, lo_inc = sym, "False"
        elif op == "ge":
            lo, lo_inc = sym, "True"
        elif op == "lt":
            hi, hi_inc = sym, "False"
        else:  # "le"
            hi, hi_inc = sym, "True"
    return f"({lo}, {hi}, {lo_inc}, {hi_inc})"


def _emit_query_site(s: _QuerySite, a) -> None:
    i = s.i
    schema = s.handle.schema
    n_eq = s.prefix_arity + len(s.eq_names)
    eq_syms = [f"_cg_a{j}" for j in range(n_eq)]
    rng_syms: list[str] = []
    rng_parts: list[str] = []
    j = 0
    for field, form in s.ranges:
        n = 2 if form == "pair" else len(form)
        syms = [f"_cg_r{j + k}" for k in range(n)]
        j += n
        rng_syms.extend(syms)
        rng_parts.append(
            f"{schema.field_position(field)}: {_quad_src(form, syms)}"
        )
    positions = list(range(s.prefix_arity)) + [
        schema.field_position(n) for n in s.eq_names
    ]
    eq_src = "{" + ", ".join(f"{p}: {v}" for p, v in zip(positions, eq_syms)) + "}"
    rng_src = "{" + ", ".join(rng_parts) + "}"
    params = eq_syms + rng_syms
    if s.flavor == "reduce":
        params += ["_cg_red", "_cg_val"]
    sig = ", ".join(params)

    a(f"    _s{i}_run = _cg['s{i}_run']")
    a(f"    _s{i}_hits = _cg['s{i}_hits']")
    a(f"    _s{i}_schema = _cg['s{i}_schema']")
    a(f"    _s{i}_kind = _cg['s{i}_kind']")

    def planned_body(emit, indent):
        p = " " * indent
        emit(f"{p}_s{i}_hits[0] += 1")
        emit(
            f"{p}_cg_r = _s{i}_run(_cg_Query(_s{i}_schema, {eq_src}, "
            f"{rng_src}, None, _s{i}_kind))"
        )
        emit(f"{p}_cg_n = _cg_len(_cg_r)")
        emit(f"{p}_s{i}_hits[1] += _cg_n")
        if s.flavor == "get":
            emit(f"{p}return _cg_r")
        elif s.flavor == "exists":
            emit(f"{p}return _cg_bool(_cg_r)")
        elif s.flavor == "absent":
            emit(f"{p}return not _cg_r")
        elif s.flavor == "count":
            emit(f"{p}return _cg_n")
        elif s.flavor == "get_uniq":
            emit(f"{p}if _cg_n > 1:")
            emit(
                f"{p}    raise _cg_RuleError('get uniq? {schema.name} "
                "matched %d tuples' % _cg_n)"
            )
            emit(f"{p}return _cg_r[0] if _cg_r else None")
        elif s.flavor == "get_min":
            emit(f"{p}if not _cg_r:")
            emit(f"{p}    return None")
            emit(f"{p}return _cg_min(_cg_r, key=_cg_s{i}_key)")
        elif s.flavor == "reduce":
            emit(
                f"{p}return _cg_reduce_all(_cg_red, "
                "(_cg_val(_cg_t) for _cg_t in _cg_r))"
            )

    if s.flavor == "get_min":
        a(f"    def _cg_s{i}_key(_cg_t):")
        a(f"        return _cg_t.values[{s.min_pos}]")

    if s.key_args is not None:
        # the binder supplies the store's lookup_key when it overrides
        # the base linear scan; otherwise the planned path runs
        key_src = ", ".join(f"_cg_a{k}" for k in s.key_args)
        if len(s.key_args) == 1:
            key_src += ","
        a(f"    _s{i}_lookup = _cg['s{i}_lookup']")
        a(f"    if _s{i}_lookup is not None:")
        a(f"        def _cg_s{i}({sig}):")
        a(f"            _s{i}_hits[0] += 1")
        a(f"            _cg_t = _s{i}_lookup(({key_src}))")
        a("            if _cg_t is None:")
        a(f"                return {'True' if s.flavor == 'absent' else 'None'}")
        a(f"            _s{i}_hits[1] += 1")
        a(f"            return {'False' if s.flavor == 'absent' else '_cg_t'}")
        a("    else:")
        a(f"        def _cg_s{i}({sig}):")
        planned_body(a, 12)
    else:
        a(f"    def _cg_s{i}({sig}):")
        planned_body(a, 8)


def _emit_put_site(p: _PutSite, a) -> None:
    i = p.i
    if p.schema is not None:
        a(f"    _p{i}_schema = _cg['p{i}_schema']")
        if p.inline:
            a(f"    _p{i}_types = _cg['p{i}_types']")

    def mk(value_lines, check_lines):
        arg = "_cg_v" if p.inline else "_cg_t"
        a(f"    def _cg_p{i}(_puts, _trig, _ts, {arg}):")
        for ln in value_lines + check_lines:
            a("        " + ln)
        a("        _puts.append(_cg_t)")

    if p.inline:
        build = [
            f"_p{i}_types(_cg_v)",
            f"_cg_t = _cg_JTuple(_p{i}_schema, _cg_v)",
        ]
    elif p.schema is not None:
        build = []
    else:
        build = [
            "if not _cg_isinstance(_cg_t, _cg_JTuple):",
            "    raise _cg_RuleError('put expects a tuple, got %s'"
            " % _cg_type(_cg_t).__name__)",
        ]

    if p.mode == "always":
        # statically causal: the §4 comparison is decided by the orderby
        # structure alone, with or without a checker
        mk(build, [])
        return
    if p.mode == "ge":
        # skip the §4 comparison iff the put's seq value strictly
        # exceeds the trigger's (put_fast_compare contract)
        check = [
            f"if _cg_pchk is not None and not _cg_t.values[{p.pp}]"
            f" > _trig.values[{p.tp}]:",
            "    _cg_pchk(_cg_t, _trig, _ts)",
        ]
        if p.inline:
            check[0] = (
                f"if _cg_pchk is not None and not _cg_v[{p.pp}]"
                f" > _trig.values[{p.tp}]:"
            )
        mk(build, check)
        return
    mk(build, ["if _cg_pchk is not None:", "    _cg_pchk(_cg_t, _trig, _ts)"])


def _assemble(rule, trig_name, body_stmts, tr: _BodyTransformer) -> str:
    lines: list[str] = []
    a = lines.append
    a(f"# generated rule driver for {rule.name!r}")
    a("def _cg_make(_cg):")
    a("    _cg_Query = _cg['Query']")
    a("    _cg_JTuple = _cg['JTuple']")
    a("    _cg_RuleError = _cg['RuleError']")
    a("    _cg_len = _cg['len']")
    a("    _cg_pchk = _cg['put_check']")
    if any(s.flavor == "exists" for s in tr.qsites):
        a("    _cg_bool = _cg['bool']")
    if any(s.flavor == "get_min" for s in tr.qsites):
        a("    _cg_min = _cg['min']")
    if any(s.flavor == "reduce" for s in tr.qsites):
        a("    _cg_reduce_all = _cg['reduce_all']")
    if any(p.schema is None for p in tr.psites):
        a("    _cg_isinstance = _cg['isinstance']")
        a("    _cg_type = _cg['type']")
    if "str" in tr.uses:
        a("    _cg_str = _cg['str']")
    if "strjoin" in tr.uses:
        a("    _cg_strjoin = _cg['strjoin']")
    for s in tr.qsites:
        _emit_query_site(s, a)
    for p in tr.psites:
        _emit_put_site(p, a)
    a(f"    def _cg_driver({trig_name}, _cg_ts, _cg_puts, _cg_out):")
    if tr.psites:
        a(f"        _cg_trig = {trig_name}")
    if tr.uses_tv:
        a(f"        _cg_tv = {trig_name}.values")
    body_src = "\n".join(ast.unparse(stmt) for stmt in body_stmts)
    for ln in body_src.splitlines():
        a("        " + ln)
    a("    return _cg_driver")
    return "\n".join(lines) + "\n"


# -- compile -----------------------------------------------------------------


def _compile(rule: Rule, program: "Program") -> CompiledRuleBody:
    body = rule.body
    try:
        src = textwrap.dedent(inspect.getsource(body))
    except (OSError, TypeError):
        raise CodegenRefusal("rule body source is unavailable")
    try:
        tree = ast.parse(src)
    except SyntaxError:
        raise CodegenRefusal("rule body source does not parse standalone")
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise CodegenRefusal("rule body is not a plain function")
    fn = tree.body[0]
    args = fn.args
    if (
        args.vararg
        or args.kwarg
        or args.kwonlyargs
        or args.defaults
        or args.kw_defaults
        or len(args.posonlyargs) + len(args.args) != 2
    ):
        raise CodegenRefusal("rule body signature is not (ctx, trigger)")
    params = [a.arg for a in args.posonlyargs + args.args]
    ctx_name, trig_name = params
    if ctx_name.startswith("_cg") or trig_name.startswith("_cg"):
        raise CodegenRefusal(
            "identifiers starting with '_cg' collide with generated code"
        )

    env = dict(body.__globals__)
    if body.__closure__:
        for name, cell in zip(body.__code__.co_freevars, body.__closure__):
            try:
                env[name] = cell.cell_contents
            except ValueError:
                raise CodegenRefusal(f"closure cell {name!r} is empty")

    elem = _collect_tracking(fn, ctx_name, trig_name, env, rule.trigger.schema)
    tr = _BodyTransformer(rule, program, env, ctx_name, trig_name, elem)
    body_stmts = [tr.visit(stmt) for stmt in fn.body]
    for stmt in body_stmts:
        ast.fix_missing_locations(stmt)

    source = _assemble(rule, trig_name, body_stmts, tr)
    filename = f"<codegen:{rule.name}:{id(body):x}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(True),
        filename,
    )
    ns = env.copy()
    code = compile(source, filename, "exec")
    exec(code, ns)

    compiled = CompiledRuleBody()
    compiled.rule_name = rule.name
    compiled.source = source
    compiled.make = ns["_cg_make"]
    compiled.query_sites = tuple(tr.qsites)
    compiled.put_sites = tuple(tr.psites)
    compiled.has_neg_agg = any(
        s.kind is not QueryKind.POSITIVE for s in tr.qsites
    )
    _SOURCE_BY_BODY[body] = source
    return compiled


def compile_rule(rule: Rule, program: "Program") -> CompiledRuleBody:
    """Compile one rule body, raising :class:`CodegenRefusal` (with a
    human-readable reason) when the body cannot be proven equivalent."""
    try:
        return _compile(rule, program)
    except CodegenRefusal:
        raise
    except Exception as e:  # defensive: refusal, never a crash
        raise CodegenRefusal(f"compilation error: {e!r}")


def compiled_for(program: "Program", rule: Rule):
    """``(compiled, None)`` or ``(None, reason)`` for one rule, cached
    on the program — source analysis runs once however many kernels the
    program freezes into."""
    cache = getattr(program, "_codegen_cache", None)
    if cache is None:
        cache = program._codegen_cache = {}
    ent = cache.get(id(rule))
    if ent is None:
        try:
            ent = (compile_rule(rule, program), None)
        except CodegenRefusal as r:
            ent = (None, r.reason)
        cache[id(rule)] = ent
    return ent


# -- bind --------------------------------------------------------------------


def bind_driver(
    compiled: CompiledRuleBody,
    kernel: "StepKernel",
    rule: Rule,
    site_hits_out: list,
) -> Callable:
    """Resolve one compiled body against a kernel: register every query
    site's shape in the shared plan cache (the same plans the scalar
    path would hit), wire the per-site ``[n_calls, n_results]`` counters
    (appended to ``site_hits_out`` for the executor's flush), and build
    the driver."""
    cg: dict[str, Any] = {
        "Query": Query,
        "JTuple": JTuple,
        "RuleError": RuleError,
        "len": len,
        "str": str,
        "min": min,
        "bool": bool,
        "isinstance": isinstance,
        "type": type,
        "strjoin": _strjoin,
        "reduce_all": reduce_all,
        "put_check": (
            None
            if kernel._check_mode == "off"
            else _make_put_check(rule.name, kernel.db)
        ),
    }
    plans = kernel._plans
    for s in compiled.query_sites:
        # shape registration with placeholder values: plan compilation
        # depends only on the constrained positions (cf. PlanCache._warm)
        dummy_ranges = {
            f: ((None, None) if form == "pair" else {op: None for op in form})
            for f, form in s.ranges
        } or None
        plan, _probe = plans.lookup(
            s.handle,
            (None,) * s.prefix_arity,
            None,
            dummy_ranges,
            {n: None for n in s.eq_names},
            s.kind,
        )
        hits = [0, 0]
        cg[f"s{s.i}_run"] = plan.prepared.run
        cg[f"s{s.i}_hits"] = hits
        cg[f"s{s.i}_schema"] = s.handle.schema
        cg[f"s{s.i}_kind"] = s.kind
        site_hits_out.append((plan, rule.name, hits))
        if s.key_args is not None:
            store = kernel.db.store(s.handle.schema.name)
            cg[f"s{s.i}_lookup"] = (
                store.lookup_key
                if type(store).lookup_key is not TableStore.lookup_key
                else None
            )
    for p in compiled.put_sites:
        if p.schema is not None:
            cg[f"p{p.i}_schema"] = p.schema
            if p.inline:
                cg[f"p{p.i}_types"] = p.schema.check_types
    return compiled.make(cg)


# -- debugging ---------------------------------------------------------------


def dump_generated_source(rule) -> str | None:
    """The generated driver module for ``rule`` (a :class:`Rule` or its
    body function), or ``None`` when the rule refused codegen or was
    never compiled.  Surfaced through the run report's stats notes."""
    body = rule.body if isinstance(rule, Rule) else rule
    try:
        return _SOURCE_BY_BODY.get(body)
    except TypeError:  # unhashable/unweakrefable body
        return None


def all_generated_sources() -> dict[str, str]:
    """Every generated driver module still alive, keyed by the body
    function's qualified name.  The codegen CI job dumps this as a
    failure artifact so a differential break ships the exact code that
    diverged."""
    return {
        f"{body.__module__}.{body.__qualname__}": src
        for body, src in _SOURCE_BY_BODY.items()
    }
