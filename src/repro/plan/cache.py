"""The per-engine plan cache.

This is the paper's "the compiler knows the query shapes" advantage
(§5) recovered at runtime: the generated Java rule methods embed their
queries' field positions and data-structure access paths at compile
time, while our interpreted ``RuleContext`` re-derived them on every
firing.  The :class:`PlanCache` closes that gap:

* each distinct call shape — ``(schema, kind, #positional, named eq
  fields, range forms)`` — compiles once into a
  :class:`~repro.plan.compile.CompiledQueryPlan`;
* prepared store selects are memoised separately by *constraint
  positions*, so e.g. a POSITIVE ``get`` and a NEGATIVE ``absent`` on
  the same fields share one resolved access path;
* at construction (i.e. at ``Program.freeze()`` time, when the engine
  builds its database) the cache pre-resolves every query shape the
  program's rule metadata declares — the same
  :func:`~repro.gamma.indexplan.collect_access_patterns` walk the
  static index planner uses — so hot rules never pay even a first-call
  compile inside the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.core.query import Query, QueryKind, build_query
from repro.gamma.base import PreparedSelect
from repro.plan.compile import CompiledQueryPlan, range_form

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.database import Database
    from repro.core.program import Program
    from repro.core.tuples import TableHandle

__all__ = ["PlanCache"]


class PlanCache:
    """Compiled query plans for one engine run (one database)."""

    __slots__ = ("_db", "_decls", "_plans", "_prepared")

    def __init__(self, db: "Database", program: "Program"):
        self._db = db
        self._decls = program.decls
        self._plans: dict[tuple, CompiledQueryPlan] = {}
        # (schema, frozenset eq positions, frozenset range positions)
        # -> PreparedSelect; shared across kinds and call styles
        self._prepared: dict[tuple, PreparedSelect] = {}
        for pattern in program.query_shapes():
            self._warm(pattern)

    def __len__(self) -> int:
        return len(self._plans)

    def plans(self):
        """All compiled plans, in first-compilation order."""
        return self._plans.values()

    # -- freeze-time warming ----------------------------------------------

    def _warm(self, pattern) -> None:
        """Pre-resolve one static access pattern's store select.  Values
        are unknown statically; every decision a ``prepare`` makes (key
        coverage, index choice) depends only on the constrained
        *positions*, so ``None`` placeholders suffice."""
        schema = self._db._schemas.get(pattern.table)
        if schema is None:  # pragma: no cover - patterns name own tables
            return
        try:
            eq = {schema.field_position(n): None for n in pattern.eq_fields}
            rng = {
                schema.field_position(n): (None, None, True, True)
                for n in pattern.range_fields
            }
        except Exception:  # stale metadata must not break the run
            return
        probe = Query(schema, eq, rng, None, QueryKind.POSITIVE)
        pkey = (schema, frozenset(eq), frozenset(rng))
        if pkey not in self._prepared:
            self._prepared[pkey] = self._db.store(schema.name).prepare(probe)

    # -- the per-call entry point -----------------------------------------

    def lookup(
        self,
        table: "TableHandle",
        prefix: tuple,
        where,
        ranges: Mapping[str, Any] | None,
        eq: Mapping[str, Any],
        kind: QueryKind,
    ) -> tuple[CompiledQueryPlan, Query]:
        """The plan for this call shape (compiling on first sight) and
        the concrete query for this call's values."""
        schema = table.schema
        if ranges:
            rsig = tuple((n, range_form(s)) for n, s in ranges.items())
        else:
            rsig = ()
        key = (schema, kind, len(prefix), tuple(eq) if eq else (), rsig)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._compile(table, prefix, where, ranges, eq, kind)
            self._plans[key] = plan
        return plan, plan.build(prefix, eq, ranges, where)

    def _compile(
        self, table, prefix, where, ranges, eq, kind
    ) -> CompiledQueryPlan:
        # the generic builder runs once so its validation (unknown
        # fields, twice-constrained, eq+range conflicts) still applies
        probe = build_query(table, *prefix, where=where, ranges=ranges, kind=kind, **eq)
        schema = probe.schema
        pkey = (schema, frozenset(probe.eq), frozenset(probe.ranges))
        prepared = self._prepared.get(pkey)
        if prepared is None:
            prepared = self._db.store(schema.name).prepare(probe)
            self._prepared[pkey] = prepared
        return CompiledQueryPlan(probe, ranges, self._decls, prepared)
