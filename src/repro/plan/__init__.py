"""Compiled rule plans: the zero-overhead hot path.

The paper's generated Java embeds every query's field positions and
access paths at compile time (§5); this package recovers that advantage
for the interpreted engine.  See :mod:`repro.plan.cache` for the query
plan cache, :mod:`repro.plan.compile` for the per-shape compiler, and
:mod:`repro.plan.timestamps` for compiled orderby evaluation.  The
``ExecOptions(plan_cache=...)`` flag toggles the whole layer; results
are identical either way (asserted by the fast-path differential
suite).
"""

from repro.plan.cache import PlanCache
from repro.plan.compile import CompiledBound, CompiledQueryPlan
from repro.plan.timestamps import CompiledTimestamper

__all__ = [
    "PlanCache",
    "CompiledQueryPlan",
    "CompiledBound",
    "CompiledTimestamper",
]
