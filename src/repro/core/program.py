"""The ``Program``: tables + rules + order declarations + options.

A JStar program (§3) is declared in the embedded DSL::

    p = Program("pvwatts")
    PvWatts  = p.table("PvWatts", "int year, int month, int day, str hour, int power",
                       orderby=("PvWatts",))
    SumMonth = p.table("SumMonth", "int year, int month", orderby=("SumMonth",))
    p.order("Req", "PvWatts", "SumMonth")

    @p.foreach(PvWatts)
    def make_summonth(ctx, pv):
        ctx.put(SumMonth.new(pv.year, pv.month))

    p.put(PvWattsRequest.new("large1000.csv"))
    result = p.run(ExecOptions(strategy="forkjoin", threads=8))

Everything architecture-dependent — strategy, thread count, noDelta /
noGamma table sets, Gamma store overrides — lives in
:class:`ExecOptions`, *outside* the program, which is the paper's
central workflow claim (§2: hints "are separate from the program").
Running the same program under different options must produce the same
output; our property tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from repro.core.errors import EngineError, SchemaError, UnknownTableError
from repro.core.ordering import Lit, OrderDecls
from repro.core.rules import Rule, RuleBody
from repro.core.schema import Field, TableSchema
from repro.core.tuples import JTuple, TableHandle
from repro.gamma.base import StoreFactory
from repro.simcore.contention import CalibratedCosts
from repro.simcore.gc import GcModel

__all__ = ["RetentionHint", "ExecOptions", "Program"]


def _refuse(reason: str, **knobs: Any) -> None:
    """Raise the canonical :class:`ExecOptions` refusal.

    Every refusal message has one format::

        invalid ExecOptions: knob=value[, knob=value...] -- reason

    naming the *values* of every offending knob, so a refusal seen in a
    log (or relayed through the session service as a structured error)
    identifies the exact configuration that was rejected without a
    reproduction.  The error-message test in
    ``tests/core/test_exec_options_refusals.py`` pins this format over
    the full refusal matrix.
    """
    shown = ", ".join(f"{name}={value!r}" for name, value in knobs.items())
    raise EngineError(f"invalid ExecOptions: {shown} -- {reason}")


@dataclass(frozen=True)
class RetentionHint:
    """A manual tuple-lifetime hint (§5 step 4).

    "Currently, this program analysis is not automated, so we simply
    retain all tuples, or use manual lifetime hints from the user to
    determine when tuples can be discarded."

    Keep only tuples whose integer ``field`` is within ``keep_last`` of
    the largest value seen so far; older generations are discarded from
    Gamma after each step (and garbage-collected, relieving the GC
    pressure model).  The Median program's ``double[2][N]`` store is
    the hand-specialised version of ``RetentionHint("iter", 2)``.
    """

    field: str
    keep_last: int = 2

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise EngineError("retention must keep at least one generation")


@dataclass(frozen=True)
class ExecOptions:
    """Architecture-dependent execution choices (the paper's compiler
    hints + runtime flags, §2 stages 3-4).

    ``strategy`` is ``"sequential"`` (the ``-sequential`` flag),
    ``"forkjoin"`` (simulated all-minimums parallelism; ``threads`` is
    the pool size, the paper's ``--threads=N``), ``"threads"`` (real
    CPython threads, functional validation only), ``"chaos"`` (seeded
    adversarial scheduling, see :mod:`repro.exec.chaos`) or
    ``"processes"`` (real multiprocess shard execution, one OS worker
    process per node — ``threads`` is the worker count; see
    :mod:`repro.dist.procrun`).
    """

    strategy: str = "sequential"
    threads: int = 4
    #: tables whose tuples bypass the Delta tree (-noDelta T, §5.1)
    no_delta: frozenset[str] = frozenset()
    #: tables whose tuples are never stored in Gamma (-noGamma T, §5.1)
    no_gamma: frozenset[str] = frozenset()
    #: dynamic causality enforcement: "off" | "warn" | "strict"
    causality_check: str = "warn"
    #: task granularity: "tuple" (paper's default: "we create only one
    #: task for that tuple") or "rule" (§5.2's first extension: one task
    #: per triggered rule)
    task_granularity: str = "tuple"
    #: per-table lifetime hints (§5 step 4: manual hints determine when
    #: tuples can be discarded from Gamma); table name -> RetentionHint
    retention: Mapping[str, "RetentionHint"] = field(default_factory=dict)
    #: per-table Gamma store replacements (§1.4 late commitment)
    store_overrides: Mapping[str, StoreFactory] = field(default_factory=dict)
    #: secondary indexing: "off" (no secondary indexes), "auto" (plan
    #: from the rules' access patterns, see repro.gamma.indexplan) or
    #: "explicit" (use only the ``indexes`` mapping below)
    index_mode: str = "off"
    #: per-table index specs (table name -> tuple of IndexSpec); merged
    #: on top of the planner's output in "auto" mode, used alone in
    #: "explicit" mode, ignored when indexing is off
    indexes: Mapping[str, tuple] = field(default_factory=dict)
    #: virtual-machine calibration
    calib: CalibratedCosts = field(default_factory=CalibratedCosts)
    gc_model: GcModel = field(default_factory=GcModel)
    collect_stats: bool = True
    #: safety valve against diverging programs (None = unlimited)
    max_steps: int | None = None
    #: record a structured event trace of the run (see repro.trace);
    #: the recorder lands on ``RunResult.trace``
    trace: bool = False
    #: RNG seed for the "chaos" strategy (None = 0)
    chaos_seed: int | None = None
    #: fault-injection probabilities for the "chaos" strategy
    #: (:class:`repro.exec.chaos.FaultPlan`; None = no faults)
    fault_plan: Any = None
    #: cost metering: "on" (default; feeds the virtual-time machine) or
    #: "off" (wall-clock fast path: tasks use a shared no-op meter and
    #: the engine skips all cost bookkeeping).  Strategies that consume
    #: meters — the fork/join virtual machine — force metering back on
    #: regardless of this flag; results are identical either way.
    metering: str = "on"
    #: compile each rule's query shapes once and dispatch through the
    #: precompiled plans (see :mod:`repro.plan`); off = the legacy
    #: interpret-per-firing path.  Results are identical either way.
    plan_cache: bool = True
    #: opt-in: pop consecutive minimal classes that trigger no rules
    #: together with the next triggering class, as one super-step.
    #: Outputs and table sizes are unchanged, but step counts (and the
    #: trace's step events) differ from uncoalesced runs, so this is
    #: off by default and disabled under retention hints.
    coalesce_steps: bool = False
    #: session feed admission, mirroring ``causality_check``: a tuple
    #: fed below the completed high-water mark is rejected with a
    #: :class:`~repro.core.errors.CausalityError` (``"strict"``) or
    #: quarantined with an :class:`~repro.core.errors.AdmissionWarning`
    #: (``"warn"``).  Irrelevant to one-shot ``Engine.run`` (everything
    #: is fed before the first step).
    admission: str = "strict"
    #: opt-in incremental view maintenance: ``feed`` accepts
    #: :class:`~repro.core.delta.Delete` events and the kernel maintains
    #: derived state incrementally (counting-based support tracking with
    #: DRed-style over-delete/rederive repair).  Off by default: the
    #: insert-only path carries zero support-tracking overhead and is
    #: byte-identical to previous releases.
    retraction: bool = False
    #: phase-B firing mode: "scalar" (one firing at a time, the default)
    #: or "columnar" (evaluate each popped class's predicted queries as
    #: one batch over the column-oriented access paths, falling back
    #: per-rule to the scalar path whenever the prediction misses — see
    #: :mod:`repro.plan.batchcompile`).  Outputs, table sizes and traces
    #: are byte-identical either way.
    execution: str = "scalar"

    def with_(self, **kw: Any) -> "ExecOptions":
        """Functional update, e.g. ``opts.with_(threads=8)``."""
        return replace(self, **kw)

    def __post_init__(self) -> None:
        if self.strategy not in (
            "sequential",
            "forkjoin",
            "threads",
            "chaos",
            "processes",
        ):
            _refuse(
                "unknown strategy; valid strategies: "
                "sequential, forkjoin, threads, chaos, processes",
                strategy=self.strategy,
            )
        if self.causality_check not in ("off", "warn", "strict"):
            _refuse(
                "unknown causality_check; valid modes: off, warn, strict",
                causality_check=self.causality_check,
            )
        if self.task_granularity not in ("tuple", "rule"):
            _refuse(
                "unknown task_granularity; valid granularities: tuple, rule",
                task_granularity=self.task_granularity,
            )
        if self.threads < 1:
            _refuse("threads must be >= 1", threads=self.threads)
        if self.index_mode not in ("off", "auto", "explicit"):
            _refuse(
                "unknown index_mode; valid modes: off, auto, explicit",
                index_mode=self.index_mode,
            )
        if self.metering not in ("on", "off"):
            _refuse(
                "unknown metering mode; valid modes: on, off",
                metering=self.metering,
            )
        # execution-tier refusals live in one table shared with the
        # kernel's tier registry (repro.core.executors.registry): rows a
        # different option value would fix refuse here; rows that depend
        # on the run environment downgrade with a note at kernel init
        from repro.core.executors.registry import check_execution_options

        check_execution_options(self, _refuse)
        if self.admission not in ("strict", "warn"):
            _refuse(
                "unknown admission mode; valid modes: strict, warn",
                admission=self.admission,
            )
        if self.index_mode == "off" and self.indexes:
            _refuse(
                "explicit indexes need index_mode 'auto' or 'explicit'",
                index_mode=self.index_mode,
                indexes=sorted(self.indexes),
            )
        if self.strategy != "chaos" and (
            self.chaos_seed is not None or self.fault_plan is not None
        ):
            offending = {
                k: v
                for k, v in (
                    ("chaos_seed", self.chaos_seed),
                    ("fault_plan", self.fault_plan),
                )
                if v is not None
            }
            _refuse(
                "chaos_seed / fault_plan only apply to the 'chaos' strategy",
                strategy=self.strategy,
                **offending,
            )
        if self.fault_plan is not None:
            from repro.exec.chaos import FaultPlan  # local: avoid import cycles

            if not isinstance(self.fault_plan, FaultPlan):
                _refuse(
                    f"fault_plan must be a FaultPlan, "
                    f"got {type(self.fault_plan).__name__}",
                    fault_plan=self.fault_plan,
                )
            if self.fault_plan.raise_prob > 0 and self.no_delta:
                # a -noDelta cascade inserts into Gamma *inside* the
                # producing task; redelivering such a task after a fault
                # skips the duplicate insert and loses the cascade —
                # retryable faults require fully delta-buffered effects
                _refuse(
                    "fault_plan.raise_prob requires delta-buffered effects; "
                    "-noDelta tables make tasks non-redeliverable",
                    fault_plan=self.fault_plan,
                    no_delta=sorted(self.no_delta),
                )
        if self.retraction:
            # support tracking records every firing's Gamma footprint;
            # the bypass modes below either hide tuples from the tracker
            # or discard them behind its back, so repair would be wrong
            if self.no_delta or self.no_gamma:
                offending = {
                    k: sorted(v)
                    for k, v in (
                        ("no_delta", self.no_delta),
                        ("no_gamma", self.no_gamma),
                    )
                    if v
                }
                _refuse(
                    "retraction requires fully tracked state; "
                    "-noDelta/-noGamma tables are incompatible with it",
                    retraction=self.retraction,
                    **offending,
                )
            if self.retention:
                _refuse(
                    "retraction is incompatible with retention hints: "
                    "GC-discarded tuples cannot be counted for support",
                    retraction=self.retraction,
                    retention=sorted(self.retention),
                )
            if self.task_granularity != "tuple":
                _refuse(
                    "retraction requires task_granularity='tuple' "
                    "(support records are keyed per (rule, trigger) firing)",
                    retraction=self.retraction,
                    task_granularity=self.task_granularity,
                )
            if self.strategy == "processes":
                _refuse(
                    "retraction is not supported by the multiprocess shard "
                    "runtime yet; use sequential/forkjoin/threads/chaos",
                    retraction=self.retraction,
                    strategy=self.strategy,
                )


class Program:
    """A declared JStar program, ready to be run under any options."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.tables: dict[str, TableHandle] = {}
        self.rules: list[Rule] = []
        self.decls = OrderDecls()
        self.initial_puts: list[JTuple] = []
        self._rules_by_trigger: dict[str, list[Rule]] | None = None
        # (rule count it was computed at, patterns) — see query_shapes()
        self._query_shapes: tuple[int, tuple] | None = None

    # -- declarations -----------------------------------------------------

    def table(
        self,
        name: str,
        fields: str | Iterable[Field],
        orderby: Iterable[Any] = (),
    ) -> TableHandle:
        """Declare a table (the ``table`` command of §3)."""
        if self._frozen:
            raise SchemaError("cannot declare tables after the program ran")
        if name in self.tables:
            raise SchemaError(f"table {name} declared twice")
        schema = TableSchema(name, fields, orderby)
        handle = TableHandle(schema)
        self.tables[name] = handle
        for lit in schema.literal_names():
            self.decls.mention(lit)
        return handle

    def order(self, *names: str) -> None:
        """An ``order A < B < C`` declaration (§4, Fig 4)."""
        self.decls.declare(*names)

    def rule(
        self,
        trigger: TableHandle,
        *,
        name: str | None = None,
        unsafe: bool = False,
        meta: Any = None,
        assume_stratified: bool = False,
    ) -> Callable[[RuleBody], Rule]:
        """Decorator declaring a ``foreach`` rule.

        ``@p.foreach(Ship)`` is the idiomatic alias matching the paper's
        keyword.
        """
        if trigger.schema.name not in self.tables:
            raise UnknownTableError(
                f"rule trigger {trigger.schema.name} is not a table of this program"
            )

        def deco(body: RuleBody) -> Rule:
            r = Rule(
                trigger,
                body,
                name=name,
                unsafe=unsafe,
                meta=meta,
                assume_stratified=assume_stratified,
            )
            self.rules.append(r)
            self._rules_by_trigger = None
            return r

        return deco

    # the paper's keyword
    foreach = rule

    def put(self, tup: JTuple) -> None:
        """An initial ``put`` command (§3, e.g. ``put new Estimate(0,0)``)."""
        if tup.schema.name not in self.tables:
            raise UnknownTableError(
                f"initial put into unknown table {tup.schema.name}"
            )
        self.initial_puts.append(tup)

    # -- finalisation ------------------------------------------------------

    @property
    def _frozen(self) -> bool:
        return self.decls.frozen

    def freeze(self) -> None:
        """Freeze order declarations and index rules by trigger.
        Idempotent; called automatically by :meth:`run`."""
        self.decls.freeze()
        self._index_rules()
        self.query_shapes()  # pre-resolve rule query shapes (plan cache)

    def query_shapes(self) -> tuple:
        """The distinct static query shapes of this program's rules —
        the same access-pattern walk the index planner performs
        (:func:`repro.gamma.indexplan.collect_access_patterns`), cached
        so every engine's plan cache can warm up without re-probing the
        rules' symbolic metadata."""
        if self._query_shapes is None or self._query_shapes[0] != len(self.rules):
            from repro.gamma.indexplan import collect_access_patterns

            self._query_shapes = (
                len(self.rules),
                tuple(collect_access_patterns(self)),
            )
        return self._query_shapes[1]

    def _index_rules(self) -> None:
        by_trigger: dict[str, list[Rule]] = {}
        for r in self.rules:
            by_trigger.setdefault(r.trigger.schema.name, []).append(r)
        self._rules_by_trigger = by_trigger

    def rules_for(self, table_name: str) -> list[Rule]:
        if self._rules_by_trigger is None:
            self._index_rules()
        assert self._rules_by_trigger is not None
        return self._rules_by_trigger.get(table_name, [])

    def schemas(self) -> dict[str, TableSchema]:
        return {name: h.schema for name, h in self.tables.items()}

    # -- execution -----------------------------------------------------------

    def run(self, options: ExecOptions | None = None, **kw: Any):
        """Execute the program; returns a
        :class:`repro.core.engine.RunResult`.  Keyword arguments are
        shorthand for ``ExecOptions`` fields."""
        from repro.core.engine import Engine  # local: engine imports us

        opts = options if options is not None else ExecOptions()
        if kw:
            opts = opts.with_(**kw)
        if opts.strategy == "processes":
            # real multiprocess shard execution is a whole-engine
            # runtime, not a step strategy — it owns its own supersteps
            from repro.dist.procrun import run_sharded  # local: dist imports us

            return run_sharded(self, opts)
        return Engine(self, opts).run()

    def session(self, options: ExecOptions | None = None, **kw: Any):
        """Open-ended execution: an
        :class:`repro.core.session.EngineSession` over this program,
        *not yet opened* — drive it with ``open``/``feed``/``settle``/
        ``close`` (or a ``with`` block).  Unlike :meth:`run`, no initial
        puts are fed automatically; the caller owns the input stream."""
        from repro.core.session import EngineSession  # local: session imports us

        opts = options if options is not None else ExecOptions()
        if kw:
            opts = opts.with_(**kw)
        return EngineSession(self, opts)

    def check_causality(self, strict: bool = False):
        """Run the static causality prover over every rule that carries
        symbolic metadata; returns the list of findings.  The analogue
        of the paper's SMT pass (§4)."""
        from repro.solver.check import check_program

        return check_program(self, strict=strict)

    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: {len(self.tables)} tables, "
            f"{len(self.rules)} rules, {len(self.initial_puts)} initial puts>"
        )
