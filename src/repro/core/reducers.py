"""Reduce and scan operations with user-defined operators.

§1.3: "To replace some common uses of sequential loops, JStar supports
reduce and scan operations with user-defined operators."  A
:class:`Reducer` is a monoid-with-projection: ``zero`` / ``step`` /
``combine`` / ``finish``.  ``combine`` is what makes tree-shaped
parallel reduction legal (§5.2: "Loops that do involve a reducer object
could also be executed in parallel, with a tree-based pass to combine
the final reducer results") — the engine's parallel in-loop reduction
uses it, and a hypothesis property test checks every built-in reducer's
``combine`` agrees with sequential folding.

:class:`Statistics` is the reducer the PvWatts program uses
(``stats += record.power; ... stats.mean``): count/mean/variance with
a numerically stable (Chan et al.) parallel merge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

A = TypeVar("A")  # accumulator
V = TypeVar("V")  # element
R = TypeVar("R")  # result

__all__ = [
    "Reducer",
    "SumReducer",
    "CountReducer",
    "MinReducer",
    "MaxReducer",
    "Statistics",
    "StatisticsAcc",
    "FnReducer",
    "reduce_all",
    "scan",
    "tree_reduce",
]


class Reducer(Generic[V, A, R]):
    """User-defined reduction operator (monoid + projection)."""

    def zero(self) -> A:
        raise NotImplementedError

    def step(self, acc: A, value: V) -> A:
        raise NotImplementedError

    def combine(self, left: A, right: A) -> A:
        raise NotImplementedError

    def finish(self, acc: A) -> R:
        return acc  # type: ignore[return-value]


class SumReducer(Reducer[float, float, float]):
    """Sum of numeric values."""

    def zero(self) -> float:
        return 0

    def step(self, acc: float, value: float) -> float:
        return acc + value

    def combine(self, left: float, right: float) -> float:
        return left + right


class CountReducer(Reducer[Any, int, int]):
    """Number of values."""

    def zero(self) -> int:
        return 0

    def step(self, acc: int, value: Any) -> int:
        return acc + 1

    def combine(self, left: int, right: int) -> int:
        return left + right


class MinReducer(Reducer[Any, Any, Any]):
    """Minimum; ``None`` is the identity (empty input)."""

    def zero(self) -> Any:
        return None

    def step(self, acc: Any, value: Any) -> Any:
        return value if acc is None or value < acc else acc

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right


class MaxReducer(Reducer[Any, Any, Any]):
    """Maximum; ``None`` is the identity."""

    def zero(self) -> Any:
        return None

    def step(self, acc: Any, value: Any) -> Any:
        return value if acc is None or value > acc else acc

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right


@dataclass(frozen=True, slots=True)
class StatisticsAcc:
    """Welford-style accumulator: count, mean, M2 (sum of squared
    deviations), min, max."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count


class Statistics(Reducer[float, StatisticsAcc, StatisticsAcc]):
    """The paper's standard ``Statistics`` reduce operator (Fig 4).

    Parallel-mergeable via the Chan et al. pairwise update, so it can
    sit at the leaves of a tree reduction without changing results
    beyond floating-point reassociation.
    """

    def zero(self) -> StatisticsAcc:
        return StatisticsAcc()

    def step(self, acc: StatisticsAcc, value: float) -> StatisticsAcc:
        n = acc.count + 1
        delta = value - acc.mean
        mean = acc.mean + delta / n
        m2 = acc.m2 + delta * (value - mean)
        return StatisticsAcc(
            n, mean, m2, min(acc.min, value), max(acc.max, value)
        )

    def combine(self, left: StatisticsAcc, right: StatisticsAcc) -> StatisticsAcc:
        if left.count == 0:
            return right
        if right.count == 0:
            return left
        n = left.count + right.count
        delta = right.mean - left.mean
        mean = left.mean + delta * right.count / n
        m2 = left.m2 + right.m2 + delta * delta * left.count * right.count / n
        return StatisticsAcc(
            n, mean, m2, min(left.min, right.min), max(left.max, right.max)
        )


class FnReducer(Reducer[V, A, A]):
    """Ad-hoc reducer from plain functions (associative ``combine``
    required for parallel use — the causality prover cannot check this,
    exactly as the paper trusts user-defined operators)."""

    def __init__(
        self,
        zero: Callable[[], A],
        step: Callable[[A, V], A],
        combine: Callable[[A, A], A],
    ):
        self._zero = zero
        self._step = step
        self._combine = combine

    def zero(self) -> A:
        return self._zero()

    def step(self, acc: A, value: V) -> A:
        return self._step(acc, value)

    def combine(self, left: A, right: A) -> A:
        return self._combine(left, right)


def reduce_all(reducer: Reducer[V, A, R], values: Iterable[V]) -> R:
    """Sequential fold."""
    acc = reducer.zero()
    for v in values:
        acc = reducer.step(acc, v)
    return reducer.finish(acc)


def scan(reducer: Reducer[V, A, R], values: Iterable[V]) -> Iterator[R]:
    """Inclusive prefix scan: yields ``finish`` of every prefix."""
    acc = reducer.zero()
    for v in values:
        acc = reducer.step(acc, v)
        yield reducer.finish(acc)


def tree_reduce(
    reducer: Reducer[V, A, R], chunks: Iterable[Iterable[V]]
) -> tuple[R, int]:
    """Fold each chunk independently, then combine pairwise in a
    balanced tree — the §5.2 parallel-loop reduction shape.  Returns
    ``(result, tree_depth)``; the depth feeds the virtual-time model
    (the combine pass is a log-depth critical path)."""
    accs: list[A] = []
    for chunk in chunks:
        acc = reducer.zero()
        for v in chunk:
            acc = reducer.step(acc, v)
        accs.append(acc)
    if not accs:
        return reducer.finish(reducer.zero()), 0
    depth = 0
    while len(accs) > 1:
        nxt: list[A] = []
        for i in range(0, len(accs) - 1, 2):
            nxt.append(reducer.combine(accs[i], accs[i + 1]))
        if len(accs) % 2:
            nxt.append(accs[-1])
        accs = nxt
        depth += 1
    return reducer.finish(accs[0]), depth
