"""Query AST: positive, negative, unique, min/max and aggregate queries.

Rules inspect the Gamma database through a small set of query forms
taken from the paper's listings:

* ``get T(args)`` — positive query, iterate matching tuples
  (e.g. ``get PvWatts(s.year, s.month)`` in Fig 4);
* ``get uniq? T(args)`` — unique-or-null (``get uniq? Done(edge.to)``
  in Fig 5); observing *absence* makes it a negative query for
  causality purposes;
* ``get min T(args)`` — minimal matching tuple (an aggregate);
* aggregate queries — count / sum / reduce over matching tuples.

A query names a table, equality constraints on a prefix of the fields
(positional, like the listings) or on named fields, optional range
constraints, and an optional residual boolean predicate (the paper's
``[distance < dist.distance]`` lambda).  Gamma stores receive the whole
:class:`Query` and may use whatever parts of it their index supports;
:meth:`Query.matches` is the always-correct fallback filter.

The ``kind`` classification (POSITIVE / NEGATIVE / AGGREGATE) is what
the law of causality cares about (§4): positive queries may look at
timestamps ``≤ T``, negative and aggregate queries only ``< T``.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Mapping

from repro.core.errors import SchemaError, UnknownFieldError
from repro.core.schema import TableSchema
from repro.core.tuples import JTuple, TableHandle

__all__ = ["QueryKind", "Query", "build_query"]


class QueryKind(enum.Enum):
    """Causality classification of a query (§4)."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    AGGREGATE = "aggregate"


class Query:
    """A compiled query against one table.

    Attributes
    ----------
    schema:
        The queried table's schema.
    eq:
        Field-index → required value (equality constraints).
    ranges:
        Field-index → ``(lo, hi, lo_inclusive, hi_inclusive)``; ``None``
        bounds are open.  Stores with ordered indexes can use these.
    where:
        Residual predicate ``JTuple -> bool`` or ``None``.
    kind:
        Causality classification.
    """

    __slots__ = ("schema", "eq", "ranges", "where", "kind")

    def __init__(
        self,
        schema: TableSchema,
        eq: dict[int, Any],
        ranges: dict[int, tuple[Any, Any, bool, bool]],
        where: Callable[[JTuple], bool] | None,
        kind: QueryKind,
    ):
        self.schema = schema
        self.eq = eq
        self.ranges = ranges
        self.where = where
        self.kind = kind

    # -- evaluation helpers ------------------------------------------------

    def matches(self, tup: JTuple) -> bool:
        """Full predicate — correct for any store (linear-scan fallback)."""
        values = tup.values
        for idx, want in self.eq.items():
            if values[idx] != want:
                return False
        for idx, (lo, hi, lo_inc, hi_inc) in self.ranges.items():
            v = values[idx]
            if lo is not None and (v < lo or (v == lo and not lo_inc)):
                return False
            if hi is not None and (v > hi or (v == hi and not hi_inc)):
                return False
        if self.where is not None and not self.where(tup):
            return False
        return True

    def filter(self, tuples: Iterable[JTuple]) -> Iterable[JTuple]:
        return (t for t in tuples if self.matches(t))

    def key_if_fully_bound(self) -> tuple | None:
        """If the equality constraints bind the whole primary key,
        return that key (enables O(1) lookup in keyed stores)."""
        schema = self.schema
        if not schema.has_key:
            return None
        key = []
        for i in schema.key_indexes:
            if i not in self.eq:
                return None
            key.append(self.eq[i])
        return tuple(key)

    def eq_on(self, field_names: tuple[str, ...]) -> tuple | None:
        """If equality constraints bind exactly the given fields, return
        their values in order — used by hash indexes over those fields."""
        idxs = tuple(self.schema.field_position(n) for n in field_names)
        if not all(i in self.eq for i in idxs):
            return None
        return tuple(self.eq[i] for i in idxs)

    def with_kind(self, kind: QueryKind) -> "Query":
        return Query(self.schema, self.eq, self.ranges, self.where, kind)

    def __repr__(self) -> str:
        parts = []
        for i, v in sorted(self.eq.items()):
            parts.append(f"{self.schema.field_names[i]}={v!r}")
        for i, (lo, hi, li, hi_inc) in sorted(self.ranges.items()):
            name = self.schema.field_names[i]
            if lo is not None:
                parts.append(f"{name}{'>=' if li else '>'}{lo!r}")
            if hi is not None:
                parts.append(f"{name}{'<=' if hi_inc else '<'}{hi!r}")
        if self.where is not None:
            parts.append("[...]")
        return f"get {self.schema.name}({', '.join(parts)}) <{self.kind.value}>"


def _normalise_range(spec: Any) -> tuple[Any, Any, bool, bool]:
    """Accept ``(lo, hi)`` (inclusive), or a dict with lt/le/gt/ge keys."""
    if isinstance(spec, tuple) and len(spec) == 2:
        return (spec[0], spec[1], True, True)
    if isinstance(spec, Mapping):
        lo = hi = None
        lo_inc = hi_inc = True
        for op, v in spec.items():
            if op == "gt":
                lo, lo_inc = v, False
            elif op == "ge":
                lo, lo_inc = v, True
            elif op == "lt":
                hi, hi_inc = v, False
            elif op == "le":
                hi, hi_inc = v, True
            else:
                raise SchemaError(f"unknown range operator {op!r}")
        return (lo, hi, lo_inc, hi_inc)
    raise SchemaError(f"bad range spec {spec!r}")


def build_query(
    table: TableHandle | TableSchema,
    *prefix: Any,
    where: Callable[[JTuple], bool] | None = None,
    ranges: Mapping[str, Any] | None = None,
    kind: QueryKind = QueryKind.POSITIVE,
    **eq_by_name: Any,
) -> Query:
    """Build a :class:`Query`.

    ``prefix`` values constrain the table's leading fields positionally,
    exactly like ``get Edge(dist.vertex)`` constrains ``Edge.from``.
    ``eq_by_name`` constrains named fields; ``ranges`` maps field name
    to ``(lo, hi)`` or ``{"lt": x, "ge": y}``; ``where`` is the residual
    boolean lambda.
    """
    schema = table.schema if isinstance(table, TableHandle) else table
    if len(prefix) > len(schema.fields):
        raise SchemaError(
            f"{schema.name} has {len(schema.fields)} fields; "
            f"{len(prefix)} positional constraints given"
        )
    eq: dict[int, Any] = {i: v for i, v in enumerate(prefix)}
    for name, v in eq_by_name.items():
        idx = schema.field_position(name)
        if idx in eq:
            raise SchemaError(f"field {name!r} constrained twice")
        eq[idx] = v
    rng: dict[int, tuple[Any, Any, bool, bool]] = {}
    if ranges:
        for name, spec in ranges.items():
            idx = schema.field_position(name)
            if idx in eq:
                raise SchemaError(f"field {name!r} has both eq and range constraints")
            rng[idx] = _normalise_range(spec)
    for idx in eq:
        if idx >= len(schema.fields):
            raise UnknownFieldError(f"field index {idx} out of range for {schema.name}")
    return Query(schema, eq, rng, where, kind)
