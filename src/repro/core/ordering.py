"""Causality orderings: ``orderby`` specs, ``order`` declarations, timestamps.

Every JStar table declares an ``orderby`` list (§3/§4 of the paper) whose
entries are one of

* a capitalised **literal** name (``Lit``), ordered relative to other
  literals by explicit ``order`` declarations
  (e.g. ``order Req < PvWatts < SumMonth`` in Fig 4);
* ``seq field`` (``Seq``) — the level is sorted sequentially by the value
  of that field;
* ``par field`` (``Par``) — the level is unordered, so all values are
  equivalent and may be executed in parallel.

Evaluating a tuple's orderby list yields its **timestamp**.  Timestamps
are compared lexicographically, level by level:

* two literals compare through the *totalised* order declarations (the
  runtime's Delta tree stores named branches "indexed by a total ordering
  of the order relationship at that level", §5);
* two ``seq`` components compare by field value;
* two ``par`` components always compare **equal** (same equivalence
  class ⇒ parallel);
* a timestamp that is a strict prefix of another sorts *before* it;
* structurally mismatched levels (literal vs value) raise
  :class:`~repro.core.errors.OrderingError` — that is a malformed
  program, not a data condition.

Timestamps in the same equivalence class (compare equal) are exactly the
tuples the all-minimums strategy runs in parallel (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.errors import OrderingError

__all__ = [
    "Lit",
    "Seq",
    "Par",
    "OrderBySpec",
    "OrderDecls",
    "Timestamp",
    "compare_timestamps",
    "KIND_LIT",
    "KIND_SEQ",
    "KIND_PAR",
]

# Component kind codes used inside Timestamp keys.
KIND_LIT = 0
KIND_SEQ = 1
KIND_PAR = 2

_KIND_NAMES = {KIND_LIT: "literal", KIND_SEQ: "seq", KIND_PAR: "par"}


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal orderby entry: a capitalised name ordered by ``order``
    declarations (e.g. the ``Int`` in ``orderby (Int, seq frame)``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isupper():
            raise OrderingError(
                f"literal orderby names must be capitalised, got {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, slots=True)
class Seq:
    """A ``seq field`` orderby entry: sorted sequentially by field value."""

    field: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"seq {self.field}"


@dataclass(frozen=True, slots=True)
class Par:
    """A ``par field`` orderby entry: unordered, hence parallel."""

    field: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"par {self.field}"


OrderByEntry = Lit | Seq | Par
OrderBySpec = tuple  # tuple[OrderByEntry, ...]


def parse_orderby(entries: Iterable[OrderByEntry | str]) -> tuple[OrderByEntry, ...]:
    """Normalise an orderby declaration.

    Bare strings are accepted as shorthand: a capitalised string becomes
    a :class:`Lit`, ``"seq f"`` / ``"par f"`` become :class:`Seq` /
    :class:`Par`, matching the paper's concrete syntax
    ``orderby (Int, seq frame)``.
    """
    out: list[OrderByEntry] = []
    for e in entries:
        if isinstance(e, (Lit, Seq, Par)):
            out.append(e)
        elif isinstance(e, str):
            text = e.strip()
            if text.startswith("seq "):
                out.append(Seq(text[4:].strip()))
            elif text.startswith("par "):
                out.append(Par(text[4:].strip()))
            else:
                out.append(Lit(text))
        else:
            raise OrderingError(f"bad orderby entry: {e!r}")
    return tuple(out)


class OrderDecls:
    """The program's ``order`` declarations: a strict partial order over
    literal names, totalised for the runtime.

    ``declare("Req", "PvWatts", "SumMonth")`` records
    ``Req < PvWatts < SumMonth``.  :meth:`freeze` computes

    * the transitive closure (used by the static causality prover, which
      must only rely on *declared* order), and
    * a deterministic topological total order assigning each literal an
      integer :meth:`rank` (used by the Delta tree's named branches).

    Literals mentioned in orderby lists but never ordered are appended
    after all constrained literals, in first-seen order; that choice is
    arbitrary but deterministic, and the prover never relies on it.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._seen: list[str] = []  # insertion order of first mention
        self._ranks: dict[str, int] | None = None
        self._closure: dict[str, frozenset[str]] | None = None

    # -- construction ---------------------------------------------------

    def _touch(self, name: str) -> None:
        if name not in self._edges:
            self._edges[name] = set()
            self._seen.append(name)

    def declare(self, *names: str) -> None:
        """Record ``names[0] < names[1] < ... < names[-1]``."""
        if self._ranks is not None:
            raise OrderingError("order declarations are frozen")
        if len(names) < 2:
            raise OrderingError("order declaration needs at least two names")
        for n in names:
            self._touch(n)
        for lo, hi in zip(names, names[1:]):
            if lo == hi:
                raise OrderingError(f"order declares {lo} < itself")
            self._edges[lo].add(hi)

    def mention(self, name: str) -> None:
        """Register a literal that appears in some orderby list so it
        receives a rank even if no ``order`` declaration constrains it."""
        if self._ranks is not None:
            if name not in self._edges:
                raise OrderingError(
                    f"literal {name!r} mentioned after order declarations froze"
                )
            return
        self._touch(name)

    # -- freezing -------------------------------------------------------

    def freeze(self) -> None:
        """Totalise: topological sort (Kahn), ties broken by first-seen
        order so the result is deterministic. Raises on cycles."""
        if self._ranks is not None:
            return
        indeg = {n: 0 for n in self._edges}
        for lo, his in self._edges.items():
            for hi in his:
                indeg[hi] += 1
        order_index = {n: i for i, n in enumerate(self._seen)}
        ready = sorted((n for n, d in indeg.items() if d == 0), key=order_index.__getitem__)
        ranks: dict[str, int] = {}
        while ready:
            n = ready.pop(0)
            ranks[n] = len(ranks)
            inserted = []
            for hi in self._edges[n]:
                indeg[hi] -= 1
                if indeg[hi] == 0:
                    inserted.append(hi)
            if inserted:
                ready.extend(inserted)
                ready.sort(key=order_index.__getitem__)
        if len(ranks) != len(self._edges):
            cyclic = sorted(set(self._edges) - set(ranks))
            raise OrderingError(f"order declarations are cyclic among {cyclic}")
        self._ranks = ranks
        # transitive closure of the *declared* relation, for the prover
        closure: dict[str, set[str]] = {n: set() for n in self._edges}
        for n in sorted(self._edges, key=ranks.__getitem__, reverse=True):
            for hi in self._edges[n]:
                closure[n].add(hi)
                closure[n] |= closure[hi]
        self._closure = {n: frozenset(s) for n, s in closure.items()}

    @property
    def frozen(self) -> bool:
        return self._ranks is not None

    def _require_frozen(self) -> None:
        if self._ranks is None:
            raise OrderingError("OrderDecls must be frozen before use")

    # -- queries --------------------------------------------------------

    def rank(self, name: str) -> int:
        """Totalised rank of a literal (position in the Delta tree's
        linear array of named branches)."""
        self._require_frozen()
        assert self._ranks is not None
        try:
            return self._ranks[name]
        except KeyError:
            raise OrderingError(f"literal {name!r} never mentioned") from None

    def literals(self) -> tuple[str, ...]:
        """All known literals in rank order."""
        self._require_frozen()
        assert self._ranks is not None
        return tuple(sorted(self._ranks, key=self._ranks.__getitem__))

    def declared_less(self, a: str, b: str) -> bool:
        """True iff ``a < b`` follows from the *declared* order (its
        transitive closure) — the only relation the prover may use."""
        self._require_frozen()
        assert self._closure is not None
        if a not in self._closure or b not in self._closure:
            raise OrderingError(f"unknown literal in declared_less({a!r}, {b!r})")
        return b in self._closure[a]

    def comparable(self, a: str, b: str) -> bool:
        """True iff ``a`` and ``b`` are related by the declared order."""
        return a == b or self.declared_less(a, b) or self.declared_less(b, a)


class Timestamp:
    """A tuple's evaluated orderby list.

    ``key`` is a tuple of components ``(kind, payload)``:

    * ``(KIND_LIT, rank)`` — totalised rank of the literal,
    * ``(KIND_SEQ, value)`` — the field value,
    * ``(KIND_PAR,)`` — par levels erase the value for ordering purposes
      (all par siblings are equivalent); the raw value is retained in
      ``display`` for debugging.
    """

    __slots__ = ("key", "display")

    def __init__(self, key: tuple, display: tuple):
        self.key = key
        self.display = display

    # Rich comparisons delegate to compare_timestamps so mismatched
    # structures raise instead of silently ordering.
    def __lt__(self, other: "Timestamp") -> bool:
        return compare_timestamps(self, other) < 0

    def __le__(self, other: "Timestamp") -> bool:
        return compare_timestamps(self, other) <= 0

    def __gt__(self, other: "Timestamp") -> bool:
        return compare_timestamps(self, other) > 0

    def __ge__(self, other: "Timestamp") -> bool:
        return compare_timestamps(self, other) >= 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def equivalent(self, other: "Timestamp") -> bool:
        """Same equivalence class ⇒ may execute in parallel (§5)."""
        return compare_timestamps(self, other) == 0

    def __repr__(self) -> str:
        parts = []
        for comp, disp in zip(self.key, self.display):
            kind = comp[0]
            if kind == KIND_LIT:
                parts.append(str(disp))
            elif kind == KIND_SEQ:
                parts.append(f"seq={disp!r}")
            else:
                parts.append(f"par={disp!r}")
        return f"Ts({', '.join(parts)})"


def _compare_component(a: tuple, b: tuple) -> int:
    ka, kb = a[0], b[0]
    if ka != kb:
        raise OrderingError(
            f"structurally incomparable timestamp levels: "
            f"{_KIND_NAMES[ka]} vs {_KIND_NAMES[kb]}"
        )
    if ka == KIND_PAR:
        return 0
    va, vb = a[1], b[1]
    if va == vb:
        return 0
    try:
        return -1 if va < vb else 1
    except TypeError as exc:
        raise OrderingError(
            f"timestamp values {va!r} and {vb!r} are not mutually ordered"
        ) from exc


def compare_timestamps(a: Timestamp, b: Timestamp) -> int:
    """Lexicographic three-way comparison; 0 means *equivalent*.

    A strict prefix compares before any extension of it (an empty
    orderby suffix means "no further constraint", which the Delta tree
    treats as the earliest point of the subtree).
    """
    if a is b:
        # shared object — constant-orderby timestamps and the memoised
        # per-tuple timestamps make this the common case
        return 0
    ka, kb = a.key, b.key
    for ca, cb in zip(ka, kb):
        c = _compare_component(ca, cb)
        if c != 0:
            return c
    if len(ka) == len(kb):
        return 0
    return -1 if len(ka) < len(kb) else 1


def evaluate_orderby(
    spec: Sequence[Lit | Seq | Par],
    fields: dict[str, Any],
    decls: OrderDecls,
) -> Timestamp:
    """Evaluate an orderby spec against a tuple's field values."""
    key: list[tuple] = []
    display: list[Any] = []
    for entry in spec:
        if isinstance(entry, Lit):
            key.append((KIND_LIT, decls.rank(entry.name)))
            display.append(entry.name)
        elif isinstance(entry, Seq):
            v = fields[entry.field]
            key.append((KIND_SEQ, v))
            display.append(v)
        else:  # Par
            v = fields[entry.field]
            key.append((KIND_PAR,))
            display.append(v)
    return Timestamp(tuple(key), tuple(display))
