"""Exception taxonomy for the JStar runtime.

The paper distinguishes several classes of program error:

* schema errors (bad table declarations, unknown fields),
* key-invariant violations (a primary key mapped to two different
  dependent values — the ``->`` invariant of §3),
* causality violations (a rule tried to "change the past", §4),
* stratification errors (the static prover could not show a rule is
  consistent with the declared causality ordering — the paper surfaces
  these as SMT warnings / ``Stratification error`` messages, §6.2).

All runtime errors derive from :class:`JStarError` so callers can catch
the whole family at once.
"""

from __future__ import annotations


class JStarError(Exception):
    """Base class for all errors raised by the JStar runtime."""


class SchemaError(JStarError):
    """A table or field declaration is malformed or inconsistent."""


class UnknownTableError(SchemaError):
    """A rule or query referenced a table that was never declared."""


class UnknownFieldError(SchemaError):
    """A tuple or query referenced a field not present in the schema."""


class OrderingError(JStarError):
    """The ``order`` declarations are inconsistent (cyclic), or two
    timestamps were compared that the program's orderings leave
    structurally incomparable (e.g. a literal against a value)."""


class KeyInvariantError(JStarError):
    """Two tuples with the same primary key but different dependent
    values were put into a table (violates the ``->`` invariant)."""


class CausalityError(JStarError):
    """A rule violated the law of causality at runtime: it put a tuple
    into the past, or made a negative/aggregate query about the
    present/future (§4)."""


class StratificationError(JStarError):
    """The static causality check could not prove that a rule respects
    the declared ordering.  Mirrors the paper's ``Stratification
    error`` message (§6.2)."""


class StratificationWarning(UserWarning):
    """Non-fatal variant: the prover failed but execution continues.

    The paper "strongly recommends" fixing the program but does not
    refuse to run it; strict mode upgrades this to
    :class:`StratificationError`.
    """


class RuleError(JStarError):
    """A rule body raised, or used the context incorrectly (e.g. called
    ``put`` after the rule finished)."""


class EngineError(JStarError):
    """Internal engine invariant broken, or the engine was driven
    incorrectly (e.g. ``run`` called twice)."""


class WorkerLostError(EngineError):
    """A distributed worker process went away mid-protocol (EOF or a
    broken pipe on its control channel).  Names the dead node and the
    in-flight superstep/attempt epoch so recovery logs are actionable;
    the coordinator catches it for crash recovery and only lets it
    escape when the cluster cannot make progress (e.g. a worker that
    dies during the spawn handshake)."""

    def __init__(self, node: int, step: int | None = None, attempt: int | None = None):
        where = ""
        if step is not None:
            where = f" during step {step}"
            if attempt is not None:
                where += f" (attempt {attempt})"
        super().__init__(f"worker {node} was lost{where}")
        self.node = node
        self.step = step
        self.attempt = attempt


class RetractionError(EngineError):
    """A ``Delete`` event could not be honoured: the tuple was never
    inserted as a base fact, names a derived tuple, or retraction was
    not enabled (``ExecOptions(retraction=True)``).  The session stays
    open and usable after the error."""


class EngineWarning(UserWarning):
    """The engine adjusted an execution option the caller asked for
    (e.g. ``metering="off"`` forced back on by a virtual-time strategy,
    or ``coalesce_steps`` disabled by retention hints).  Always recorded
    as a note on the run's statistics; additionally *warned* when
    ``causality_check="strict"`` so strict runs never silently diverge
    from their requested configuration."""


class AdmissionWarning(EngineWarning):
    """A tuple fed into an open session carried a timestamp strictly
    below the completed high-water mark and was quarantined instead of
    admitted (``ExecOptions.admission="warn"``; strict mode raises
    :class:`CausalityError` instead).  Admitting it would violate the
    causality law: negative/aggregate answers already computed for
    regions below the high-water mark could be invalidated (§4)."""


class ServiceError(JStarError):
    """Base class for errors raised by the multi-tenant session service
    (:mod:`repro.serve`).  Each subclass carries a stable wire ``code``
    and a ``retryable`` flag; the service maps them onto structured
    error responses (``{"code", "message", "retryable"}``) so clients
    can distinguish *backpressure* (retry the same request later,
    nothing was mutated) from *protocol or semantic* failures (fix the
    request).  The taxonomy is the serving-side analogue of the engine
    error classes above."""

    code = "service"
    retryable = False


class ProtocolError(ServiceError):
    """The frame or request was malformed: bad length prefix, invalid
    JSON, a non-object payload, or missing required fields."""

    code = "protocol"


class FrameTooLargeError(ProtocolError):
    """A frame exceeded the service's ``max_frame_bytes``.  Not
    retryable as-is: the client must split the batch."""

    code = "frame-too-large"


class UnknownVerbError(ProtocolError):
    """The request named a verb the service does not speak."""

    code = "unknown-verb"


class UnknownProgramError(ServiceError):
    """``open`` named a program absent from the service registry."""

    code = "unknown-program"


class UnknownTenantError(ServiceError):
    """A verb addressed a tenant with no live session and no durable
    snapshot (never opened, or closed and reaped)."""

    code = "unknown-tenant"


class TenantClosedError(ServiceError):
    """The tenant's session was closed; open a fresh tenant id."""

    code = "closed"


class BackpressureError(ServiceError):
    """The service refused the request to protect itself; nothing was
    admitted or mutated.  Always retryable: the same request is valid
    later, when load has drained."""

    code = "backpressure"
    retryable = True


class TenantLimitError(BackpressureError):
    """``open`` refused: the session table is at ``max_tenants``."""

    code = "tenant-limit"


class OverloadedError(BackpressureError):
    """``feed`` refused: admitting the batch would push the in-flight
    feed bytes over ``max_inflight_bytes``."""

    code = "overloaded"


class UnsafeOperationError(JStarError):
    """Side-effecting operation attempted outside an ``unsafe`` rule.

    The paper bans mutable state and side effects in ordinary rules;
    system rules (CSV reading, printing) must be declared unsafe
    (footnote 1 of §1.2).
    """


class DisruptorError(JStarError):
    """Misuse of the disruptor substrate (overrun, double start, ...)."""


class SolverError(JStarError):
    """The causality prover was given a malformed obligation."""
