"""The JStar language runtime — the paper's primary contribution.

Public API::

    from repro.core import Program, ExecOptions, Lit, Seq, Par

    p = Program("ship")
    Ship = p.table("Ship", "int frame -> int x, int y, int dx, int dy",
                   orderby=("Int", "seq frame"))

    @p.foreach(Ship)
    def move_right(ctx, s):
        if s.x < 400:
            ctx.put(Ship.new(s.frame + 1, s.x + 150, s.y, s.dx, s.dy))

    p.put(Ship.new(0, 10, 10, 150, 0))
    result = p.run(ExecOptions(strategy="forkjoin", threads=8))
"""

from repro.core.database import Database, InsertOutcome
from repro.core.delta import Delete, DeltaTree, Insert
from repro.core.engine import Engine, FeedReport, RunResult
from repro.core.errors import (
    AdmissionWarning,
    BackpressureError,
    CausalityError,
    EngineError,
    EngineWarning,
    FrameTooLargeError,
    JStarError,
    KeyInvariantError,
    OrderingError,
    OverloadedError,
    ProtocolError,
    RetractionError,
    RuleError,
    SchemaError,
    ServiceError,
    StratificationError,
    StratificationWarning,
    TenantClosedError,
    TenantLimitError,
    UnknownFieldError,
    UnknownProgramError,
    UnknownTableError,
    UnknownTenantError,
    UnknownVerbError,
    UnsafeOperationError,
)
from repro.core.ordering import (
    Lit,
    OrderDecls,
    Par,
    Seq,
    Timestamp,
    compare_timestamps,
)
from repro.core.program import ExecOptions, Program, RetentionHint
from repro.core.query import Query, QueryKind, build_query
from repro.core.reducers import (
    CountReducer,
    FnReducer,
    MaxReducer,
    MinReducer,
    Reducer,
    Statistics,
    StatisticsAcc,
    SumReducer,
    reduce_all,
    scan,
    tree_reduce,
)
from repro.core.rules import Rule, RuleContext
from repro.core.schema import Field, TableSchema
from repro.core.session import EngineSession, causal_chunks, causal_sort
from repro.core.tuples import JTuple, TableHandle

__all__ = [
    "Program",
    "ExecOptions",
    "RetentionHint",
    "Engine",
    "EngineSession",
    "FeedReport",
    "causal_sort",
    "causal_chunks",
    "RunResult",
    "TableSchema",
    "TableHandle",
    "Field",
    "JTuple",
    "Rule",
    "RuleContext",
    "Query",
    "QueryKind",
    "build_query",
    "Database",
    "InsertOutcome",
    "DeltaTree",
    "Insert",
    "Delete",
    "Lit",
    "Seq",
    "Par",
    "OrderDecls",
    "Timestamp",
    "compare_timestamps",
    "Reducer",
    "SumReducer",
    "CountReducer",
    "MinReducer",
    "MaxReducer",
    "Statistics",
    "StatisticsAcc",
    "FnReducer",
    "reduce_all",
    "scan",
    "tree_reduce",
    "JStarError",
    "SchemaError",
    "UnknownTableError",
    "UnknownFieldError",
    "OrderingError",
    "KeyInvariantError",
    "CausalityError",
    "RetractionError",
    "StratificationError",
    "StratificationWarning",
    "RuleError",
    "EngineError",
    "EngineWarning",
    "AdmissionWarning",
    "UnsafeOperationError",
    "ServiceError",
    "ProtocolError",
    "FrameTooLargeError",
    "UnknownVerbError",
    "UnknownProgramError",
    "UnknownTenantError",
    "TenantClosedError",
    "BackpressureError",
    "TenantLimitError",
    "OverloadedError",
]
