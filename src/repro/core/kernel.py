"""The step kernel: pure step machinery of the pseudo-naive engine.

This module is the mechanism half of the §3/§5 run loop, split out of
the old monolithic ``Engine.run`` so that *lifecycle* (open / feed /
settle / checkpoint / close — :class:`repro.core.session.EngineSession`)
and *stepping* (pop the minimal class, fire, apply effects — this
module) evolve independently.  The tuple lifecycle is exactly Fig 3:

1. a rule (or an externally fed ``put``) creates a tuple, which enters
   the **Delta** tree to await processing — unless its table is in the
   ``-noDelta`` set, in which case it goes straight to Gamma and fires
   its rules immediately inside the producing task (§5.1);
2. each step removes the minimal *equivalence class* from Delta,
   inserts those tuples into **Gamma** (unless ``-noGamma``), and fires
   every rule they trigger — one task per tuple, all tasks of the class
   conceptually in parallel (the all-minimums strategy, §5);
3. rules query Gamma; batch effects (new puts) are buffered per task
   and applied in deterministic task order after the batch joins;
4. lifetime hints may discard tuples (``Database.discard``).

Determinism: batches leave the Delta tree in a deterministic order,
effects are applied in task order, so program output is identical under
every strategy and thread count (§1.3) — asserted by the test suite.

Incrementality: :meth:`StepKernel.feed` admits external tuples against
the **high-water mark** — the timestamp of the last popped equivalence
class.  Everything at or above the mark is sound to admit (the engine
has made no commitments there); a tuple strictly below it could
invalidate negative/aggregate answers already computed (§4), so it is
rejected (``admission="strict"``) or quarantined (``"warn"``).

Cost attribution: each task's meter is charged for the Gamma insertion
of its trigger, the rules it fires, the queries they make, and the
Delta insertions of the tuples it put — the *producer* pays for shared
Delta traffic, which is what makes the Delta tree Dijkstra's
scalability bottleneck in Fig 12.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left, bisect_right
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Iterable

from repro.core.database import Database, InsertOutcome
from repro.core.delta import Delete, DeltaTree, Insert
from repro.core.errors import (
    AdmissionWarning,
    CausalityError,
    EngineError,
    EngineWarning,
    KeyInvariantError,
    RetractionError,
    UnknownTableError,
)
from repro.core.executors.registry import resolve_executor
from repro.core.ordering import Timestamp, compare_timestamps
from repro.core.program import ExecOptions, Program
from repro.core.rules import Rule
from repro.core.support import SupportIndex
from repro.core.tuples import JTuple
from repro.exec.base import Strategy, TaskResult
from repro.exec.chaos import ChaosStrategy
from repro.exec.forkjoin import ForkJoinStrategy
from repro.exec.metering import DEFAULT_WEIGHTS, NULL_METER, CostMeter
from repro.exec.sequential import SequentialStrategy
from repro.exec.threads import ThreadStrategy
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import ConcurrentSkipListStore, TreeSetStore
from repro.plan.cache import PlanCache
from repro.simcore.machine import MachineReport
from repro.stats.collector import StatsCollector
from repro.trace.recorder import TraceRecorder, output_hash

__all__ = ["RunResult", "FeedReport", "StepKernel"]


@dataclass
class RunResult:
    """Everything a run (or one settled increment of a session) produced."""

    program: str
    strategy: str
    threads: int
    output: list[str]
    wall_time: float
    report: MachineReport | None
    stats: StatsCollector
    table_sizes: dict[str, int]
    meter: CostMeter
    steps: int
    options: ExecOptions
    #: None when the caller dropped it (e.g. a serialised result); use
    #: :meth:`require_database` for the advisor/report paths that need it
    database: Database | None = field(repr=False, default=None)
    #: the run's event trace (only when ``ExecOptions.trace`` was set)
    trace: TraceRecorder | None = field(repr=False, default=None)
    #: per-node compute/traffic summaries of a multiprocess sharded run
    #: (:mod:`repro.dist.procrun`); None for single-process runs
    nodes: list[dict] | None = None

    def require_database(self) -> Database:
        """The run's database, or a clear error when it was dropped."""
        if self.database is None:
            raise EngineError(
                "this RunResult carries no database (it was dropped or the "
                "result was deserialised); re-run with the database retained"
            )
        return self.database

    @property
    def virtual_time(self) -> float:
        """Elapsed virtual time (work units); falls back to total cost
        for strategies without a machine."""
        if self.report is not None:
            return self.report.elapsed
        return self.meter.total_cost

    def output_text(self) -> str:
        return "\n".join(self.output)


@dataclass
class FeedReport:
    """What one :meth:`StepKernel.feed` call did with its tuples."""

    source: str
    admitted: int
    #: tuples rejected by the high-water-mark admission check under
    #: ``admission="warn"`` (strict mode raises instead of quarantining)
    quarantined: list[JTuple] = field(default_factory=list)


class StepKernel:
    """Step machinery for one program under one set of options.

    Owns the Delta tree, the Gamma database, the strategy, and all the
    deferred tallies; exposes :meth:`feed` (admission-checked external
    puts), :meth:`drain` (run all-minimums steps until Delta is empty),
    and :meth:`flush_stats` (fold deferred tallies into the collector).
    Lifecycle — when to feed, settle, snapshot, or release the strategy
    — belongs to :class:`repro.core.session.EngineSession`; the
    compatibility shim :class:`repro.core.engine.Engine` drives a whole
    run through a private session.
    """

    def __init__(
        self,
        program: Program,
        options: ExecOptions,
        strategy: Strategy | None = None,
    ):
        program.freeze()
        self.program = program
        self.options = options
        # an injected strategy overrides options.strategy — the trace
        # replayer uses this to run a *scripted* ChaosStrategy, and the
        # chaos test harness to run an intentionally-broken variant
        self.strategy = strategy if strategy is not None else self._make_strategy(options)
        registry = self._make_registry(options, self.strategy, program)
        self.db = Database(program.schemas(), registry, program.decls)
        self.delta = DeltaTree()
        self.stats = StatsCollector()
        self.tracer = TraceRecorder() if options.trace else None
        self.strategy.bind(tracer=self.tracer, stats=self.stats)
        self.output: list[str] = []
        self.meter = CostMeter()  # whole-run aggregate
        self.steps = 0
        #: timestamp of the last popped equivalence class — the feed
        #: admission boundary.  None until the first step completes
        #: (everything is admissible before any commitment is made).
        self.high_water: Timestamp | None = None
        #: tuples rejected by admission under ``admission="warn"``, kept
        #: for inspection (and carried through snapshots)
        self.quarantined: list[JTuple] = []
        self._no_delta = options.no_delta
        self._no_gamma = options.no_gamma
        self._check_mode = options.causality_check
        self._delta_serial = options.calib.delta_serial_fraction
        self._per_rule_tasks = options.task_granularity == "rule"
        # ``metering="off"`` replaces per-task meters with the shared
        # no-op meter — unless the strategy's virtual-time machine
        # consumes meters, in which case metering is forced back on
        self._metered = options.metering == "on" or self.strategy.requires_metering
        if options.metering == "off" and self.strategy.requires_metering:
            self._note(
                f"metering='off' overridden: the {self.strategy.name!r} "
                "strategy's virtual-time machine consumes per-task meters, "
                "so metering was forced back on"
            )
        # compiled query plans, warmed from the program's static access
        # patterns; None -> RuleContext uses the generic build_query path
        self._plans = PlanCache(self.db, program) if options.plan_cache else None
        #: per--noDelta-table mutation counters — batch tiers only serve
        #: a prefetched/generated result while its table's epoch is
        #: unchanged, because a -noDelta cascade can insert into Gamma
        #: *during* phase B.  Lives here (empty unless a tier populates
        #: it) because the shared ``_immediate`` cascade path bumps it.
        self._mut_epoch: dict[str, int] = {}
        # deferred stats tallies: (table, rule) -> firings and
        # (rule, table) -> puts, folded into the collector at settle time
        # — totals identical to per-event on_fire/on_put, without paying
        # three hash-structure updates on every firing and put
        self._fire_tallies: dict[tuple[str, str], int] = {}
        self._put_tallies: dict[tuple[str, str], int] = {}
        # same deferral for the per-table Gamma/Delta counters:
        # name -> [delta_bypass, duplicates, gamma_inserts,
        # gamma_skipped, delta_inserts]
        self._table_tallies: dict[str, list[int]] = {}
        # retention hints: table -> mutable
        # [field position, keep_last, max seen, max at last prune];
        # max-seen is maintained incrementally at insert time (NEW
        # outcomes only), so pruning never needs a discovery scan
        self._retention: dict[str, list] = {}
        for name, hint in options.retention.items():
            schema = program.schemas().get(name)
            if schema is None:
                raise EngineError(f"retention hint for unknown table {name!r}")
            self._retention[name] = [schema.field_position(hint.field), hint.keep_last, None, None]
        # step coalescing merges trigger-less minimal classes into the
        # following step; retention prunes per step, so hints keep the
        # one-class-per-step cadence
        self._coalesce = options.coalesce_steps and not self._retention
        if options.coalesce_steps and self._retention:
            self._note(
                "coalesce_steps disabled: retention hints prune Gamma per "
                "step and require the one-class-per-step cadence"
            )
        # retraction mode: the support index is the whole switch — when
        # None, no hot-path branch below does anything beyond one
        # is-None check, so insert-only runs are byte-identical to the
        # non-retraction build
        self._support: SupportIndex | None = None
        #: triggers re-enqueued by DRed rederivation: fire their rules
        #: again even though the Gamma insert is a duplicate
        self._refire: set[JTuple] = set()
        #: tuples killed by a repair cascade *during the current step's*
        #: phase A — their already-built tasks must no-op (None between
        #: steps; only mutated in the sequential phases)
        self._dead_step: set[JTuple] | None = None
        #: rule identity -> position, for deterministic output keys and
        #: the retraction live-firing index
        self._rule_index: dict[int, int] = {
            id(r): i for i, r in enumerate(program.rules)
        }
        #: sort keys parallel to ``self.output`` (retraction mode keys
        #: every line so retracted lines can be removed exactly)
        self._out_keys: list[tuple] = []
        if options.retraction:
            self._support = SupportIndex()
            if self._coalesce:
                self._coalesce = False
                self._note(
                    "coalesce_steps disabled: retraction repair re-enqueues "
                    "triggers and requires the one-class-per-step cadence"
                )
        self._silent_tables: dict[str, bool] = {}
        self._lock: ContextManager | None = None
        if self.strategy.needs_locks:
            import threading

            self._lock = threading.Lock()
        # execution tier (ExecOptions.execution): how phase B fires and
        # how puts route.  The registry applies the one downgrade table
        # (noting why a requested tier stays off); whatever tier wins,
        # results are byte-identical — tiers change cost, never
        # semantics.  The bound methods are cached on the instance so
        # cascades pay one attribute load, not a dispatch chain.
        self.executor = resolve_executor(self)
        self._fire_one = self.executor.fire_one
        self._handle_puts = self.executor.handle_puts

    # -- construction helpers ------------------------------------------------

    def _note(self, message: str) -> None:
        """Record a knob-override note; under strict causality checking
        the adjustment is also warned, so strict runs never silently
        diverge from their requested configuration."""
        self.stats.note(message)
        if self.options.causality_check == "strict":
            warnings.warn(message, EngineWarning, stacklevel=4)

    @staticmethod
    def _make_strategy(options: ExecOptions) -> Strategy:
        if options.strategy == "sequential":
            return SequentialStrategy(gc=options.gc_model)
        if options.strategy == "forkjoin":
            return ForkJoinStrategy(
                options.threads, calib=options.calib, gc=options.gc_model
            )
        if options.strategy == "chaos":
            return ChaosStrategy(
                seed=options.chaos_seed or 0, fault_plan=options.fault_plan
            )
        if options.strategy == "threads":
            return ThreadStrategy(options.threads)
        if options.strategy == "processes":
            raise EngineError(
                "'processes' is a whole-engine runtime, not a step strategy: "
                "it owns its own supersteps and worker processes, so it "
                "cannot drive a StepKernel (sessions/checkpoints are "
                "unsupported).  Use Program.run(strategy='processes') or "
                "repro.dist.procrun.run_sharded directly"
            )
        raise EngineError(
            f"unknown strategy {options.strategy!r}; valid strategies: "
            "sequential, forkjoin, threads, chaos, processes"
        )

    @staticmethod
    def _make_registry(
        options: ExecOptions, strategy: Strategy, program: Program | None = None
    ) -> StoreRegistry:
        if strategy.concurrent_stores:
            default = lambda schema: ConcurrentSkipListStore(schema)  # noqa: E731
        else:
            default = lambda schema: TreeSetStore(schema)  # noqa: E731
        registry = StoreRegistry(default)
        for name, factory in options.store_overrides.items():
            registry.override(name, factory)
        plan = StepKernel._index_plan(options, program)
        if plan:
            from repro.gamma.indexed import IndexingRegistry

            return IndexingRegistry(registry, plan)
        return registry

    @staticmethod
    def _index_plan(options: ExecOptions, program: Program | None) -> dict:
        """The effective index plan for this run: empty when indexing is
        off, the static planner's output merged with explicit specs in
        ``auto`` mode, the explicit specs alone in ``explicit`` mode.
        -noGamma tables never get indexes (they are never stored), and
        auto mode leaves tables with a hand-chosen ``store_overrides``
        representation alone — an explicit §1.4 commitment beats the
        planner (explicit ``indexes`` entries still apply)."""
        if options.index_mode == "off":
            return {}
        plan: dict[str, tuple] = {}
        if options.index_mode == "auto" and program is not None:
            from repro.gamma.indexplan import plan_indexes

            plan.update(
                (name, specs)
                for name, specs in plan_indexes(program).items()
                if name not in options.store_overrides
            )
        for name, specs in options.indexes.items():
            plan[name] = tuple(specs)
        return {
            name: specs
            for name, specs in plan.items()
            if specs and name not in options.no_gamma
        }

    def _guarded(self) -> ContextManager:
        return self._lock if self._lock is not None else nullcontext()

    def _tt(self, name: str) -> list[int]:
        t = self._table_tallies.get(name)
        if t is None:
            t = self._table_tallies[name] = [0, 0, 0, 0, 0]
        return t

    # -- put routing -------------------------------------------------------------
    #
    # ``self._handle_puts`` and ``self._fire_one`` are the executor's
    # bound methods, cached in __init__ — put routing and single-firing
    # dispatch are the two operations every tier specialises.

    def _immediate(self, tup: JTuple, result: TaskResult) -> None:
        """-noDelta path: straight into Gamma and fire now, inside the
        producing task."""
        name = tup.schema.name
        if name not in self._no_gamma:
            store = self.db.store(name)
            if self._lock is None:
                outcome = self.db.insert(tup)
            else:
                with self._lock:
                    outcome = self.db.insert(tup)
            result.meter.charge_store_op("insert", store)
            if outcome is InsertOutcome.DUPLICATE:
                self._tt(name)[1] += 1
                return
            self._tt(name)[2] += 1
            ep = self._mut_epoch
            if ep:
                # columnar: invalidate in-flight prefetches on this table
                ep[name] += 1
            if self._retention:
                self._note_retained(name, tup)
        else:
            self._tt(name)[3] += 1
        self._fire_rules(tup, result)

    def _note_retained(self, name: str, tup: JTuple) -> None:
        """Advance a retained table's incrementally-tracked max on a NEW
        Gamma insert (satellite of §5 step 4: pruning reads this instead
        of rediscovering the max with a full scan every step)."""
        ent = self._retention.get(name)
        if ent is not None:
            v = tup.values[ent[0]]
            if ent[2] is None or v > ent[2]:
                ent[2] = v

    def _enqueue_delta_batch(
        self, pending: list[tuple[JTuple, CostMeter]]
    ) -> list[bool]:
        """Post-batch (sequential) insertion of a step's deferred puts
        into the Delta tree, each charged to its producing task's meter.
        One :meth:`~repro.core.delta.DeltaTree.insert_batch` call covers
        the whole step; per-put semantics (Gamma-duplicate precheck,
        then Delta dedup) are exactly the former one-at-a-time loop —
        phase C never mutates Gamma, so prechecking all puts up front
        observes the same store state as interleaving would."""
        flags = [False] * len(pending)
        items: list[tuple[JTuple, object]] = []
        idx: list[int] = []
        ng = self._no_gamma
        db = self.db
        tt = self._tt
        # batch tiers: a batch-local repeat always resolves to a Delta
        # dedup — phase C never mutates Gamma, so the repeat sees the
        # same precheck verdict as its first occurrence, and the tree
        # (which already holds or rejected that occurrence) dedups it —
        # so repeats skip the store probe and timestamping entirely
        seen: set[JTuple] | None = set() if self.executor.dedupe_phase_c else None
        for i, (tup, _meter) in enumerate(pending):
            name = tup.schema.name
            if seen is not None:
                if tup in seen:
                    tt(name)[1] += 1
                    continue
                seen.add(tup)
            if name not in ng and tup in db:
                tt(name)[1] += 1
                continue
            items.append((tup, db.timestamp(tup)))
            idx.append(i)
        if not items:
            return flags
        accepted = self.delta.insert_batch(items)
        delta_serial = self._delta_serial
        shared_cost = DEFAULT_WEIGHTS["delta_insert"] * delta_serial
        for k, ok in enumerate(accepted):
            i = idx[k]
            tup, meter = pending[i]
            name = tup.schema.name
            if ok:
                flags[i] = True
                tt(name)[4] += 1
                meter.charge("delta_insert")
                if delta_serial > 0.0:
                    meter.charge_shared("delta", shared_cost)
            else:
                tt(name)[1] += 1
        return flags

    # -- rule firing -------------------------------------------------------------

    def _fire_rules(self, tup: JTuple, result: TaskResult) -> None:
        sup = self._support
        if sup is None:
            for rule in self.program.rules_for(tup.schema.name):
                self._fire_one(rule, tup, result)
            return
        for rule in self.program.rules_for(tup.schema.name):
            # a rederived trigger re-fires only the rules whose firing
            # died; surviving (rule, trigger) firings stay indexed and
            # must not run twice (set semantics).  sup.live is frozen
            # during phase B, so this read is thread-safe.
            if (self._rule_index[id(rule)], tup) in sup.live:
                continue
            self._fire_one(rule, tup, result)

    # -- step machinery -------------------------------------------------------------

    def _new_result(self, trigger: JTuple) -> TaskResult:
        """A task result with a private meter, or — metering off — the
        shared no-op meter (every charge on it is a no-op, so sharing
        the singleton is safe)."""
        if self._metered:
            return TaskResult(trigger=trigger)
        return TaskResult(trigger=trigger, meter=NULL_METER)

    # -- retraction machinery ---------------------------------------------------
    #
    # Classic incremental Datalog maintenance, specialised to the
    # all-minimums engine: counting for the non-recursive case (a
    # derived tuple lives while any firing supports it), DRed-style
    # over-delete/rederive for the recursive case, plus one engine
    # -specific repair — *grown-result invalidation* — for rederivations
    # that descend below an already-fired frontier.  All repair runs in
    # the sequential phases (feed, phase A), so it is deterministic and
    # identical under every strategy.

    def _prepare_retraction_batch(
        self, batch: list[JTuple]
    ) -> list[tuple[JTuple, InsertOutcome, bool, bool]]:
        """Phase A under retraction: per-tuple (outcome, refire, dead),
        with grown-result invalidation and stale-key repair interleaved
        — all sequential, so cascades triggered by one tuple are visible
        to every later tuple of the same class."""
        sup = self._support
        assert sup is not None
        db = self.db
        self._dead_step = set()
        prepared: list[tuple[JTuple, InsertOutcome, bool, bool]] = []
        for tup in batch:
            refire = tup in self._refire
            if refire:
                self._refire.discard(tup)
            if tup in self._dead_step:
                prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                continue
            if tup in db:
                prepared.append((tup, InsertOutcome.DUPLICATE, refire, False))
                continue
            self._invalidate_grown(tup, db.timestamp(tup))
            if tup in self._dead_step:
                prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                continue
            forced = False
            try:
                outcome = db.insert(tup)
            except KeyInvariantError:
                # a rederivation replacing a key's binding: the old
                # binding must be stale *derived* state — kill its
                # supporters and retry.  A conflict with a live base
                # fact is a genuine invariant violation.
                store = db.store(tup.schema.name)
                existing = store.lookup_key(tup.key())
                fids = sup.support.get(existing) if existing is not None else None
                if existing is None or existing in sup.base or not fids:
                    raise
                self._over_delete([], seed_fids=sorted(fids))
                if store.lookup_key(tup.key()) is not None:
                    raise
                forced = True
            if forced:
                if tup in self._dead_step:
                    prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                    continue
                outcome = db.insert(tup)
            prepared.append((tup, outcome, refire, False))
        return prepared

    def _invalidate_grown(self, tup: JTuple, ts: Timestamp) -> None:
        """A NEW tuple whose timestamp lies strictly below an already
        -fired trigger means that trigger's firing queried a region that
        has since *grown* — only possible during repair (forward insert
        -only runs never descend below the frontier).  Any firing whose
        recorded query on this table would have matched the newcomer
        computed its result from incomplete data: kill it so it refires
        against the repaired state.  Equal-timestamp firings are safe —
        phase A inserts the whole class before phase B fires it."""
        sup = self._support
        assert sup is not None
        per_table = sup.queries_by_table.get(tup.schema.name)
        if not per_table:
            return
        db = self.db
        doomed: list[int] = []
        for fid in sorted(per_table):
            rec = sup.firings.get(fid)
            if rec is None or tup in rec.reads or tup == rec.trigger:
                continue
            if compare_timestamps(ts, db.timestamp(rec.trigger)) >= 0:
                continue
            if any(q.matches(tup) for q in per_table[fid]):
                doomed.append(fid)
        if doomed:
            self._over_delete([], seed_fids=doomed)

    def _over_delete(
        self, seed_tuples: list[JTuple], seed_fids: Iterable[int] = ()
    ) -> None:
        """DRed over-delete + rederive.  Kills the seed firings and the
        dependent cone of the seed tuples (everything whose support or
        read set transitively touches them), removes the dead tuples
        from Gamma/Delta, retracts their output lines, then re-enqueues
        every surviving trigger of a dead firing so the engine rederives
        what is still justified."""
        sup = self._support
        assert sup is not None
        db = self.db
        dead_fids: dict[int, None] = {}
        dead_tuples: dict[JTuple, None] = {}
        cleared_tables: dict[str, None] = {}
        work: list[JTuple] = []

        def kill(fid: int) -> None:
            if fid in dead_fids or fid not in sup.firings:
                return
            dead_fids[fid] = None
            rec = sup.firings[fid]
            for name in sorted(rec.native):
                if name in cleared_tables:
                    continue
                # a native bulk write is untracked below table level:
                # the whole table is tainted, so every firing that wrote
                # or read it goes down with this one
                cleared_tables[name] = None
                tainted = set(sup.native_users.get(name, ()))
                tainted.update(sup.queries_by_table.get(name, {}))
                for ofid in sorted(tainted):
                    kill(ofid)
            for t in rec.puts:
                fids = sup.support.get(t)
                if fids is None:
                    continue
                fids.discard(fid)
                if not fids and t not in sup.base and t not in dead_tuples:
                    work.append(t)

        for fid in seed_fids:
            kill(fid)
        work.extend(seed_tuples)
        while work:
            t = work.pop()
            if t in dead_tuples or t in sup.base:
                continue
            if sup.support.get(t):
                continue  # re-supported: counting keeps it alive
            dead_tuples[t] = None
            dependents = set(sup.triggered.get(t, ()))
            dependents.update(sup.readers.get(t, ()))
            for fid in sorted(dependents):
                kill(fid)

        # apply: drop dead firings (and their printed lines), collect
        # surviving triggers for rederivation
        refire: dict[JTuple, None] = {}
        for fid in dead_fids:
            rec = sup.unregister(fid)
            if rec is None:
                continue
            for key, line in rec.out_lines:
                self._remove_output(key, line)
            if (
                rec.trigger not in dead_tuples
                and rec.trigger not in sup.retracted_base
            ):
                refire[rec.trigger] = None
        for name in cleared_tables:
            db.store(name).clear()
        for t in dead_tuples:
            store = db.store(t.schema.name)
            if t in store:
                store.remove(t)
            if t in self.delta:
                self.delta.remove(t, db.timestamp(t))
            self._refire.discard(t)
            if self._dead_step is not None:
                self._dead_step.add(t)
            if self.tracer is not None:
                self.tracer.emit("retract", {"tuple": repr(t)})
            self.stats.retractions += 1

        # rederive: every surviving trigger re-enters Delta at its own
        # timestamp; its next delivery re-fires exactly the rules whose
        # firings died (see _fire_rules' live-skip)
        for trig in refire:
            if trig in dead_tuples or trig not in db:
                continue
            ts = db.timestamp(trig)
            if self.delta.insert(trig, ts):
                self._refire.add(trig)
                self.stats.rederivations += 1
                if self.high_water is not None and (
                    compare_timestamps(ts, self.high_water) < 0
                ):
                    # the repair legitimately travels below the old
                    # frontier; drain() re-advances the mark as the
                    # rederived region settles again
                    self.high_water = ts

    # -- retraction: keyed output ----------------------------------------------

    def _output_key(self, rec: FiringRecord, j: int) -> tuple:
        """Deterministic sort key of one printed line: trigger timestamp
        key, then a trigger tie-break, then rule position, then line
        position within the firing.  Sorting by this key reproduces the
        causal append order whenever at most one firing per equivalence
        class prints (true of every example app: output goes through
        dedicated println tables with singleton classes)."""
        trig = rec.trigger
        ts = self.db.timestamp(trig)
        tie = (trig.schema.name, tuple(repr(v) for v in trig.values))
        return (ts.key, tie, rec.rule_index, j)

    def _insert_output(self, key: tuple, line: str) -> None:
        i = bisect_right(self._out_keys, key)
        self._out_keys.insert(i, key)
        self.output.insert(i, line)

    def _remove_output(self, key: tuple, line: str) -> None:
        i = bisect_left(self._out_keys, key)
        while i < len(self._out_keys) and self._out_keys[i] == key:
            if self.output[i] == line:
                del self._out_keys[i]
                del self.output[i]
                return
            i += 1

    def _register_firing(self, rec: FiringRecord) -> None:
        """Index one firing after its batch joined (submission order, so
        fids are deterministic).  A live (rule, trigger) entry means a
        duplicate delivery already registered this firing — skip."""
        sup = self._support
        assert sup is not None
        if (rec.rule_index, rec.trigger) in sup.live:
            return
        sup.register(rec)
        if rec.lines:
            out = []
            for j, line in enumerate(rec.lines):
                key = self._output_key(rec, j)
                self._insert_output(key, line)
                out.append((key, line))
            rec.out_lines = tuple(out)

    # -- retraction: feed-side event processing ---------------------------------

    def _process_delete(self, tup: JTuple) -> None:
        """Retract one base fact.  Raises :class:`RetractionError` —
        before any mutation — when the tuple is not a retractable base
        fact; duplicate deletes of an already-retracted fact are no-ops
        (chaos duplicate-delivery tolerance)."""
        sup = self._support
        assert sup is not None
        if tup not in sup.base:
            if tup in sup.retracted_base:
                return  # idempotent duplicate delete
            if tup in sup.support or tup in self.db or tup in self.delta:
                raise RetractionError(
                    f"cannot delete {tup!r}: it is a derived tuple, not a "
                    "base fact — only externally fed facts can be retracted"
                )
            raise RetractionError(
                f"cannot delete {tup!r}: it was never inserted as a base fact"
            )
        sup.base.discard(tup)
        sup.retracted_base.add(tup)
        if sup.support.get(tup):
            # counting: live firings still derive it; the fact stays
            # until its last supporter dies
            return
        if tup in self.db:
            self._over_delete([tup])
        elif tup in self.delta:
            self.delta.remove(tup, self.db.timestamp(tup))
            if self.tracer is not None:
                self.tracer.emit("retract", {"tuple": repr(tup), "pending": True})
            self.stats.retractions += 1

    def _feed_events(self, events: Iterable, source: str) -> FeedReport:
        """Retraction-mode feed: events are processed strictly in order
        (an insert after a delete of the same fact re-asserts it).

        The §4 high-water admission gate does not apply here: support
        tracking *subsumes* it.  A tuple below the mark would invalidate
        negative/aggregate answers already computed — which is exactly
        what grown-result invalidation detects and repairs when the
        tuple's class is popped (:meth:`_invalidate_grown`), so every
        insert is admissible and ``admission="strict"/"warn"`` never
        fires on a retraction session.  The price is repair work
        proportional to the firings that observed the late tuple's
        absence — the cost the admission law exists to refuse."""
        sup = self._support
        assert sup is not None
        schemas = self.program.schemas()
        admitted = 0
        result = self._new_result(None)  # type: ignore[arg-type]
        for ev in events:
            is_delete = isinstance(ev, Delete)
            tup = ev.tuple if isinstance(ev, (Insert, Delete)) else ev
            name = tup.schema.name
            if schemas.get(name) is not tup.schema:
                raise UnknownTableError(
                    f"fed tuple {tup!r} belongs to no table of program "
                    f"{self.program.name!r}"
                )
            if is_delete:
                self._process_delete(tup)
                continue
            admitted += 1
            result.meter.charge("tuple_put")
            self.stats.on_put(source, name)
            sup.base.add(tup)
            sup.retracted_base.discard(tup)
            flags = self._enqueue_delta_batch([(tup, result.meter)])
            if self.tracer is not None:
                self.tracer.emit("admit", {"tuple": repr(tup), "accepted": flags[0]})
        if self._metered:
            self.meter.merge(result.meter)
            self.strategy.account_serial(result.meter.total_cost)
        return FeedReport(source=source, admitted=admitted, quarantined=[])

    def _apply_retention(self) -> None:
        """Prune Gamma generations per the lifetime hints (§5 step 4).
        The per-table max is tracked incrementally at insert time
        (:meth:`_note_retained`), so a table is scanned exactly once —
        to collect the doomed generation — and only on the steps where
        its max actually advanced."""
        for name, ent in self._retention.items():
            pos, keep, max_seen, pruned_max = ent
            if max_seen is None or max_seen == pruned_max:
                continue
            store = self.db.store(name)
            cutoff = max_seen - keep + 1
            doomed = [t for t in store.scan() if t.values[pos] < cutoff]
            for t in doomed:
                store.discard(t)
            if doomed:
                self.stats.table(name).gamma_discarded += len(doomed)
            ent[3] = max_seen

    def _class_silent(self, batch: list[JTuple]) -> bool:
        """True iff no tuple of this class triggers any rule — its whole
        effect is the phase-A Gamma insert."""
        silent = self._silent_tables
        for tup in batch:
            name = tup.schema.name
            s = silent.get(name)
            if s is None:
                s = silent[name] = not self.program.rules_for(name)
            if not s:
                return False
        return True

    def _pop_super_batch(self) -> list[JTuple]:
        """Step coalescing (``coalesce_steps``): pop consecutive
        trigger-less minimal classes together with the first triggering
        class as one super-step.  Sound because a silent class fires
        nothing — its tuples only need to be in Gamma before any *later*
        class fires, and phase A inserts the merged batch in pop order
        before phase B runs."""
        batch = self.delta.pop_min_class()
        if not self.delta or not self._class_silent(batch):
            return batch
        out = list(batch)
        while self.delta:
            cls = self.delta.pop_min_class()
            out.extend(cls)
            if not self._class_silent(cls):
                break
        return out

    def _flush_task_events(self, results: list[TaskResult]) -> None:
        """Emit each task's buffered micro events plus a per-task
        summary, in submission order — the only order that is stable
        across strategies."""
        assert self.tracer is not None
        for r in results:
            for kind, data in r.events:
                self.tracer.emit(kind, data)
            self.tracer.emit(
                "task",
                {
                    "trigger": repr(r.trigger),
                    "duplicate": r.duplicate,
                    "fired": list(r.fired_rules),
                    "n_puts": len(r.puts),
                    "n_output": len(r.output),
                    "cost": r.meter.total_cost,
                },
            )

    def _run_step(self, batch: list[JTuple]) -> None:
        self.stats.on_step(len(batch))
        if self.tracer is not None:
            self.tracer.step = self.steps
            self.tracer.emit(
                "step",
                {
                    "step": self.steps,
                    "width": len(batch),
                    "frontier": [repr(t) for t in batch],
                },
            )
        # Phase A (sequential): move the whole class into Gamma, so the
        # rules fired in phase B see every tuple of the class ("positive
        # queries with timestamps <= T", §4) and Gamma stays read-only
        # while the batch fires.  One batched insert resolves each store
        # once per same-table run instead of once per tuple.
        if self._support is not None:
            rprepared = self._prepare_retraction_batch(batch)
            tasks = [
                self.executor.make_task(t, o, refire=rf, dead=dd)
                for t, o, rf, dd in rprepared
            ]
            results = self.strategy.run_batch(tasks)
        else:
            prepared = list(zip(batch, self.db.insert_batch(batch, self._no_gamma)))
            if self._retention:
                for tup, outcome in prepared:
                    if outcome is InsertOutcome.NEW:
                        self._note_retained(tup.schema.name, tup)
            # Phase B: the execution tier fires the class (the scalar
            # tier builds one task per trigger and hands them to the
            # strategy; batch tiers own the whole-class firing loop)
            results = self.executor.fire_class(prepared)
        if self.tracer is not None:
            self._flush_task_events(results)
        if self._support is not None:
            # register this step's firings in submission order (fids —
            # and thus repair order — are deterministic across
            # strategies); output lines enter self.output keyed, here,
            # instead of via the per-result extends below
            for r in results:
                for rec in r.firings:
                    self._register_firing(rec)
        # Phase C (sequential, deterministic order): apply buffered puts
        # as one Delta batch.
        pending = [(put, r.meter) for r in results for put in r.puts]
        if pending:
            flags = self._enqueue_delta_batch(pending)
            if self.tracer is not None:
                for (put, _meter), accepted in zip(pending, flags):
                    self.tracer.emit(
                        "effect", {"tuple": repr(put), "accepted": accepted}
                    )
        if self._retention:
            self._apply_retention()
        if self._support is None:
            # canonical output order: a step is one equivalence class,
            # so sorting its lines by the (ts, trigger, rule, line) key
            # makes the cumulative output a pure function of the firing
            # set — the same order retraction mode maintains via
            # _insert_output — instead of leaking the within-class pop
            # order when several firings of one class print
            step_lines: list[tuple[tuple, str]] = []
            for r in results:
                if r.output:
                    step_lines.extend(zip(r.out_keys, r.output))
            if step_lines:
                if len(step_lines) > 1:
                    step_lines.sort(key=lambda kl: kl[0])
                self.output.extend(line for _key, line in step_lines)
        if self._metered:
            allocations = 0.0
            for r in results:
                allocations += r.meter.count("tuple_put") + r.meter.count("delta_insert")
                self.meter.merge(r.meter)
            retained = float(self.db.heap_tuples())
            self.strategy.account_step(results, allocations=allocations, retained=retained)
        self._dead_step = None

    # -- incremental surface: feed / drain / flush -----------------------------

    def feed(self, tuples: Iterable[JTuple], source: str = "<feed>") -> FeedReport:
        """Admit external tuples into the engine.

        Admission is checked **before** any mutation: a tuple whose
        timestamp is strictly below the high-water mark is rejected
        (``admission="strict"`` raises :class:`CausalityError`; ``"warn"``
        quarantines it with an :class:`AdmissionWarning`), so a strict
        rejection leaves the kernel untouched.  Admitted tuples run as
        one synthetic sequential task — exactly like the old engine's
        initial puts — so -noDelta cascades work during feeding too.

        Under ``ExecOptions(retraction=True)`` the iterable may also
        contain :class:`~repro.core.delta.Insert` / ``Delete`` events
        (plain tuples remain sugar for inserts); see :meth:`_feed_events`.
        """
        if self._support is not None:
            return self._feed_events(tuples, source)
        schemas = self.program.schemas()
        admitted: list[JTuple] = []
        quarantined: list[JTuple] = []
        hwm = self.high_water
        mode = self.options.admission
        for tup in tuples:
            if isinstance(tup, Insert):
                tup = tup.tuple
            elif isinstance(tup, Delete):
                raise EngineError(
                    "feed received a Delete event but retraction is not "
                    "enabled; run with ExecOptions(retraction=True)"
                )
            name = tup.schema.name
            if schemas.get(name) is not tup.schema:
                raise UnknownTableError(
                    f"fed tuple {tup!r} belongs to no table of program "
                    f"{self.program.name!r}"
                )
            if hwm is not None:
                ts = self.db.timestamp(tup)
                if compare_timestamps(ts, hwm) < 0:
                    if mode == "strict":
                        raise CausalityError(
                            f"cannot feed {tup!r}: its timestamp is below the "
                            "completed high-water mark, so admitting it would "
                            "invalidate negative/aggregate answers already "
                            "computed below the mark (§4).  Feed tuples at or "
                            "above the mark, or use "
                            "ExecOptions(admission='warn') to quarantine late "
                            "arrivals"
                        )
                    warnings.warn(
                        f"quarantined late tuple {tup!r}: timestamp below the "
                        "completed high-water mark",
                        AdmissionWarning,
                        stacklevel=3,
                    )
                    quarantined.append(tup)
                    continue
            admitted.append(tup)
        self.quarantined.extend(quarantined)
        result = self._new_result(None)  # type: ignore[arg-type]
        for tup in admitted:
            result.meter.charge("tuple_put")
            self.stats.on_put(source, tup.schema.name)
            if tup.schema.name in self._no_delta:
                self.stats.table(tup.schema.name).delta_bypass += 1
                self._immediate(tup, result)
            else:
                result.puts.append(tup)
        if result.puts:
            pending = [(put, result.meter) for put in result.puts]
            flags = self._enqueue_delta_batch(pending)
            if self.tracer is not None:
                for (put, _meter), accepted in zip(pending, flags):
                    self.tracer.emit("admit", {"tuple": repr(put), "accepted": accepted})
        if self.tracer is not None and result.events:
            for kind, data in result.events:
                self.tracer.emit(kind, data)
        self.output.extend(result.output)
        if self._metered:
            self.meter.merge(result.meter)
            self.strategy.account_serial(result.meter.total_cost)
        if self._retention:
            # -noDelta cascades can run entirely inside a feed (zero
            # engine steps); lifetime hints still apply
            self._apply_retention()
        return FeedReport(source=source, admitted=len(admitted), quarantined=quarantined)

    def drain(self) -> int:
        """Run all-minimums steps until Delta is empty; returns the
        number of steps taken.  Advances the high-water mark to the
        timestamp of each popped class."""
        before = self.steps
        max_steps = self.options.max_steps
        while self.delta:
            if max_steps is not None and self.steps >= max_steps:
                raise EngineError(
                    f"program exceeded max_steps={max_steps}; "
                    f"{len(self.delta)} tuples still pending"
                )
            self.steps += 1
            batch = self._pop_super_batch() if self._coalesce else self.delta.pop_min_class()
            self.high_water = self.db.timestamp(batch[-1])
            self._run_step(batch)
        return self.steps - before

    def flush_stats(self) -> None:
        """Fold all deferred tallies into the collector and reset them,
        so the collector is settle-consistent (and snapshot-complete)."""
        self.stats.absorb_tallies(self._fire_tallies, self._put_tallies)
        self.stats.absorb_table_tallies(self._table_tallies)
        self._fire_tallies.clear()
        self._put_tallies.clear()
        self._table_tallies.clear()
        # the tier flushes first: codegen merges its per-site query
        # counters into the shared plans' rule_hits, which
        # absorb_planned below folds into the collector and clears
        self.executor.flush_stats()
        if self._plans is not None:
            self.stats.absorb_planned(self._plans.plans())
            for plan in self._plans.plans():
                plan.rule_hits.clear()

    # -- trace bookends ---------------------------------------------------------

    def emit_run_start(self) -> None:
        if self.tracer is None:
            return
        fp = self.options.fault_plan
        self.tracer.emit(
            "run-start",
            {
                "program": self.program.name,
                "strategy": self.strategy.name,
                "threads": self.strategy.n_threads,
                "chaos_seed": self.options.chaos_seed,
                "fault_plan": fp.to_dict() if fp is not None else None,
                "task_granularity": self.options.task_granularity,
            },
            meta=True,
        )

    def emit_run_end(self) -> None:
        if self.tracer is None:
            return
        self.tracer.step = self.steps
        self.tracer.emit(
            "run-end",
            {
                "steps": self.steps,
                "output": output_hash(self.output),
                "n_output": len(self.output),
                "table_sizes": dict(sorted(self.db.table_sizes().items())),
            },
        )

    # -- results ----------------------------------------------------------------

    def build_result(self, output: list[str], steps: int, wall: float) -> RunResult:
        return RunResult(
            program=self.program.name,
            strategy=self.strategy.name,
            threads=self.strategy.n_threads,
            output=output,
            wall_time=wall,
            report=self.strategy.report(),
            stats=self.stats,
            table_sizes=self.db.table_sizes(),
            meter=self.meter,
            steps=steps,
            options=self.options,
            database=self.db,
            trace=self.tracer,
        )
