"""The step kernel: pure step machinery of the pseudo-naive engine.

This module is the mechanism half of the §3/§5 run loop, split out of
the old monolithic ``Engine.run`` so that *lifecycle* (open / feed /
settle / checkpoint / close — :class:`repro.core.session.EngineSession`)
and *stepping* (pop the minimal class, fire, apply effects — this
module) evolve independently.  The tuple lifecycle is exactly Fig 3:

1. a rule (or an externally fed ``put``) creates a tuple, which enters
   the **Delta** tree to await processing — unless its table is in the
   ``-noDelta`` set, in which case it goes straight to Gamma and fires
   its rules immediately inside the producing task (§5.1);
2. each step removes the minimal *equivalence class* from Delta,
   inserts those tuples into **Gamma** (unless ``-noGamma``), and fires
   every rule they trigger — one task per tuple, all tasks of the class
   conceptually in parallel (the all-minimums strategy, §5);
3. rules query Gamma; batch effects (new puts) are buffered per task
   and applied in deterministic task order after the batch joins;
4. lifetime hints may discard tuples (``Database.discard``).

Determinism: batches leave the Delta tree in a deterministic order,
effects are applied in task order, so program output is identical under
every strategy and thread count (§1.3) — asserted by the test suite.

Incrementality: :meth:`StepKernel.feed` admits external tuples against
the **high-water mark** — the timestamp of the last popped equivalence
class.  Everything at or above the mark is sound to admit (the engine
has made no commitments there); a tuple strictly below it could
invalidate negative/aggregate answers already computed (§4), so it is
rejected (``admission="strict"``) or quarantined (``"warn"``).

Cost attribution: each task's meter is charged for the Gamma insertion
of its trigger, the rules it fires, the queries they make, and the
Delta insertions of the tuples it put — the *producer* pays for shared
Delta traffic, which is what makes the Delta tree Dijkstra's
scalability bottleneck in Fig 12.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left, bisect_right
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Iterable

from repro.core.database import Database, InsertOutcome
from repro.core.delta import Delete, DeltaTree, Insert
from repro.core.errors import (
    AdmissionWarning,
    CausalityError,
    EngineError,
    EngineWarning,
    KeyInvariantError,
    RetractionError,
    UnknownTableError,
)
from repro.core.ordering import Lit, Timestamp, compare_timestamps
from repro.core.program import ExecOptions, Program
from repro.core.rules import Rule, RuleContext
from repro.core.support import FiringRecord, SupportIndex
from repro.core.tuples import JTuple
from repro.exec.base import EngineTask, Strategy, TaskResult
from repro.exec.chaos import ChaosStrategy
from repro.exec.forkjoin import ForkJoinStrategy
from repro.exec.metering import DEFAULT_WEIGHTS, NULL_METER, CostMeter
from repro.exec.sequential import SequentialStrategy
from repro.exec.threads import ThreadStrategy
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import ConcurrentSkipListStore, TreeSetStore
from repro.plan.batchcompile import (
    BatchBoundPlan,
    BatchPrefetch,
    BatchRuleContext,
    compile_batch_plan,
    put_always_causal,
    put_fast_compare,
)
from repro.plan.cache import PlanCache
from repro.simcore.machine import MachineReport
from repro.stats.collector import StatsCollector
from repro.trace.recorder import TraceRecorder, output_hash

__all__ = ["RunResult", "FeedReport", "StepKernel"]


@dataclass
class RunResult:
    """Everything a run (or one settled increment of a session) produced."""

    program: str
    strategy: str
    threads: int
    output: list[str]
    wall_time: float
    report: MachineReport | None
    stats: StatsCollector
    table_sizes: dict[str, int]
    meter: CostMeter
    steps: int
    options: ExecOptions
    #: None when the caller dropped it (e.g. a serialised result); use
    #: :meth:`require_database` for the advisor/report paths that need it
    database: Database | None = field(repr=False, default=None)
    #: the run's event trace (only when ``ExecOptions.trace`` was set)
    trace: TraceRecorder | None = field(repr=False, default=None)
    #: per-node compute/traffic summaries of a multiprocess sharded run
    #: (:mod:`repro.dist.procrun`); None for single-process runs
    nodes: list[dict] | None = None

    def require_database(self) -> Database:
        """The run's database, or a clear error when it was dropped."""
        if self.database is None:
            raise EngineError(
                "this RunResult carries no database (it was dropped or the "
                "result was deserialised); re-run with the database retained"
            )
        return self.database

    @property
    def virtual_time(self) -> float:
        """Elapsed virtual time (work units); falls back to total cost
        for strategies without a machine."""
        if self.report is not None:
            return self.report.elapsed
        return self.meter.total_cost

    def output_text(self) -> str:
        return "\n".join(self.output)


@dataclass
class FeedReport:
    """What one :meth:`StepKernel.feed` call did with its tuples."""

    source: str
    admitted: int
    #: tuples rejected by the high-water-mark admission check under
    #: ``admission="warn"`` (strict mode raises instead of quarantining)
    quarantined: list[JTuple] = field(default_factory=list)


class StepKernel:
    """Step machinery for one program under one set of options.

    Owns the Delta tree, the Gamma database, the strategy, and all the
    deferred tallies; exposes :meth:`feed` (admission-checked external
    puts), :meth:`drain` (run all-minimums steps until Delta is empty),
    and :meth:`flush_stats` (fold deferred tallies into the collector).
    Lifecycle — when to feed, settle, snapshot, or release the strategy
    — belongs to :class:`repro.core.session.EngineSession`; the
    compatibility shim :class:`repro.core.engine.Engine` drives a whole
    run through a private session.
    """

    def __init__(
        self,
        program: Program,
        options: ExecOptions,
        strategy: Strategy | None = None,
    ):
        program.freeze()
        self.program = program
        self.options = options
        # an injected strategy overrides options.strategy — the trace
        # replayer uses this to run a *scripted* ChaosStrategy, and the
        # chaos test harness to run an intentionally-broken variant
        self.strategy = strategy if strategy is not None else self._make_strategy(options)
        registry = self._make_registry(options, self.strategy, program)
        self.db = Database(program.schemas(), registry, program.decls)
        self.delta = DeltaTree()
        self.stats = StatsCollector()
        self.tracer = TraceRecorder() if options.trace else None
        self.strategy.bind(tracer=self.tracer, stats=self.stats)
        self.output: list[str] = []
        self.meter = CostMeter()  # whole-run aggregate
        self.steps = 0
        #: timestamp of the last popped equivalence class — the feed
        #: admission boundary.  None until the first step completes
        #: (everything is admissible before any commitment is made).
        self.high_water: Timestamp | None = None
        #: tuples rejected by admission under ``admission="warn"``, kept
        #: for inspection (and carried through snapshots)
        self.quarantined: list[JTuple] = []
        self._no_delta = options.no_delta
        self._no_gamma = options.no_gamma
        self._check_mode = options.causality_check
        self._delta_serial = options.calib.delta_serial_fraction
        self._per_rule_tasks = options.task_granularity == "rule"
        # ``metering="off"`` replaces per-task meters with the shared
        # no-op meter — unless the strategy's virtual-time machine
        # consumes meters, in which case metering is forced back on
        self._metered = options.metering == "on" or self.strategy.requires_metering
        if options.metering == "off" and self.strategy.requires_metering:
            self._note(
                f"metering='off' overridden: the {self.strategy.name!r} "
                "strategy's virtual-time machine consumes per-task meters, "
                "so metering was forced back on"
            )
        # compiled query plans, warmed from the program's static access
        # patterns; None -> RuleContext uses the generic build_query path
        self._plans = PlanCache(self.db, program) if options.plan_cache else None
        # columnar (batch) firing: phase B evaluates each rule's
        # predicted queries over the whole popped class at once and
        # serves the firings from the prefetched rows; any firing whose
        # concrete calls diverge from the prediction falls back to the
        # scalar path, so results are byte-identical either way
        self._columnar = False
        #: per--noDelta-table mutation counters — a prefetched result is
        #: only served while its table's epoch is unchanged, because a
        #: -noDelta cascade can insert into Gamma *during* phase B
        self._mut_epoch: dict[str, int] = {}
        self._batch_plans: dict[int, BatchBoundPlan] = {}
        self._batch_ctxs: dict[int, BatchRuleContext] = {}
        self._rule_batch_fires: dict[str, int] = {}
        self._rule_scalar_fires: dict[str, int] = {}
        self._batch_widths: dict[int, int] = {}
        #: tables whose orderby is all-literal: their tuples share one
        #: timestamp per run, cached by name in ``_const_ts``
        self._const_names: frozenset[str] = frozenset()
        self._const_ts: dict[str, Timestamp] = {}
        #: trigger table -> {id(schema): True} for put targets whose
        #: causality check is statically decided (put_always_causal)
        self._put_safe_cache: dict[str, dict[int, object]] = {}
        if options.execution == "columnar":
            self._init_columnar(options, program)
        # deferred stats tallies: (table, rule) -> firings and
        # (rule, table) -> puts, folded into the collector at settle time
        # — totals identical to per-event on_fire/on_put, without paying
        # three hash-structure updates on every firing and put
        self._fire_tallies: dict[tuple[str, str], int] = {}
        self._put_tallies: dict[tuple[str, str], int] = {}
        # same deferral for the per-table Gamma/Delta counters:
        # name -> [delta_bypass, duplicates, gamma_inserts,
        # gamma_skipped, delta_inserts]
        self._table_tallies: dict[str, list[int]] = {}
        # retention hints: table -> mutable
        # [field position, keep_last, max seen, max at last prune];
        # max-seen is maintained incrementally at insert time (NEW
        # outcomes only), so pruning never needs a discovery scan
        self._retention: dict[str, list] = {}
        for name, hint in options.retention.items():
            schema = program.schemas().get(name)
            if schema is None:
                raise EngineError(f"retention hint for unknown table {name!r}")
            self._retention[name] = [schema.field_position(hint.field), hint.keep_last, None, None]
        # step coalescing merges trigger-less minimal classes into the
        # following step; retention prunes per step, so hints keep the
        # one-class-per-step cadence
        self._coalesce = options.coalesce_steps and not self._retention
        if options.coalesce_steps and self._retention:
            self._note(
                "coalesce_steps disabled: retention hints prune Gamma per "
                "step and require the one-class-per-step cadence"
            )
        # retraction mode: the support index is the whole switch — when
        # None, no hot-path branch below does anything beyond one
        # is-None check, so insert-only runs are byte-identical to the
        # non-retraction build
        self._support: SupportIndex | None = None
        #: triggers re-enqueued by DRed rederivation: fire their rules
        #: again even though the Gamma insert is a duplicate
        self._refire: set[JTuple] = set()
        #: tuples killed by a repair cascade *during the current step's*
        #: phase A — their already-built tasks must no-op (None between
        #: steps; only mutated in the sequential phases)
        self._dead_step: set[JTuple] | None = None
        #: rule identity -> position, for deterministic output keys and
        #: the retraction live-firing index
        self._rule_index: dict[int, int] = {
            id(r): i for i, r in enumerate(program.rules)
        }
        #: sort keys parallel to ``self.output`` (retraction mode keys
        #: every line so retracted lines can be removed exactly)
        self._out_keys: list[tuple] = []
        if options.retraction:
            self._support = SupportIndex()
            if self._coalesce:
                self._coalesce = False
                self._note(
                    "coalesce_steps disabled: retraction repair re-enqueues "
                    "triggers and requires the one-class-per-step cadence"
                )
        self._silent_tables: dict[str, bool] = {}
        self._lock: ContextManager | None = None
        if self.strategy.needs_locks:
            import threading

            self._lock = threading.Lock()

    # -- construction helpers ------------------------------------------------

    def _note(self, message: str) -> None:
        """Record a knob-override note; under strict causality checking
        the adjustment is also warned, so strict runs never silently
        diverge from their requested configuration."""
        self.stats.note(message)
        if self.options.causality_check == "strict":
            warnings.warn(message, EngineWarning, stacklevel=4)

    def _init_columnar(self, options: ExecOptions, program: Program) -> None:
        """Arm the batch firing path, or note why it stays off.  Either
        way the run's results are identical — columnar is purely an
        execution tier."""
        if not isinstance(self.strategy, SequentialStrategy):
            self._note(
                "execution='columnar' ignored: the batch firing path is "
                f"sequential-only and this run uses the {self.strategy.name!r} "
                "strategy; all rules fire through the scalar path"
            )
            return
        if self._plans is None:
            self._note(
                "execution='columnar' ignored: batch plans build on the "
                "compiled-plan cache, which plan_cache=False disables"
            )
            return
        self._columnar = True
        if self._metered:
            self._metered = False
            self._note(
                "metering downgraded to 'off' under execution='columnar': "
                "the batch firing path shares one no-op meter across each "
                "class (results are identical; per-task costs are not "
                "collected)"
            )
        self._mut_epoch = {name: 0 for name in options.no_delta}
        self._const_names = frozenset(
            name
            for name, schema in program.schemas().items()
            if all(isinstance(e, Lit) for e in schema.orderby)
        )
        check_off = options.causality_check == "off"
        for rule in program.rules:
            # rules whose negative/aggregate queries are dynamically
            # adjudicated need a concrete Query per call; they keep the
            # scalar path (and their exact warning behaviour)
            if not (check_off or rule.assume_stratified):
                continue
            compiled = compile_batch_plan(rule)
            if compiled is not None:
                self._batch_plans[id(rule)] = compiled.bind(
                    self.db, self._plans, self._mut_epoch
                )
        # every firing — popped or cascaded — now routes through the
        # slim reused-context path (instance attribute shadows the
        # class method, so _fire_rules picks it up unchanged); put
        # routing takes the run-hoisted cascade loop
        self._fire_one = self._fire_one_columnar  # type: ignore[method-assign]
        self._handle_puts = self._handle_puts_columnar  # type: ignore[method-assign]

    @staticmethod
    def _make_strategy(options: ExecOptions) -> Strategy:
        if options.strategy == "sequential":
            return SequentialStrategy(gc=options.gc_model)
        if options.strategy == "forkjoin":
            return ForkJoinStrategy(
                options.threads, calib=options.calib, gc=options.gc_model
            )
        if options.strategy == "chaos":
            return ChaosStrategy(
                seed=options.chaos_seed or 0, fault_plan=options.fault_plan
            )
        if options.strategy == "threads":
            return ThreadStrategy(options.threads)
        if options.strategy == "processes":
            raise EngineError(
                "'processes' is a whole-engine runtime, not a step strategy: "
                "it owns its own supersteps and worker processes, so it "
                "cannot drive a StepKernel (sessions/checkpoints are "
                "unsupported).  Use Program.run(strategy='processes') or "
                "repro.dist.procrun.run_sharded directly"
            )
        raise EngineError(
            f"unknown strategy {options.strategy!r}; valid strategies: "
            "sequential, forkjoin, threads, chaos, processes"
        )

    @staticmethod
    def _make_registry(
        options: ExecOptions, strategy: Strategy, program: Program | None = None
    ) -> StoreRegistry:
        if strategy.concurrent_stores:
            default = lambda schema: ConcurrentSkipListStore(schema)  # noqa: E731
        else:
            default = lambda schema: TreeSetStore(schema)  # noqa: E731
        registry = StoreRegistry(default)
        for name, factory in options.store_overrides.items():
            registry.override(name, factory)
        plan = StepKernel._index_plan(options, program)
        if plan:
            from repro.gamma.indexed import IndexingRegistry

            return IndexingRegistry(registry, plan)
        return registry

    @staticmethod
    def _index_plan(options: ExecOptions, program: Program | None) -> dict:
        """The effective index plan for this run: empty when indexing is
        off, the static planner's output merged with explicit specs in
        ``auto`` mode, the explicit specs alone in ``explicit`` mode.
        -noGamma tables never get indexes (they are never stored), and
        auto mode leaves tables with a hand-chosen ``store_overrides``
        representation alone — an explicit §1.4 commitment beats the
        planner (explicit ``indexes`` entries still apply)."""
        if options.index_mode == "off":
            return {}
        plan: dict[str, tuple] = {}
        if options.index_mode == "auto" and program is not None:
            from repro.gamma.indexplan import plan_indexes

            plan.update(
                (name, specs)
                for name, specs in plan_indexes(program).items()
                if name not in options.store_overrides
            )
        for name, specs in options.indexes.items():
            plan[name] = tuple(specs)
        return {
            name: specs
            for name, specs in plan.items()
            if specs and name not in options.no_gamma
        }

    def _guarded(self) -> ContextManager:
        return self._lock if self._lock is not None else nullcontext()

    def _tt(self, name: str) -> list[int]:
        t = self._table_tallies.get(name)
        if t is None:
            t = self._table_tallies[name] = [0, 0, 0, 0, 0]
        return t

    # -- put routing -------------------------------------------------------------

    def _handle_puts(self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str) -> None:
        """Route a rule's puts.  -noDelta tables cascade immediately
        inside the producing task (§5.1); everything else is buffered on
        the task result and enters Delta after the batch joins — which
        keeps Delta mutation out of the parallel phase and effect order
        deterministic."""
        tallies = self._put_tallies
        for tup in ctx_puts:
            name = tup.schema.name
            key = (rule_name, name)
            tallies[key] = tallies.get(key, 0) + 1
            if name in self._no_delta:
                self._tt(name)[0] += 1
                self._immediate(tup, result)
            else:
                result.puts.append(tup)

    def _put_safe_for(self, name: str, schema) -> dict[int, object]:
        """Build (and cache) the per-trigger-table put-check map:
        ``True`` for statically-causal targets (:func:`put_always_causal`),
        a ``(put_pos, trig_pos)`` pair for seq-comparable ones
        (:func:`put_fast_compare`); everything else stays on the full
        dynamic §4 comparison."""
        decls = self.program.decls
        psafe: dict[int, object] = {}
        for s in self.program.schemas().values():
            if put_always_causal(s, schema, decls):
                psafe[id(s)] = True
            else:
                fc = put_fast_compare(s, schema)
                if fc is not None:
                    psafe[id(s)] = fc
        self._put_safe_cache[name] = psafe
        return psafe

    def _handle_puts_columnar(
        self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str
    ) -> None:
        """:meth:`_handle_puts` for the columnar tier: same routing and
        per-tuple depth-first cascade order, with the store / rule-list
        / tally lookups hoisted per same-table run — -noDelta cascades
        put thousands of same-table tuples per firing, and this loop is
        where they spend phase B."""
        tallies = self._put_tallies
        nd = self._no_delta
        buffered = result.puts
        insert_into = self.db._insert_into
        fire = self._fire_one_columnar
        ep = self._mut_epoch
        cur: str | None = None
        tt = rules = ret = store = None
        in_gamma = False
        for tup in ctx_puts:
            name = tup.schema.name
            key = (rule_name, name)
            tallies[key] = tallies.get(key, 0) + 1
            if name not in nd:
                buffered.append(tup)
                continue
            if name != cur:
                cur = name
                tt = self._tt(name)
                in_gamma = name not in self._no_gamma
                store = self.db.store(name) if in_gamma else None
                rules = self.program.rules_for(name)
                ret = self._retention.get(name)
            tt[0] += 1
            if in_gamma:
                if insert_into(store, tup) is InsertOutcome.DUPLICATE:
                    tt[1] += 1
                    continue
                tt[2] += 1
                ep[name] += 1
                if ret is not None:
                    v = tup.values[ret[0]]
                    if ret[2] is None or v > ret[2]:
                        ret[2] = v
            else:
                tt[3] += 1
            for rule in rules:
                fire(rule, tup, result)

    def _immediate(self, tup: JTuple, result: TaskResult) -> None:
        """-noDelta path: straight into Gamma and fire now, inside the
        producing task."""
        name = tup.schema.name
        if name not in self._no_gamma:
            store = self.db.store(name)
            if self._lock is None:
                outcome = self.db.insert(tup)
            else:
                with self._lock:
                    outcome = self.db.insert(tup)
            result.meter.charge_store_op("insert", store)
            if outcome is InsertOutcome.DUPLICATE:
                self._tt(name)[1] += 1
                return
            self._tt(name)[2] += 1
            ep = self._mut_epoch
            if ep:
                # columnar: invalidate in-flight prefetches on this table
                ep[name] += 1
            if self._retention:
                self._note_retained(name, tup)
        else:
            self._tt(name)[3] += 1
        self._fire_rules(tup, result)

    def _note_retained(self, name: str, tup: JTuple) -> None:
        """Advance a retained table's incrementally-tracked max on a NEW
        Gamma insert (satellite of §5 step 4: pruning reads this instead
        of rediscovering the max with a full scan every step)."""
        ent = self._retention.get(name)
        if ent is not None:
            v = tup.values[ent[0]]
            if ent[2] is None or v > ent[2]:
                ent[2] = v

    def _enqueue_delta_batch(
        self, pending: list[tuple[JTuple, CostMeter]]
    ) -> list[bool]:
        """Post-batch (sequential) insertion of a step's deferred puts
        into the Delta tree, each charged to its producing task's meter.
        One :meth:`~repro.core.delta.DeltaTree.insert_batch` call covers
        the whole step; per-put semantics (Gamma-duplicate precheck,
        then Delta dedup) are exactly the former one-at-a-time loop —
        phase C never mutates Gamma, so prechecking all puts up front
        observes the same store state as interleaving would."""
        flags = [False] * len(pending)
        items: list[tuple[JTuple, object]] = []
        idx: list[int] = []
        ng = self._no_gamma
        db = self.db
        tt = self._tt
        # columnar tier: a batch-local repeat always resolves to a Delta
        # dedup — phase C never mutates Gamma, so the repeat sees the
        # same precheck verdict as its first occurrence, and the tree
        # (which already holds or rejected that occurrence) dedups it —
        # so repeats skip the store probe and timestamping entirely
        seen: set[JTuple] | None = set() if self._columnar else None
        for i, (tup, _meter) in enumerate(pending):
            name = tup.schema.name
            if seen is not None:
                if tup in seen:
                    tt(name)[1] += 1
                    continue
                seen.add(tup)
            if name not in ng and tup in db:
                tt(name)[1] += 1
                continue
            items.append((tup, db.timestamp(tup)))
            idx.append(i)
        if not items:
            return flags
        accepted = self.delta.insert_batch(items)
        delta_serial = self._delta_serial
        shared_cost = DEFAULT_WEIGHTS["delta_insert"] * delta_serial
        for k, ok in enumerate(accepted):
            i = idx[k]
            tup, meter = pending[i]
            name = tup.schema.name
            if ok:
                flags[i] = True
                tt(name)[4] += 1
                meter.charge("delta_insert")
                if delta_serial > 0.0:
                    meter.charge_shared("delta", shared_cost)
            else:
                tt(name)[1] += 1
        return flags

    # -- rule firing -------------------------------------------------------------

    def _fire_rules(self, tup: JTuple, result: TaskResult) -> None:
        sup = self._support
        if sup is None:
            for rule in self.program.rules_for(tup.schema.name):
                self._fire_one(rule, tup, result)
            return
        for rule in self.program.rules_for(tup.schema.name):
            # a rederived trigger re-fires only the rules whose firing
            # died; surviving (rule, trigger) firings stay indexed and
            # must not run twice (set semantics).  sup.live is frozen
            # during phase B, so this read is thread-safe.
            if (self._rule_index[id(rule)], tup) in sup.live:
                continue
            self._fire_one(rule, tup, result)

    def _fire_one(self, rule: Rule, tup: JTuple, result: TaskResult) -> None:
        tallies = self._fire_tallies
        key = (tup.schema.name, rule.name)
        tallies[key] = tallies.get(key, 0) + 1
        result.meter.charge("rule_fire")
        rec = (
            FiringRecord(rule.name, self._rule_index[id(rule)], tup)
            if self._support is not None
            else None
        )
        ctx = RuleContext(
            self.db,
            self.program.decls,
            result.meter,
            rule,
            tup,
            self.db.timestamp(tup),
            self._check_mode,
            self.stats,
            self._lock,
            self.strategy.yield_point,
            result.events if self.tracer is not None else None,
            self._plans,
            rec,
        )
        rule.body(ctx, tup)
        ctx.finish()
        result.fired_rules.append(rule.name)
        if ctx.output:
            result.output.extend(ctx.output)
            if rec is None:
                # same key shape as _output_key, so the per-step sort in
                # _run_step reproduces the keyed order retraction mode
                # maintains via _insert_output
                tie = (tup.schema.name, tuple(repr(v) for v in tup.values))
                ridx = self._rule_index[id(rule)]
                result.out_keys.extend(
                    (ctx.trigger_ts.key, tie, ridx, j)
                    for j in range(len(ctx.output))
                )
            self.stats.rule(rule.name).output_lines += len(ctx.output)
        if rec is not None:
            rec.puts = tuple(ctx.puts)
            rec.lines = tuple(ctx.output)
            result.firings.append(rec)
        self._handle_puts(ctx.puts, result, rule.name)

    def _fire_one_columnar(
        self,
        rule: Rule,
        tup: JTuple,
        result: TaskResult,
        pf: BatchPrefetch | None = None,
        pfi: int = 0,
    ) -> None:
        """Columnar analogue of :meth:`_fire_one`: fire through the
        rule's reused :class:`BatchRuleContext`, serving predicted
        queries from the class prefetch (``pf``/``pfi``; cascade
        firings arrive with no prefetch and run the plain planned
        path).  Everything observable — puts, output keys, stats
        tallies, trace events — is identical to the scalar method."""
        name = tup.schema.name
        tallies = self._fire_tallies
        key = (name, rule.name)
        tallies[key] = tallies.get(key, 0) + 1
        counts = (
            self._rule_batch_fires if pf is not None else self._rule_scalar_fires
        )
        counts[rule.name] = counts.get(rule.name, 0) + 1
        trace = result.events if self.tracer is not None else None
        # constant-orderby tables share one timestamp object per run;
        # for them the per-trigger memo probe (a whole-tuple hash) is
        # replaced by one name lookup
        ts = self._const_ts.get(name)
        if ts is None:
            ts = self.db.timestamp(tup)
            if name in self._const_names:
                self._const_ts[name] = ts
        psafe = self._put_safe_cache.get(name)
        if psafe is None:
            psafe = self._put_safe_for(name, tup.schema)
        rid = id(rule)
        ctx = self._batch_ctxs.get(rid)
        if ctx is None or ctx.in_use:
            # first firing of the rule, or a -noDelta cascade re-entered
            # it while an outer firing still owns the shared context
            fresh = BatchRuleContext(
                self.db,
                self.program.decls,
                NULL_METER,
                rule,
                tup,
                ts,
                self._check_mode,
                self.stats,
                self._lock,
                self.strategy.yield_point,
                trace,
                self._plans,
                None,
            )
            fresh._pf = pf
            fresh._pfi = pfi
            fresh._put_safe = psafe
            if ctx is None:
                self._batch_ctxs[rid] = fresh
                fresh.in_use = True
            ctx = fresh
        else:
            ctx.in_use = True
            ctx.reset(tup, ts, trace, pf, pfi, psafe)
        rule.body(ctx, tup)
        ctx.finish()
        if self.tracer is not None:
            result.fired_rules.append(rule.name)
        if ctx.output:
            result.output.extend(ctx.output)
            tie = (tup.schema.name, tuple(repr(v) for v in tup.values))
            ridx = self._rule_index[id(rule)]
            result.out_keys.extend(
                (ctx.trigger_ts.key, tie, ridx, j)
                for j in range(len(ctx.output))
            )
            self.stats.rule(rule.name).output_lines += len(ctx.output)
        puts = ctx.puts
        # release before routing puts: a -noDelta cascade triggered by
        # them may legitimately re-fire this same rule, and ctx.reset
        # rebinds (never mutates) the lists captured above
        ctx.in_use = False
        if puts:
            self._handle_puts(puts, result, rule.name)

    def _fire_batch(self, prepared: list[tuple[JTuple, InsertOutcome | None]]) -> list[TaskResult]:
        """Columnar phase B: prefetch each rule's predicted queries
        over the whole class, then fire every (trigger, rule) pair in
        the scalar submission order through the slim context path.

        Tracing gets one :class:`TaskResult` per trigger (so the task
        events match the scalar trace byte for byte); otherwise the
        whole class shares a single sink result, whose ``puts`` /
        ``output`` accumulate in exactly the order the per-task results
        would concatenate to."""
        by_table: dict[str, list[JTuple]] = {}
        ordinals: list[int] = []
        for tup, outcome in prepared:
            if outcome is InsertOutcome.DUPLICATE:
                ordinals.append(-1)
                continue
            lst = by_table.get(tup.schema.name)
            if lst is None:
                lst = by_table[tup.schema.name] = []
            ordinals.append(len(lst))
            lst.append(tup)
        prefetches: dict[int, BatchPrefetch] = {}
        bplans = self._batch_plans
        if bplans:
            widths = self._batch_widths
            for name, triggers in by_table.items():
                for rule in self.program.rules_for(name):
                    bp = bplans.get(id(rule))
                    if bp is None:
                        continue
                    pf, n_probes = bp.prefetch(triggers)
                    prefetches[id(rule)] = pf
                    if n_probes:
                        self.meter.charge("gamma_batchselect", n=n_probes)
                    w = len(triggers)
                    widths[w] = widths.get(w, 0) + 1
        tracer = self.tracer
        results: list[TaskResult] = []
        sink = None
        if tracer is None:
            sink = TaskResult(trigger=None, meter=NULL_METER)  # type: ignore[arg-type]
            results.append(sink)
        rules_for = self.program.rules_for
        tt = self._tt
        fire = self._fire_one_columnar
        get_pf = prefetches.get
        for (tup, outcome), ordinal in zip(prepared, ordinals):
            name = tup.schema.name
            if tracer is not None:
                result = TaskResult(trigger=tup, meter=NULL_METER)
                results.append(result)
            else:
                result = sink  # type: ignore[assignment]
            if outcome is InsertOutcome.DUPLICATE:
                result.duplicate = True
                tt(name)[1] += 1
                continue
            if outcome is None:  # -noGamma table
                tt(name)[3] += 1
            else:
                tt(name)[2] += 1
            for rule in rules_for(name):
                fire(rule, tup, result, get_pf(id(rule)), ordinal)
        return results

    # -- step machinery -------------------------------------------------------------

    def _new_result(self, trigger: JTuple) -> TaskResult:
        """A task result with a private meter, or — metering off — the
        shared no-op meter (every charge on it is a no-op, so sharing
        the singleton is safe)."""
        if self._metered:
            return TaskResult(trigger=trigger)
        return TaskResult(trigger=trigger, meter=NULL_METER)

    def _make_task(
        self,
        tup: JTuple,
        outcome: InsertOutcome | None,
        refire: bool = False,
        dead: bool = False,
    ) -> EngineTask:
        """Task closure for one popped tuple.  ``outcome`` is the Gamma
        insertion result decided in the sequential prepare phase; the
        task charges for it and fires the triggered rules.  Retraction
        mode adds ``refire`` (fire even though the Gamma insert is a
        duplicate — DRed rederivation) and ``dead`` (the tuple was
        killed by a repair cascade after it was popped — behave like a
        duplicate, trace-stable)."""

        def run() -> TaskResult:
            result = self._new_result(tup)
            result.meter.charge("delta_pop")
            name = tup.schema.name
            dead_now = dead or (
                self._dead_step is not None and tup in self._dead_step
            )
            if dead_now:
                result.duplicate = True
                self._tt(name)[1] += 1
                return result
            if outcome is None:  # -noGamma table
                self._tt(name)[3] += 1
            else:
                result.meter.charge_store_op("insert", self.db.store(name))
                if outcome is InsertOutcome.DUPLICATE:
                    self._tt(name)[1] += 1
                    if not refire:
                        result.duplicate = True
                        return result
                else:
                    self._tt(name)[2] += 1
            self._fire_rules(tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _make_rule_task(
        self,
        tup: JTuple,
        rule: Rule,
        outcome: InsertOutcome | None,
        charge_insert: bool,
    ) -> EngineTask:
        """§5.2's first extension: "we could create one task per rule
        that is triggered".  The first rule task of a tuple also pays
        its Delta-pop and Gamma-insert costs."""

        def run() -> TaskResult:
            result = self._new_result(tup)
            name = tup.schema.name
            if charge_insert:
                result.meter.charge("delta_pop")
                if outcome is None:
                    self._tt(name)[3] += 1
                else:
                    result.meter.charge_store_op("insert", self.db.store(name))
                    self._tt(name)[2] += 1
            self._fire_one(rule, tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _build_tasks(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[EngineTask]:
        if not self._per_rule_tasks:
            return [self._make_task(tup, outcome) for tup, outcome in prepared]
        tasks: list[EngineTask] = []
        for tup, outcome in prepared:
            if outcome is InsertOutcome.DUPLICATE:
                tasks.append(self._make_task(tup, outcome))  # dup bookkeeping
                continue
            rules = self.program.rules_for(tup.schema.name)
            if not rules:
                tasks.append(self._make_task(tup, outcome))
                continue
            for i, rule in enumerate(rules):
                tasks.append(self._make_rule_task(tup, rule, outcome, charge_insert=i == 0))
        return tasks

    # -- retraction machinery ---------------------------------------------------
    #
    # Classic incremental Datalog maintenance, specialised to the
    # all-minimums engine: counting for the non-recursive case (a
    # derived tuple lives while any firing supports it), DRed-style
    # over-delete/rederive for the recursive case, plus one engine
    # -specific repair — *grown-result invalidation* — for rederivations
    # that descend below an already-fired frontier.  All repair runs in
    # the sequential phases (feed, phase A), so it is deterministic and
    # identical under every strategy.

    def _prepare_retraction_batch(
        self, batch: list[JTuple]
    ) -> list[tuple[JTuple, InsertOutcome, bool, bool]]:
        """Phase A under retraction: per-tuple (outcome, refire, dead),
        with grown-result invalidation and stale-key repair interleaved
        — all sequential, so cascades triggered by one tuple are visible
        to every later tuple of the same class."""
        sup = self._support
        assert sup is not None
        db = self.db
        self._dead_step = set()
        prepared: list[tuple[JTuple, InsertOutcome, bool, bool]] = []
        for tup in batch:
            refire = tup in self._refire
            if refire:
                self._refire.discard(tup)
            if tup in self._dead_step:
                prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                continue
            if tup in db:
                prepared.append((tup, InsertOutcome.DUPLICATE, refire, False))
                continue
            self._invalidate_grown(tup, db.timestamp(tup))
            if tup in self._dead_step:
                prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                continue
            forced = False
            try:
                outcome = db.insert(tup)
            except KeyInvariantError:
                # a rederivation replacing a key's binding: the old
                # binding must be stale *derived* state — kill its
                # supporters and retry.  A conflict with a live base
                # fact is a genuine invariant violation.
                store = db.store(tup.schema.name)
                existing = store.lookup_key(tup.key())
                fids = sup.support.get(existing) if existing is not None else None
                if existing is None or existing in sup.base or not fids:
                    raise
                self._over_delete([], seed_fids=sorted(fids))
                if store.lookup_key(tup.key()) is not None:
                    raise
                forced = True
            if forced:
                if tup in self._dead_step:
                    prepared.append((tup, InsertOutcome.DUPLICATE, False, True))
                    continue
                outcome = db.insert(tup)
            prepared.append((tup, outcome, refire, False))
        return prepared

    def _invalidate_grown(self, tup: JTuple, ts: Timestamp) -> None:
        """A NEW tuple whose timestamp lies strictly below an already
        -fired trigger means that trigger's firing queried a region that
        has since *grown* — only possible during repair (forward insert
        -only runs never descend below the frontier).  Any firing whose
        recorded query on this table would have matched the newcomer
        computed its result from incomplete data: kill it so it refires
        against the repaired state.  Equal-timestamp firings are safe —
        phase A inserts the whole class before phase B fires it."""
        sup = self._support
        assert sup is not None
        per_table = sup.queries_by_table.get(tup.schema.name)
        if not per_table:
            return
        db = self.db
        doomed: list[int] = []
        for fid in sorted(per_table):
            rec = sup.firings.get(fid)
            if rec is None or tup in rec.reads or tup == rec.trigger:
                continue
            if compare_timestamps(ts, db.timestamp(rec.trigger)) >= 0:
                continue
            if any(q.matches(tup) for q in per_table[fid]):
                doomed.append(fid)
        if doomed:
            self._over_delete([], seed_fids=doomed)

    def _over_delete(
        self, seed_tuples: list[JTuple], seed_fids: Iterable[int] = ()
    ) -> None:
        """DRed over-delete + rederive.  Kills the seed firings and the
        dependent cone of the seed tuples (everything whose support or
        read set transitively touches them), removes the dead tuples
        from Gamma/Delta, retracts their output lines, then re-enqueues
        every surviving trigger of a dead firing so the engine rederives
        what is still justified."""
        sup = self._support
        assert sup is not None
        db = self.db
        dead_fids: dict[int, None] = {}
        dead_tuples: dict[JTuple, None] = {}
        cleared_tables: dict[str, None] = {}
        work: list[JTuple] = []

        def kill(fid: int) -> None:
            if fid in dead_fids or fid not in sup.firings:
                return
            dead_fids[fid] = None
            rec = sup.firings[fid]
            for name in sorted(rec.native):
                if name in cleared_tables:
                    continue
                # a native bulk write is untracked below table level:
                # the whole table is tainted, so every firing that wrote
                # or read it goes down with this one
                cleared_tables[name] = None
                tainted = set(sup.native_users.get(name, ()))
                tainted.update(sup.queries_by_table.get(name, {}))
                for ofid in sorted(tainted):
                    kill(ofid)
            for t in rec.puts:
                fids = sup.support.get(t)
                if fids is None:
                    continue
                fids.discard(fid)
                if not fids and t not in sup.base and t not in dead_tuples:
                    work.append(t)

        for fid in seed_fids:
            kill(fid)
        work.extend(seed_tuples)
        while work:
            t = work.pop()
            if t in dead_tuples or t in sup.base:
                continue
            if sup.support.get(t):
                continue  # re-supported: counting keeps it alive
            dead_tuples[t] = None
            dependents = set(sup.triggered.get(t, ()))
            dependents.update(sup.readers.get(t, ()))
            for fid in sorted(dependents):
                kill(fid)

        # apply: drop dead firings (and their printed lines), collect
        # surviving triggers for rederivation
        refire: dict[JTuple, None] = {}
        for fid in dead_fids:
            rec = sup.unregister(fid)
            if rec is None:
                continue
            for key, line in rec.out_lines:
                self._remove_output(key, line)
            if (
                rec.trigger not in dead_tuples
                and rec.trigger not in sup.retracted_base
            ):
                refire[rec.trigger] = None
        for name in cleared_tables:
            db.store(name).clear()
        for t in dead_tuples:
            store = db.store(t.schema.name)
            if t in store:
                store.remove(t)
            if t in self.delta:
                self.delta.remove(t, db.timestamp(t))
            self._refire.discard(t)
            if self._dead_step is not None:
                self._dead_step.add(t)
            if self.tracer is not None:
                self.tracer.emit("retract", {"tuple": repr(t)})
            self.stats.retractions += 1

        # rederive: every surviving trigger re-enters Delta at its own
        # timestamp; its next delivery re-fires exactly the rules whose
        # firings died (see _fire_rules' live-skip)
        for trig in refire:
            if trig in dead_tuples or trig not in db:
                continue
            ts = db.timestamp(trig)
            if self.delta.insert(trig, ts):
                self._refire.add(trig)
                self.stats.rederivations += 1
                if self.high_water is not None and (
                    compare_timestamps(ts, self.high_water) < 0
                ):
                    # the repair legitimately travels below the old
                    # frontier; drain() re-advances the mark as the
                    # rederived region settles again
                    self.high_water = ts

    # -- retraction: keyed output ----------------------------------------------

    def _output_key(self, rec: FiringRecord, j: int) -> tuple:
        """Deterministic sort key of one printed line: trigger timestamp
        key, then a trigger tie-break, then rule position, then line
        position within the firing.  Sorting by this key reproduces the
        causal append order whenever at most one firing per equivalence
        class prints (true of every example app: output goes through
        dedicated println tables with singleton classes)."""
        trig = rec.trigger
        ts = self.db.timestamp(trig)
        tie = (trig.schema.name, tuple(repr(v) for v in trig.values))
        return (ts.key, tie, rec.rule_index, j)

    def _insert_output(self, key: tuple, line: str) -> None:
        i = bisect_right(self._out_keys, key)
        self._out_keys.insert(i, key)
        self.output.insert(i, line)

    def _remove_output(self, key: tuple, line: str) -> None:
        i = bisect_left(self._out_keys, key)
        while i < len(self._out_keys) and self._out_keys[i] == key:
            if self.output[i] == line:
                del self._out_keys[i]
                del self.output[i]
                return
            i += 1

    def _register_firing(self, rec: FiringRecord) -> None:
        """Index one firing after its batch joined (submission order, so
        fids are deterministic).  A live (rule, trigger) entry means a
        duplicate delivery already registered this firing — skip."""
        sup = self._support
        assert sup is not None
        if (rec.rule_index, rec.trigger) in sup.live:
            return
        sup.register(rec)
        if rec.lines:
            out = []
            for j, line in enumerate(rec.lines):
                key = self._output_key(rec, j)
                self._insert_output(key, line)
                out.append((key, line))
            rec.out_lines = tuple(out)

    # -- retraction: feed-side event processing ---------------------------------

    def _process_delete(self, tup: JTuple) -> None:
        """Retract one base fact.  Raises :class:`RetractionError` —
        before any mutation — when the tuple is not a retractable base
        fact; duplicate deletes of an already-retracted fact are no-ops
        (chaos duplicate-delivery tolerance)."""
        sup = self._support
        assert sup is not None
        if tup not in sup.base:
            if tup in sup.retracted_base:
                return  # idempotent duplicate delete
            if tup in sup.support or tup in self.db or tup in self.delta:
                raise RetractionError(
                    f"cannot delete {tup!r}: it is a derived tuple, not a "
                    "base fact — only externally fed facts can be retracted"
                )
            raise RetractionError(
                f"cannot delete {tup!r}: it was never inserted as a base fact"
            )
        sup.base.discard(tup)
        sup.retracted_base.add(tup)
        if sup.support.get(tup):
            # counting: live firings still derive it; the fact stays
            # until its last supporter dies
            return
        if tup in self.db:
            self._over_delete([tup])
        elif tup in self.delta:
            self.delta.remove(tup, self.db.timestamp(tup))
            if self.tracer is not None:
                self.tracer.emit("retract", {"tuple": repr(tup), "pending": True})
            self.stats.retractions += 1

    def _feed_events(self, events: Iterable, source: str) -> FeedReport:
        """Retraction-mode feed: events are processed strictly in order
        (an insert after a delete of the same fact re-asserts it).

        The §4 high-water admission gate does not apply here: support
        tracking *subsumes* it.  A tuple below the mark would invalidate
        negative/aggregate answers already computed — which is exactly
        what grown-result invalidation detects and repairs when the
        tuple's class is popped (:meth:`_invalidate_grown`), so every
        insert is admissible and ``admission="strict"/"warn"`` never
        fires on a retraction session.  The price is repair work
        proportional to the firings that observed the late tuple's
        absence — the cost the admission law exists to refuse."""
        sup = self._support
        assert sup is not None
        schemas = self.program.schemas()
        admitted = 0
        result = self._new_result(None)  # type: ignore[arg-type]
        for ev in events:
            is_delete = isinstance(ev, Delete)
            tup = ev.tuple if isinstance(ev, (Insert, Delete)) else ev
            name = tup.schema.name
            if schemas.get(name) is not tup.schema:
                raise UnknownTableError(
                    f"fed tuple {tup!r} belongs to no table of program "
                    f"{self.program.name!r}"
                )
            if is_delete:
                self._process_delete(tup)
                continue
            admitted += 1
            result.meter.charge("tuple_put")
            self.stats.on_put(source, name)
            sup.base.add(tup)
            sup.retracted_base.discard(tup)
            flags = self._enqueue_delta_batch([(tup, result.meter)])
            if self.tracer is not None:
                self.tracer.emit("admit", {"tuple": repr(tup), "accepted": flags[0]})
        if self._metered:
            self.meter.merge(result.meter)
            self.strategy.account_serial(result.meter.total_cost)
        return FeedReport(source=source, admitted=admitted, quarantined=[])

    def _apply_retention(self) -> None:
        """Prune Gamma generations per the lifetime hints (§5 step 4).
        The per-table max is tracked incrementally at insert time
        (:meth:`_note_retained`), so a table is scanned exactly once —
        to collect the doomed generation — and only on the steps where
        its max actually advanced."""
        for name, ent in self._retention.items():
            pos, keep, max_seen, pruned_max = ent
            if max_seen is None or max_seen == pruned_max:
                continue
            store = self.db.store(name)
            cutoff = max_seen - keep + 1
            doomed = [t for t in store.scan() if t.values[pos] < cutoff]
            for t in doomed:
                store.discard(t)
            if doomed:
                self.stats.table(name).gamma_discarded += len(doomed)
            ent[3] = max_seen

    def _class_silent(self, batch: list[JTuple]) -> bool:
        """True iff no tuple of this class triggers any rule — its whole
        effect is the phase-A Gamma insert."""
        silent = self._silent_tables
        for tup in batch:
            name = tup.schema.name
            s = silent.get(name)
            if s is None:
                s = silent[name] = not self.program.rules_for(name)
            if not s:
                return False
        return True

    def _pop_super_batch(self) -> list[JTuple]:
        """Step coalescing (``coalesce_steps``): pop consecutive
        trigger-less minimal classes together with the first triggering
        class as one super-step.  Sound because a silent class fires
        nothing — its tuples only need to be in Gamma before any *later*
        class fires, and phase A inserts the merged batch in pop order
        before phase B runs."""
        batch = self.delta.pop_min_class()
        if not self.delta or not self._class_silent(batch):
            return batch
        out = list(batch)
        while self.delta:
            cls = self.delta.pop_min_class()
            out.extend(cls)
            if not self._class_silent(cls):
                break
        return out

    def _flush_task_events(self, results: list[TaskResult]) -> None:
        """Emit each task's buffered micro events plus a per-task
        summary, in submission order — the only order that is stable
        across strategies."""
        assert self.tracer is not None
        for r in results:
            for kind, data in r.events:
                self.tracer.emit(kind, data)
            self.tracer.emit(
                "task",
                {
                    "trigger": repr(r.trigger),
                    "duplicate": r.duplicate,
                    "fired": list(r.fired_rules),
                    "n_puts": len(r.puts),
                    "n_output": len(r.output),
                    "cost": r.meter.total_cost,
                },
            )

    def _run_step(self, batch: list[JTuple]) -> None:
        self.stats.on_step(len(batch))
        if self.tracer is not None:
            self.tracer.step = self.steps
            self.tracer.emit(
                "step",
                {
                    "step": self.steps,
                    "width": len(batch),
                    "frontier": [repr(t) for t in batch],
                },
            )
        # Phase A (sequential): move the whole class into Gamma, so the
        # rules fired in phase B see every tuple of the class ("positive
        # queries with timestamps <= T", §4) and Gamma stays read-only
        # while the batch fires.  One batched insert resolves each store
        # once per same-table run instead of once per tuple.
        if self._support is not None:
            rprepared = self._prepare_retraction_batch(batch)
            tasks = [
                self._make_task(t, o, refire=rf, dead=dd)
                for t, o, rf, dd in rprepared
            ]
            results = self.strategy.run_batch(tasks)
        else:
            prepared = list(zip(batch, self.db.insert_batch(batch, self._no_gamma)))
            if self._retention:
                for tup, outcome in prepared:
                    if outcome is InsertOutcome.NEW:
                        self._note_retained(tup.schema.name, tup)
            if self._columnar:
                # Phase B, columnar tier: whole-class prefetch + slim
                # sequential firing (same submission order as the tasks
                # the scalar path would have built)
                results = self._fire_batch(prepared)
            else:
                tasks = self._build_tasks(prepared)
                # Phase B: fire (possibly genuinely threaded).
                results = self.strategy.run_batch(tasks)
        if self.tracer is not None:
            self._flush_task_events(results)
        if self._support is not None:
            # register this step's firings in submission order (fids —
            # and thus repair order — are deterministic across
            # strategies); output lines enter self.output keyed, here,
            # instead of via the per-result extends below
            for r in results:
                for rec in r.firings:
                    self._register_firing(rec)
        # Phase C (sequential, deterministic order): apply buffered puts
        # as one Delta batch.
        pending = [(put, r.meter) for r in results for put in r.puts]
        if pending:
            flags = self._enqueue_delta_batch(pending)
            if self.tracer is not None:
                for (put, _meter), accepted in zip(pending, flags):
                    self.tracer.emit(
                        "effect", {"tuple": repr(put), "accepted": accepted}
                    )
        if self._retention:
            self._apply_retention()
        if self._support is None:
            # canonical output order: a step is one equivalence class,
            # so sorting its lines by the (ts, trigger, rule, line) key
            # makes the cumulative output a pure function of the firing
            # set — the same order retraction mode maintains via
            # _insert_output — instead of leaking the within-class pop
            # order when several firings of one class print
            step_lines: list[tuple[tuple, str]] = []
            for r in results:
                if r.output:
                    step_lines.extend(zip(r.out_keys, r.output))
            if step_lines:
                if len(step_lines) > 1:
                    step_lines.sort(key=lambda kl: kl[0])
                self.output.extend(line for _key, line in step_lines)
        if self._metered:
            allocations = 0.0
            for r in results:
                allocations += r.meter.count("tuple_put") + r.meter.count("delta_insert")
                self.meter.merge(r.meter)
            retained = float(self.db.heap_tuples())
            self.strategy.account_step(results, allocations=allocations, retained=retained)
        self._dead_step = None

    # -- incremental surface: feed / drain / flush -----------------------------

    def feed(self, tuples: Iterable[JTuple], source: str = "<feed>") -> FeedReport:
        """Admit external tuples into the engine.

        Admission is checked **before** any mutation: a tuple whose
        timestamp is strictly below the high-water mark is rejected
        (``admission="strict"`` raises :class:`CausalityError`; ``"warn"``
        quarantines it with an :class:`AdmissionWarning`), so a strict
        rejection leaves the kernel untouched.  Admitted tuples run as
        one synthetic sequential task — exactly like the old engine's
        initial puts — so -noDelta cascades work during feeding too.

        Under ``ExecOptions(retraction=True)`` the iterable may also
        contain :class:`~repro.core.delta.Insert` / ``Delete`` events
        (plain tuples remain sugar for inserts); see :meth:`_feed_events`.
        """
        if self._support is not None:
            return self._feed_events(tuples, source)
        schemas = self.program.schemas()
        admitted: list[JTuple] = []
        quarantined: list[JTuple] = []
        hwm = self.high_water
        mode = self.options.admission
        for tup in tuples:
            if isinstance(tup, Insert):
                tup = tup.tuple
            elif isinstance(tup, Delete):
                raise EngineError(
                    "feed received a Delete event but retraction is not "
                    "enabled; run with ExecOptions(retraction=True)"
                )
            name = tup.schema.name
            if schemas.get(name) is not tup.schema:
                raise UnknownTableError(
                    f"fed tuple {tup!r} belongs to no table of program "
                    f"{self.program.name!r}"
                )
            if hwm is not None:
                ts = self.db.timestamp(tup)
                if compare_timestamps(ts, hwm) < 0:
                    if mode == "strict":
                        raise CausalityError(
                            f"cannot feed {tup!r}: its timestamp is below the "
                            "completed high-water mark, so admitting it would "
                            "invalidate negative/aggregate answers already "
                            "computed below the mark (§4).  Feed tuples at or "
                            "above the mark, or use "
                            "ExecOptions(admission='warn') to quarantine late "
                            "arrivals"
                        )
                    warnings.warn(
                        f"quarantined late tuple {tup!r}: timestamp below the "
                        "completed high-water mark",
                        AdmissionWarning,
                        stacklevel=3,
                    )
                    quarantined.append(tup)
                    continue
            admitted.append(tup)
        self.quarantined.extend(quarantined)
        result = self._new_result(None)  # type: ignore[arg-type]
        for tup in admitted:
            result.meter.charge("tuple_put")
            self.stats.on_put(source, tup.schema.name)
            if tup.schema.name in self._no_delta:
                self.stats.table(tup.schema.name).delta_bypass += 1
                self._immediate(tup, result)
            else:
                result.puts.append(tup)
        if result.puts:
            pending = [(put, result.meter) for put in result.puts]
            flags = self._enqueue_delta_batch(pending)
            if self.tracer is not None:
                for (put, _meter), accepted in zip(pending, flags):
                    self.tracer.emit("admit", {"tuple": repr(put), "accepted": accepted})
        if self.tracer is not None and result.events:
            for kind, data in result.events:
                self.tracer.emit(kind, data)
        self.output.extend(result.output)
        if self._metered:
            self.meter.merge(result.meter)
            self.strategy.account_serial(result.meter.total_cost)
        if self._retention:
            # -noDelta cascades can run entirely inside a feed (zero
            # engine steps); lifetime hints still apply
            self._apply_retention()
        return FeedReport(source=source, admitted=len(admitted), quarantined=quarantined)

    def drain(self) -> int:
        """Run all-minimums steps until Delta is empty; returns the
        number of steps taken.  Advances the high-water mark to the
        timestamp of each popped class."""
        before = self.steps
        max_steps = self.options.max_steps
        while self.delta:
            if max_steps is not None and self.steps >= max_steps:
                raise EngineError(
                    f"program exceeded max_steps={max_steps}; "
                    f"{len(self.delta)} tuples still pending"
                )
            self.steps += 1
            batch = self._pop_super_batch() if self._coalesce else self.delta.pop_min_class()
            self.high_water = self.db.timestamp(batch[-1])
            self._run_step(batch)
        return self.steps - before

    def flush_stats(self) -> None:
        """Fold all deferred tallies into the collector and reset them,
        so the collector is settle-consistent (and snapshot-complete)."""
        self.stats.absorb_tallies(self._fire_tallies, self._put_tallies)
        self.stats.absorb_table_tallies(self._table_tallies)
        self._fire_tallies.clear()
        self._put_tallies.clear()
        self._table_tallies.clear()
        if self._plans is not None:
            self.stats.absorb_planned(self._plans.plans())
            for plan in self._plans.plans():
                plan.rule_hits.clear()
        if self._columnar:
            batch, scalar = self._rule_batch_fires, self._rule_scalar_fires
            for name in sorted(set(batch) | set(scalar)):
                self.stats.note(
                    f"columnar: rule {name!r} fired "
                    f"{batch.get(name, 0)} batch / {scalar.get(name, 0)} scalar"
                )
            if self._batch_widths:
                hist = ", ".join(
                    f"{w}:{c}" for w, c in sorted(self._batch_widths.items())
                )
                self.stats.note(f"columnar: batch widths (width:classes) {hist}")
            batch.clear()
            scalar.clear()
            self._batch_widths.clear()

    # -- trace bookends ---------------------------------------------------------

    def emit_run_start(self) -> None:
        if self.tracer is None:
            return
        fp = self.options.fault_plan
        self.tracer.emit(
            "run-start",
            {
                "program": self.program.name,
                "strategy": self.strategy.name,
                "threads": self.strategy.n_threads,
                "chaos_seed": self.options.chaos_seed,
                "fault_plan": fp.to_dict() if fp is not None else None,
                "task_granularity": self.options.task_granularity,
            },
            meta=True,
        )

    def emit_run_end(self) -> None:
        if self.tracer is None:
            return
        self.tracer.step = self.steps
        self.tracer.emit(
            "run-end",
            {
                "steps": self.steps,
                "output": output_hash(self.output),
                "n_output": len(self.output),
                "table_sizes": dict(sorted(self.db.table_sizes().items())),
            },
        )

    # -- results ----------------------------------------------------------------

    def build_result(self, output: list[str], steps: int, wall: float) -> RunResult:
        return RunResult(
            program=self.program.name,
            strategy=self.strategy.name,
            threads=self.strategy.n_threads,
            output=output,
            wall_time=wall,
            report=self.strategy.report(),
            stats=self.stats,
            table_sizes=self.db.table_sizes(),
            meter=self.meter,
            steps=steps,
            options=self.options,
            database=self.db,
            trace=self.tracer,
        )
