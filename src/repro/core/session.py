"""Resumable engine sessions: open / feed / settle / snapshot / close.

The old monolithic ``Engine.run`` did everything in one breath: initial
puts, the step loop, stats folding, the run-end trace event.  A session
decomposes that breath so a caller can *stream*:

* :meth:`EngineSession.open` — emit the run-start event, mark live;
* :meth:`EngineSession.feed` — admit external tuples against the
  **high-water mark** (the timestamp of the last popped equivalence
  class).  Everything at or above the mark is sound: the engine has
  answered no negative/aggregate query there yet (§4).  A tuple
  strictly below the mark is refused (``admission="strict"`` raises
  :class:`~repro.core.errors.CausalityError`) or quarantined
  (``"warn"``, with an :class:`~repro.core.errors.AdmissionWarning`);
* :meth:`EngineSession.settle` — drain Delta to quiescence and return
  the *increment*: a :class:`~repro.core.kernel.RunResult` whose output
  and step count cover only this settle;
* :meth:`EngineSession.snapshot` / :meth:`EngineSession.restore` —
  checkpoint the full engine state (Gamma, Delta, stats, meters,
  strategy RNG) to a versioned JSON document and rebuild a live session
  from it (:mod:`repro.core.snapshot`);
* :meth:`EngineSession.close` — settle anything pending, emit run-end,
  release the strategy (thread pools), and return the cumulative
  result.  Sessions are context managers; the strategy is released even
  when a step raises.

Determinism: feeding a workload in K causally-sorted chunks produces
byte-identical output, table sizes, and semantic trace to feeding it in
one shot — :func:`causal_chunks` builds such chunks, and the
differential suite asserts the identity across all strategies.
"""

from __future__ import annotations

import json
import time
from functools import cmp_to_key
from pathlib import Path
from typing import IO, Iterable

from repro.core.database import Database
from repro.core.errors import EngineError
from repro.core.kernel import FeedReport, RunResult, StepKernel
from repro.core.ordering import compare_timestamps
from repro.core.program import ExecOptions, Program
from repro.core.tuples import JTuple
from repro.exec.base import Strategy

__all__ = ["EngineSession", "FeedReport", "causal_sort", "causal_chunks"]


class EngineSession:
    """One resumable execution of one program.

    Typical use::

        with program.session(options) as s:
            s.feed(first_batch)
            r1 = s.settle()       # incremental result
            s.feed(second_batch)
            r2 = s.settle()
        total = s.result          # cumulative RunResult

    The compatibility shim ``Engine.run()`` is exactly
    ``open -> feed(initial puts) -> settle -> close``.
    """

    def __init__(
        self,
        program: Program,
        options: ExecOptions | None = None,
        strategy: Strategy | None = None,
        *,
        _kernel: StepKernel | None = None,
    ):
        if _kernel is not None:
            self.kernel = _kernel
        else:
            self.kernel = StepKernel(
                program, options if options is not None else ExecOptions(), strategy
            )
        self._opened = False
        self._closed = False
        self._settles = 0
        self._out_cursor = 0
        self._step_cursor = 0
        self._fed_since_settle = 0
        self._wall = 0.0
        self._final: RunResult | None = None

    # -- delegated views -------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.kernel.program

    @property
    def options(self) -> ExecOptions:
        return self.kernel.options

    @property
    def strategy(self) -> Strategy:
        return self.kernel.strategy

    @property
    def database(self) -> Database:
        return self.kernel.db

    @property
    def output(self) -> list[str]:
        return self.kernel.output

    @property
    def steps(self) -> int:
        return self.kernel.steps

    @property
    def high_water(self):
        return self.kernel.high_water

    @property
    def quarantined(self) -> list[JTuple]:
        return self.kernel.quarantined

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def result(self) -> RunResult:
        """The cumulative result; only available after :meth:`close`."""
        if self._final is None:
            raise EngineError("session has no result yet; call close() first")
        return self._final

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> "EngineSession":
        """Mark the session live (idempotent).  Emits the run-start
        trace event on the first call."""
        if self._closed:
            raise EngineError("this session is closed; construct a fresh one")
        if not self._opened:
            self._opened = True
            self.kernel.emit_run_start()
        return self

    def __enter__(self) -> "EngineSession":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # guarantee pool release on the error path; no final result
            self._shutdown()
            return False
        if not self._closed:
            self.close()
        return False

    def _require_open(self) -> None:
        if self._closed:
            raise EngineError("this session is closed")
        if not self._opened:
            raise EngineError("session not opened; call open() or use `with`")

    def _shutdown(self) -> None:
        """Close out the strategy exactly once, whatever happened."""
        self._closed = True
        self.kernel.strategy.close()

    # -- incremental execution -------------------------------------------------

    def feed(self, tuples: Iterable[JTuple], source: str = "<feed>") -> FeedReport:
        """Admit external tuples (see :meth:`StepKernel.feed`).

        Admission failures (:class:`~repro.core.errors.CausalityError`
        under strict mode, :class:`~repro.core.errors.UnknownTableError`)
        are checked before any mutation and leave the session open;
        any other error during the feed shuts the session down
        (releasing the strategy) and re-raises.
        """
        self._require_open()
        t0 = time.perf_counter()
        try:
            report = self.kernel.feed(tuples, source)
        except (EngineError,) + _ADMISSION_ERRORS:
            raise
        except BaseException:
            self._shutdown()
            raise
        self._fed_since_settle += report.admitted
        self._wall += time.perf_counter() - t0
        return report

    def settle(self) -> RunResult:
        """Drain Delta to quiescence and return this settle's increment:
        a RunResult whose ``output`` and ``steps`` cover only the work
        since the previous settle.  Records a per-settle frontier/fire
        delta on ``stats.settles`` (see
        :func:`repro.stats.report.format_settles`)."""
        self._require_open()
        t0 = time.perf_counter()
        k = self.kernel
        try:
            k.drain()
        except BaseException:
            self._shutdown()
            raise
        # within one settle every firing/put went through the deferred
        # tallies, so their pre-flush sums *are* this settle's deltas
        fires = sum(k._fire_tallies.values())
        puts = sum(k._put_tallies.values())
        k.flush_stats()
        steps_delta = k.steps - self._step_cursor
        widths = k.stats.frontier_widths[self._step_cursor :]
        if k.options.retraction:
            # retraction repair can insert/remove lines *below* the
            # cursor (output is causally keyed, not append-only), so the
            # increment view is unsound — each settle returns the full
            # cumulative output instead
            new_output = list(k.output)
        else:
            new_output = k.output[self._out_cursor :]
        wall = time.perf_counter() - t0
        self._wall += wall
        self._settles += 1
        k.stats.on_settle(
            {
                "settle": self._settles,
                "fed": self._fed_since_settle,
                "steps": steps_delta,
                "fires": fires,
                "puts": puts,
                "output_lines": len(new_output),
                "max_width": max(widths, default=0),
            }
        )
        self._out_cursor = len(k.output)
        self._step_cursor = k.steps
        self._fed_since_settle = 0
        return k.build_result(output=new_output, steps=steps_delta, wall=wall)

    def close(self) -> RunResult:
        """Settle anything pending, emit the run-end event, release the
        strategy, and return the *cumulative* result.  Idempotent: a
        second close returns the same result."""
        if self._closed:
            if self._final is not None:
                return self._final
            raise EngineError("session was shut down by an error; no result")
        self._require_open()
        try:
            if self.kernel.delta or self._fed_since_settle:
                self.settle()
            t0 = time.perf_counter()
            k = self.kernel
            k.flush_stats()
            k.emit_run_end()
            self._wall += time.perf_counter() - t0
            self._final = k.build_result(
                output=k.output, steps=k.steps, wall=self._wall
            )
        finally:
            self._shutdown()
        return self._final

    # -- checkpoint / restore --------------------------------------------------

    def snapshot(
        self, dest: str | Path | IO[str] | None = None, *, extra: object = None
    ) -> dict:
        """Serialise the full session state to the versioned snapshot
        document (see :mod:`repro.core.snapshot`); optionally write it
        to ``dest`` as JSON.  The session stays open.  ``extra`` is an
        opaque JSON-serialisable value stored under the document's
        ``extra`` key and ignored on restore — callers (e.g. the session
        service) use it to persist their own metadata atomically with
        the engine state."""
        self._require_open()
        from repro.core.snapshot import build_snapshot

        payload = build_snapshot(self, extra)
        if dest is not None:
            if isinstance(dest, (str, Path)):
                with open(dest, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
            else:
                json.dump(payload, dest)
        return payload

    @classmethod
    def restore(
        cls,
        source: str | Path | IO[str] | dict,
        program: Program,
        options: ExecOptions | None = None,
        strategy: Strategy | None = None,
    ) -> "EngineSession":
        """Rebuild a live, open session from a snapshot.  ``program``
        must be the same program the snapshot was taken from (rules are
        code and cannot be serialised; the snapshot carries the program
        name and table schemas and refuses a mismatch)."""
        from repro.core.snapshot import restore_session

        return restore_session(cls, source, program, options, strategy)


from repro.core.errors import CausalityError, UnknownTableError  # noqa: E402

#: feed-time errors raised before any kernel mutation — safe to keep
#: the session open after
_ADMISSION_ERRORS = (CausalityError, UnknownTableError)


# -- chunking helpers ----------------------------------------------------------


def causal_sort(db: Database, tuples: Iterable[JTuple]) -> list[JTuple]:
    """Stable-sort tuples by their timestamps.  Stability matters: the
    relative order of same-class tuples determines Delta leaf insertion
    order, which is the engine's deterministic pop order."""
    ts = db.timestamp
    return sorted(
        tuples, key=cmp_to_key(lambda a, b: compare_timestamps(ts(a), ts(b)))
    )


def causal_chunks(
    db: Database, tuples: Iterable[JTuple], k: int
) -> list[list[JTuple]]:
    """Split a workload into at most ``k`` feed chunks that are aligned
    to equivalence-class boundaries (no class straddles two chunks) and
    causally ordered across chunks.  Feeding these chunks through
    ``feed``/``settle`` produces byte-identical results to feeding the
    whole workload at once: each chunk's classes sit entirely at or
    above the high-water mark its predecessors left behind."""
    ordered = causal_sort(db, tuples)
    if not ordered:
        return []
    ts = db.timestamp
    classes: list[list[JTuple]] = []
    for tup in ordered:
        if classes and compare_timestamps(ts(classes[-1][-1]), ts(tup)) == 0:
            classes[-1].append(tup)
        else:
            classes.append([tup])
    k = max(1, min(k, len(classes)))
    base, extra = divmod(len(classes), k)
    chunks: list[list[JTuple]] = []
    i = 0
    for j in range(k):
        n = base + (1 if j < extra else 0)
        group = classes[i : i + n]
        i += n
        chunks.append([t for cls in group for t in cls])
    return chunks
