"""The law of causality — runtime-enforcement entry points.

§4: "rules can affect the future, but they are not allowed to change
the past ... a rule that puts a tuple with timestamp T into the
database can only perform positive queries with timestamps ≤ T, and
negative or aggregate queries with timestamps < T."

Enforcement is split across two layers:

* **dynamic** (this module + :class:`~repro.core.rules.RuleContext`):
  every ``put`` is checked against the trigger's timestamp, and
  negative/aggregate queries are checked when their observable region
  has a computable upper bound (:func:`query_upper_bound`); controlled
  by ``ExecOptions.causality_check`` ∈ {off, warn, strict};
* **static** (:mod:`repro.solver`): the SMT-style prover discharges the
  paper's proof obligations (1)–(3) from symbolic rule metadata before
  the program runs.

This module re-exports the dynamic-check helpers so the DESIGN.md
module map has a stable import point; the implementations live next to
the rule context that uses them.
"""

from repro.core.errors import CausalityError, StratificationError, StratificationWarning
from repro.core.ordering import Timestamp, compare_timestamps
from repro.core.rules import query_upper_bound

__all__ = [
    "CausalityError",
    "StratificationError",
    "StratificationWarning",
    "Timestamp",
    "compare_timestamps",
    "query_upper_bound",
    "put_respects_causality",
]


def put_respects_causality(trigger_ts: Timestamp, put_ts: Timestamp) -> bool:
    """True iff a put at ``put_ts`` from a trigger at ``trigger_ts``
    satisfies the law of causality (put into the present or future)."""
    return compare_timestamps(trigger_ts, put_ts) <= 0
