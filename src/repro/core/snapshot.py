"""Versioned on-disk checkpoints of an engine session.

A snapshot is one JSON document carrying everything an
:class:`~repro.core.session.EngineSession` needs to resume mid-stream:
the Gamma tables (row-for-row, in scan order), the pending Delta set
(in causal walk order, so re-insertion reproduces the deterministic pop
order), the high-water mark, the run output so far, the statistics
collector, the aggregate cost meter, the strategy's replayable state
(chaos RNG, machine accounts), and the trace events when tracing is on.

What is **not** serialised — by design:

* rule bodies and store factories: they are code.  ``restore`` takes
  the same :class:`~repro.core.program.Program` (and options) the
  snapshot was taken under, and refuses to proceed when the program
  name or any table schema disagrees with the snapshot;
* stores that opt out (``supports_checkpoint() -> False``, e.g. the
  ring-semantics two-iteration array store): their contents are
  arrival-order dependent in ways a row dump cannot reproduce, so
  ``snapshot`` raises :class:`~repro.core.errors.SchemaError` rather
  than silently writing an unsound checkpoint.

Version policy: ``version`` is bumped on any change to the document
layout; ``restore`` accepts exactly the version it was built with and
raises :class:`~repro.core.errors.EngineError` otherwise — snapshots
are resume points, not an archival format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from repro.core.errors import EngineError
from repro.core.ordering import Timestamp
from repro.core.query import Query, QueryKind
from repro.core.support import FiringRecord
from repro.core.tuples import JTuple
from repro.trace.events import TraceEvent

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "build_snapshot", "restore_session"]

SNAPSHOT_FORMAT = "jstar-session-snapshot"
#: version 2 added the ``support`` section (retraction mode); version 3
#: added the optional ``extra`` section (opaque caller metadata, e.g.
#: the session service's per-tenant durability record).  Earlier
#: versions are refused like any other version mismatch
SNAPSHOT_VERSION = 3


def _plain(value: Any) -> Any:
    """JSON-safe form of a value: numpy scalars become Python scalars,
    tuples become lists (restore re-tuples where structure demands it)."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


def _encode_timestamp(ts: Timestamp | None) -> dict | None:
    if ts is None:
        return None
    return {"key": _plain(ts.key), "display": _plain(ts.display)}


def _decode_timestamp(d: dict | None) -> Timestamp | None:
    if d is None:
        return None
    key = tuple(tuple(comp) for comp in d["key"])
    return Timestamp(key=key, display=tuple(d["display"]))


def _encode_tuple(t: JTuple) -> list:
    return [t.schema.name, _plain(list(t.values))]


def _encode_support(k) -> dict | None:
    """The retraction support index, or None when the session does not
    track support.  Query ``where`` closures are code and cannot be
    serialised; they are flagged ``opaque`` and restored as ``None``,
    which makes the restored query match a superset — conservative for
    grown-result invalidation (it can only kill *more* firings, never
    miss one)."""
    sup = k._support
    if sup is None:
        return None
    firings = []
    for fid in sorted(sup.firings):
        rec = sup.firings[fid]
        firings.append(
            {
                "fid": fid,
                "rule": rec.rule_name,
                "rule_index": rec.rule_index,
                "trigger": _encode_tuple(rec.trigger),
                "reads": [_encode_tuple(t) for t in rec.reads],
                "puts": [_encode_tuple(t) for t in rec.puts],
                "lines": list(rec.lines),
                "native": sorted(rec.native),
                "queries": [
                    {
                        "table": q.schema.name,
                        "kind": q.kind.value,
                        "eq": [[i, _plain(v)] for i, v in sorted(q.eq.items())],
                        "ranges": [
                            [i, [_plain(lo), _plain(hi), li, hi2]]
                            for i, (lo, hi, li, hi2) in sorted(q.ranges.items())
                        ],
                        "opaque": q.where is not None,
                    }
                    for q in rec.queries
                ],
            }
        )
    return {
        "next_fid": sup.next_fid,
        "base": [_encode_tuple(t) for t in sorted(sup.base, key=repr)],
        "retracted_base": [
            _encode_tuple(t) for t in sorted(sup.retracted_base, key=repr)
        ],
        "refire": [_encode_tuple(t) for t in sorted(k._refire, key=repr)],
        "firings": firings,
    }


def _restore_support(k, data: dict, schemas) -> None:
    """Rebuild the support index and the keyed output from the snapshot.
    Output keys are *recomputed* (they derive from trigger timestamps,
    which the restored database reproduces), so the keyed output list is
    rebuilt from the firings rather than trusted from the document."""
    sup = k._support
    tup = lambda enc: JTuple(schemas[enc[0]], tuple(enc[1]))  # noqa: E731
    sup.base = {tup(e) for e in data.get("base", [])}
    sup.retracted_base = {tup(e) for e in data.get("retracted_base", [])}
    k._refire = {tup(e) for e in data.get("refire", [])}
    opaque_restored = False
    entries: list[tuple[tuple, str, FiringRecord, int]] = []
    for f in data.get("firings", []):
        rec = FiringRecord(f["rule"], int(f["rule_index"]), tup(f["trigger"]))
        rec.fid = int(f["fid"])
        rec.reads = {tup(e): None for e in f.get("reads", [])}
        rec.puts = tuple(tup(e) for e in f.get("puts", []))
        rec.lines = tuple(str(s) for s in f.get("lines", []))
        rec.native = set(f.get("native", []))
        for q in f.get("queries", []):
            if q.get("opaque"):
                opaque_restored = True
            rec.queries.append(
                Query(
                    schemas[q["table"]],
                    {int(i): v for i, v in q.get("eq", [])},
                    {
                        int(i): (lo, hi, bool(li), bool(hi2))
                        for i, (lo, hi, li, hi2) in q.get("ranges", [])
                    },
                    None,
                    QueryKind(q.get("kind", "positive")),
                )
            )
        sup.register_restored(rec)
        for j, line in enumerate(rec.lines):
            entries.append((k._output_key(rec, j), line, rec, j))
    sup.next_fid = int(data.get("next_fid", 0))
    entries.sort(key=lambda e: e[0])
    k._out_keys = [key for key, _line, _rec, _j in entries]
    k.output[:] = [line for _key, line, _rec, _j in entries]
    per_rec: dict[int, list] = {}
    for key, line, rec, _j in entries:
        per_rec.setdefault(rec.fid, []).append((key, line))
    for fid, pairs in per_rec.items():
        sup.firings[fid].out_lines = tuple(pairs)
    if opaque_restored:
        k.stats.note(
            "restored support records carry opaque where-clauses "
            "(code cannot be serialised); grown-result invalidation will "
            "conservatively over-invalidate their firings"
        )


def build_snapshot(session, extra: Any = None) -> dict:
    """The snapshot document for one open session (pure read).

    ``extra`` is an opaque JSON-serialisable value stored verbatim under
    the ``extra`` key and ignored by :func:`restore_session` — the
    session service uses it to persist per-tenant durability metadata
    (applied feed sequence numbers) *atomically* with the engine state
    it describes, so a crash can never separate the two."""
    k = session.kernel
    schemas = k.program.schemas()
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "extra": _plain(extra),
        "program": k.program.name,
        "schemas": {name: list(s.field_names) for name, s in schemas.items()},
        "strategy": k.strategy.name,
        "threads": k.strategy.n_threads,
        "steps": k.steps,
        "high_water": _encode_timestamp(k.high_water),
        "output": list(k.output),
        "tables": _plain(k.db.dump_tables()),
        "delta": [[t.schema.name, _plain(list(t.values))] for t in k.delta.dump()],
        "quarantined": [
            [t.schema.name, _plain(list(t.values))] for t in k.quarantined
        ],
        "retention": {name: _plain(ent[2:4]) for name, ent in k._retention.items()},
        "fire_tallies": [[a, b, n] for (a, b), n in k._fire_tallies.items()],
        "put_tallies": [[a, b, n] for (a, b), n in k._put_tallies.items()],
        "table_tallies": {n: list(t) for n, t in k._table_tallies.items()},
        "support": _encode_support(k),
        "stats": k.stats.to_state(),
        "meter": k.meter.to_state(),
        "strategy_state": k.strategy.state_dict(),
        "trace": (
            None
            if k.tracer is None
            else {"step": k.tracer.step, "events": [e.to_json() for e in k.tracer.events]}
        ),
        "session": {
            "settles": session._settles,
            "out_cursor": session._out_cursor,
            "step_cursor": session._step_cursor,
            "fed_since_settle": session._fed_since_settle,
            "wall": session._wall,
        },
    }


def _load_payload(source) -> dict:
    if isinstance(source, dict):
        return source
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return json.load(source)


def restore_session(cls, source, program, options=None, strategy=None):
    """Rebuild a live session from a snapshot (see
    :meth:`EngineSession.restore`)."""
    payload = _load_payload(source)
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise EngineError(
            f"not a session snapshot (format tag {payload.get('format')!r}, "
            f"expected {SNAPSHOT_FORMAT!r})"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise EngineError(
            f"snapshot version {payload.get('version')!r} is not the "
            f"supported version {SNAPSHOT_VERSION}; snapshots are resume "
            "points, not an archival format — re-run the producer with a "
            "matching build"
        )
    if payload.get("program") != program.name:
        raise EngineError(
            f"snapshot was taken from program {payload.get('program')!r}, "
            f"not {program.name!r}"
        )
    schemas = program.schemas()
    snap_schemas = payload.get("schemas", {})
    live_schemas = {name: list(s.field_names) for name, s in schemas.items()}
    if snap_schemas != live_schemas:
        raise EngineError(
            "snapshot table schemas disagree with the supplied program; "
            "restore needs the exact program the snapshot was taken from"
        )

    session = cls(program, options, strategy)
    k = session.kernel
    if k.strategy.name != payload.get("strategy") or k.strategy.n_threads != payload.get(
        "threads"
    ):
        raise EngineError(
            f"snapshot was taken under strategy "
            f"{payload.get('strategy')!r} with {payload.get('threads')} "
            f"thread(s); restore built {k.strategy.name!r} with "
            f"{k.strategy.n_threads} — pass matching options"
        )

    k.db.load_tables(payload.get("tables", {}))
    for name, values in payload.get("delta", []):
        tup = JTuple(schemas[name], tuple(values))
        k.delta.insert(tup, k.db.timestamp(tup))
    k.quarantined = [
        JTuple(schemas[name], tuple(values))
        for name, values in payload.get("quarantined", [])
    ]
    for name, tail in payload.get("retention", {}).items():
        ent = k._retention.get(name)
        if ent is not None:
            ent[2], ent[3] = tail[0], tail[1]
    k._fire_tallies = {(a, b): int(n) for a, b, n in payload.get("fire_tallies", [])}
    k._put_tallies = {(a, b): int(n) for a, b, n in payload.get("put_tallies", [])}
    k._table_tallies = {
        n: [int(x) for x in t] for n, t in payload.get("table_tallies", {}).items()
    }
    k.stats.load_state(payload.get("stats", {}))
    k.meter.load_state(payload.get("meter", {}))
    k.strategy.load_state(payload.get("strategy_state", {}))
    k.steps = int(payload.get("steps", 0))
    k.high_water = _decode_timestamp(payload.get("high_water"))
    k.output[:] = [str(line) for line in payload.get("output", [])]
    support = payload.get("support")
    if (support is not None) != (k._support is not None):
        raise EngineError(
            "snapshot retraction state disagrees with the restore options: "
            + (
                "the snapshot carries a support index but "
                "ExecOptions(retraction=True) was not passed"
                if support is not None
                else "ExecOptions(retraction=True) was passed but the "
                "snapshot has no support index"
            )
        )
    if support is not None:
        _restore_support(k, support, schemas)
    trace = payload.get("trace")
    if k.tracer is not None:
        if trace is not None:
            k.tracer.events = [TraceEvent.from_json(e) for e in trace["events"]]
            k.tracer.step = int(trace["step"])
        else:
            k.stats.note(
                "restored with tracing on from a snapshot taken without a "
                "trace; the restored trace starts at the snapshot point"
            )
            k.emit_run_start()
            k.tracer.step = int(payload.get("steps", 0))

    sess_state = payload.get("session", {})
    session._settles = int(sess_state.get("settles", 0))
    session._out_cursor = int(sess_state.get("out_cursor", 0))
    session._step_cursor = int(sess_state.get("step_cursor", 0))
    session._fed_since_settle = int(sess_state.get("fed_since_settle", 0))
    session._wall = float(sess_state.get("wall", 0.0))
    # the run-start event (when traced) is already in the restored
    # trace; mark the session live without re-emitting it
    session._opened = True
    return session
