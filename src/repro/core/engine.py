"""The one-shot engine facade over the step kernel (§3, §5, Fig 3).

Historically this module *was* the engine: one monolithic ``run`` that
did initial puts, the step loop, stats folding, and the run-end trace
event in a single breath.  That machinery now lives in two places:

* :class:`repro.core.kernel.StepKernel` — the step mechanism (pop the
  minimal class, fire, apply effects, tallies, retention);
* :class:`repro.core.session.EngineSession` — the lifecycle (open,
  incremental ``feed``/``settle``, checkpoint/restore, close).

:class:`Engine` remains the stable single-shot entry point:
``Engine(program, options).run()`` is exactly
``open -> feed(initial puts) -> settle -> close`` on a private session,
and is what ``Program.run`` drives.  Callers that want to stream input,
settle incrementally, or checkpoint mid-run should use
``Program.session`` / :class:`~repro.core.session.EngineSession`
directly.
"""

from __future__ import annotations

from repro.core.errors import EngineError
from repro.core.kernel import FeedReport, RunResult, StepKernel
from repro.core.program import ExecOptions, Program
from repro.exec.base import Strategy

__all__ = ["RunResult", "FeedReport", "Engine"]


class Engine:
    """One single-shot execution of one program under one set of options."""

    def __init__(
        self,
        program: Program,
        options: ExecOptions,
        strategy: Strategy | None = None,
    ):
        self.kernel = StepKernel(program, options, strategy)
        self._ran = False

    # construction helpers kept as Engine attributes — the replayer and
    # store-tuning paths call them without an Engine instance
    _make_strategy = staticmethod(StepKernel._make_strategy)
    _make_registry = staticmethod(StepKernel._make_registry)
    _index_plan = staticmethod(StepKernel._index_plan)

    # -- delegated views (tests and tools reach into these) -------------------

    @property
    def program(self) -> Program:
        return self.kernel.program

    @property
    def options(self) -> ExecOptions:
        return self.kernel.options

    @property
    def strategy(self) -> Strategy:
        return self.kernel.strategy

    @property
    def db(self):
        return self.kernel.db

    @property
    def delta(self):
        return self.kernel.delta

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def tracer(self):
        return self.kernel.tracer

    @property
    def output(self) -> list[str]:
        return self.kernel.output

    @property
    def meter(self):
        return self.kernel.meter

    @property
    def _plans(self):
        return self.kernel._plans

    @property
    def _coalesce(self) -> bool:
        return self.kernel._coalesce

    @property
    def _metered(self) -> bool:
        return self.kernel._metered

    # -- run -------------------------------------------------------------

    def run(self) -> RunResult:
        if self._ran:
            raise EngineError(
                "an Engine instance can only run once; construct a fresh "
                "Engine, or use EngineSession (open/feed/settle/close) for "
                "incremental, resumable execution"
            )
        self._ran = True
        from repro.core.session import EngineSession

        session = EngineSession(self.program, _kernel=self.kernel)
        with session:
            session.feed(self.program.initial_puts, source="<init>")
            session.settle()
        return session.result
