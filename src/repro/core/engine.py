"""The pseudo-naive incremental execution engine (§3, §5, Fig 3).

The tuple lifecycle implemented here is exactly Fig 3:

1. a rule (or an initial ``put``) creates a tuple, which enters the
   **Delta** tree to await processing — unless its table is in the
   ``-noDelta`` set, in which case it goes straight to Gamma and fires
   its rules immediately inside the producing task (§5.1);
2. each step removes the minimal *equivalence class* from Delta,
   inserts those tuples into **Gamma** (unless ``-noGamma``), and fires
   every rule they trigger — one task per tuple, all tasks of the class
   conceptually in parallel (the all-minimums strategy, §5);
3. rules query Gamma; batch effects (new puts) are buffered per task
   and applied in deterministic task order after the batch joins;
4. lifetime hints may discard tuples (``Database.discard``).

Determinism: batches leave the Delta tree in a deterministic order,
effects are applied in task order, so program output is identical under
every strategy and thread count (§1.3) — asserted by the test suite.

Cost attribution: each task's meter is charged for the Gamma insertion
of its trigger, the rules it fires, the queries they make, and the
Delta insertions of the tuples it put — the *producer* pays for shared
Delta traffic, which is what makes the Delta tree Dijkstra's
scalability bottleneck in Fig 12.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager

from repro.core.database import Database, InsertOutcome
from repro.core.delta import DeltaTree
from repro.core.errors import EngineError
from repro.core.program import ExecOptions, Program
from repro.core.rules import Rule, RuleContext
from repro.core.tuples import JTuple
from repro.exec.base import EngineTask, Strategy, TaskResult
from repro.exec.chaos import ChaosStrategy
from repro.exec.forkjoin import ForkJoinStrategy
from repro.exec.metering import DEFAULT_WEIGHTS, CostMeter
from repro.exec.sequential import SequentialStrategy
from repro.exec.threads import ThreadStrategy
from repro.gamma.base import StoreRegistry
from repro.gamma.treeset import ConcurrentSkipListStore, TreeSetStore
from repro.simcore.machine import MachineReport
from repro.stats.collector import StatsCollector
from repro.trace.recorder import TraceRecorder, output_hash

__all__ = ["RunResult", "Engine"]


@dataclass
class RunResult:
    """Everything a run produced."""

    program: str
    strategy: str
    threads: int
    output: list[str]
    wall_time: float
    report: MachineReport | None
    stats: StatsCollector
    table_sizes: dict[str, int]
    meter: CostMeter
    steps: int
    options: ExecOptions
    #: None when the caller dropped it (e.g. a serialised result); use
    #: :meth:`require_database` for the advisor/report paths that need it
    database: Database | None = field(repr=False, default=None)
    #: the run's event trace (only when ``ExecOptions.trace`` was set)
    trace: TraceRecorder | None = field(repr=False, default=None)

    def require_database(self) -> Database:
        """The run's database, or a clear error when it was dropped."""
        if self.database is None:
            raise EngineError(
                "this RunResult carries no database (it was dropped or the "
                "result was deserialised); re-run with the database retained"
            )
        return self.database

    @property
    def virtual_time(self) -> float:
        """Elapsed virtual time (work units); falls back to total cost
        for strategies without a machine."""
        if self.report is not None:
            return self.report.elapsed
        return self.meter.total_cost

    def output_text(self) -> str:
        return "\n".join(self.output)


class Engine:
    """One execution of one program under one set of options."""

    def __init__(
        self,
        program: Program,
        options: ExecOptions,
        strategy: Strategy | None = None,
    ):
        program.freeze()
        self.program = program
        self.options = options
        # an injected strategy overrides options.strategy — the trace
        # replayer uses this to run a *scripted* ChaosStrategy, and the
        # chaos test harness to run an intentionally-broken variant
        self.strategy = strategy if strategy is not None else self._make_strategy(options)
        registry = self._make_registry(options, self.strategy, program)
        self.db = Database(program.schemas(), registry, program.decls)
        self.delta = DeltaTree()
        self.stats = StatsCollector()
        self.tracer = TraceRecorder() if options.trace else None
        self.strategy.bind(tracer=self.tracer, stats=self.stats)
        self.output: list[str] = []
        self.meter = CostMeter()  # whole-run aggregate
        self._no_delta = options.no_delta
        self._no_gamma = options.no_gamma
        self._check_mode = options.causality_check
        self._delta_serial = options.calib.delta_serial_fraction
        self._per_rule_tasks = options.task_granularity == "rule"
        # retention hints: table -> (field position, keep_last, max seen)
        self._retention: dict[str, tuple[int, int, int | None]] = {}
        for name, hint in options.retention.items():
            schema = program.schemas().get(name)
            if schema is None:
                raise EngineError(f"retention hint for unknown table {name!r}")
            self._retention[name] = (schema.field_position(hint.field), hint.keep_last, None)
        self._lock: ContextManager | None = None
        if self.strategy.needs_locks:
            import threading

            self._lock = threading.Lock()
        self._ran = False
        self._steps = 0

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _make_strategy(options: ExecOptions) -> Strategy:
        if options.strategy == "sequential":
            return SequentialStrategy(gc=options.gc_model)
        if options.strategy == "forkjoin":
            return ForkJoinStrategy(
                options.threads, calib=options.calib, gc=options.gc_model
            )
        if options.strategy == "chaos":
            return ChaosStrategy(
                seed=options.chaos_seed or 0, fault_plan=options.fault_plan
            )
        return ThreadStrategy(options.threads)

    @staticmethod
    def _make_registry(
        options: ExecOptions, strategy: Strategy, program: Program | None = None
    ) -> StoreRegistry:
        if strategy.concurrent_stores:
            default = lambda schema: ConcurrentSkipListStore(schema)  # noqa: E731
        else:
            default = lambda schema: TreeSetStore(schema)  # noqa: E731
        registry = StoreRegistry(default)
        for name, factory in options.store_overrides.items():
            registry.override(name, factory)
        plan = Engine._index_plan(options, program)
        if plan:
            from repro.gamma.indexed import IndexingRegistry

            return IndexingRegistry(registry, plan)
        return registry

    @staticmethod
    def _index_plan(options: ExecOptions, program: Program | None) -> dict:
        """The effective index plan for this run: empty when indexing is
        off, the static planner's output merged with explicit specs in
        ``auto`` mode, the explicit specs alone in ``explicit`` mode.
        -noGamma tables never get indexes (they are never stored), and
        auto mode leaves tables with a hand-chosen ``store_overrides``
        representation alone — an explicit §1.4 commitment beats the
        planner (explicit ``indexes`` entries still apply)."""
        if options.index_mode == "off":
            return {}
        plan: dict[str, tuple] = {}
        if options.index_mode == "auto" and program is not None:
            from repro.gamma.indexplan import plan_indexes

            plan.update(
                (name, specs)
                for name, specs in plan_indexes(program).items()
                if name not in options.store_overrides
            )
        for name, specs in options.indexes.items():
            plan[name] = tuple(specs)
        return {
            name: specs
            for name, specs in plan.items()
            if specs and name not in options.no_gamma
        }

    def _guarded(self) -> ContextManager:
        return self._lock if self._lock is not None else nullcontext()

    # -- put routing -------------------------------------------------------------

    def _handle_puts(self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str) -> None:
        """Route a rule's puts.  -noDelta tables cascade immediately
        inside the producing task (§5.1); everything else is buffered on
        the task result and enters Delta after the batch joins — which
        keeps Delta mutation out of the parallel phase and effect order
        deterministic."""
        for tup in ctx_puts:
            name = tup.schema.name
            self.stats.on_put(rule_name, name)
            if name in self._no_delta:
                self.stats.table(name).delta_bypass += 1
                self._immediate(tup, result)
            else:
                result.puts.append(tup)

    def _immediate(self, tup: JTuple, result: TaskResult) -> None:
        """-noDelta path: straight into Gamma and fire now, inside the
        producing task."""
        name = tup.schema.name
        if name not in self._no_gamma:
            store = self.db.store(name)
            with self._guarded():
                outcome = self.db.insert(tup)
            result.meter.charge_store_op("insert", store)
            if outcome is InsertOutcome.DUPLICATE:
                self.stats.table(name).duplicates += 1
                return
            self.stats.table(name).gamma_inserts += 1
        else:
            self.stats.table(name).gamma_skipped += 1
        self._fire_rules(tup, result)

    def _enqueue_delta(self, tup: JTuple, meter: CostMeter) -> bool:
        """Post-batch (sequential) insertion of one deferred put into
        the Delta tree, charged to the producing task's meter.  Returns
        whether the tuple was accepted (False = duplicate)."""
        name = tup.schema.name
        if name not in self._no_gamma and tup in self.db:
            self.stats.table(name).duplicates += 1
            return False
        ts = self.db.timestamp(tup)
        if self.delta.insert(tup, ts):
            self.stats.table(name).delta_inserts += 1
            meter.charge("delta_insert")
            if self._delta_serial > 0.0:
                meter.charge_shared(
                    "delta", DEFAULT_WEIGHTS["delta_insert"] * self._delta_serial
                )
            return True
        self.stats.table(name).duplicates += 1
        return False

    # -- rule firing -------------------------------------------------------------

    def _fire_rules(self, tup: JTuple, result: TaskResult) -> None:
        for rule in self.program.rules_for(tup.schema.name):
            self._fire_one(rule, tup, result)

    def _fire_one(self, rule: Rule, tup: JTuple, result: TaskResult) -> None:
        self.stats.on_fire(tup.schema.name, rule.name)
        result.meter.charge("rule_fire")
        ctx = RuleContext(
            self.db,
            self.program.decls,
            result.meter,
            rule,
            tup,
            self.db.timestamp(tup),
            check_mode=self._check_mode,
            collector=self.stats,
            lock=self._lock,
            scheduler=self.strategy.yield_point,
            trace=result.events if self.tracer is not None else None,
        )
        rule.body(ctx, tup)
        ctx.finish()
        result.fired_rules.append(rule.name)
        if ctx.output:
            result.output.extend(ctx.output)
            self.stats.rule(rule.name).output_lines += len(ctx.output)
        self._handle_puts(ctx.puts, result, rule.name)

    # -- step machinery -------------------------------------------------------------

    def _make_task(self, tup: JTuple, outcome: InsertOutcome | None) -> EngineTask:
        """Task closure for one popped tuple.  ``outcome`` is the Gamma
        insertion result decided in the sequential prepare phase; the
        task charges for it and fires the triggered rules."""

        def run() -> TaskResult:
            result = TaskResult(trigger=tup)
            result.meter.charge("delta_pop")
            name = tup.schema.name
            if outcome is None:  # -noGamma table
                self.stats.table(name).gamma_skipped += 1
            else:
                result.meter.charge_store_op("insert", self.db.store(name))
                if outcome is InsertOutcome.DUPLICATE:
                    result.duplicate = True
                    self.stats.table(name).duplicates += 1
                    return result
                self.stats.table(name).gamma_inserts += 1
            self._fire_rules(tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _make_rule_task(
        self,
        tup: JTuple,
        rule: Rule,
        outcome: InsertOutcome | None,
        charge_insert: bool,
    ) -> EngineTask:
        """§5.2's first extension: "we could create one task per rule
        that is triggered".  The first rule task of a tuple also pays
        its Delta-pop and Gamma-insert costs."""

        def run() -> TaskResult:
            result = TaskResult(trigger=tup)
            name = tup.schema.name
            if charge_insert:
                result.meter.charge("delta_pop")
                if outcome is None:
                    self.stats.table(name).gamma_skipped += 1
                else:
                    result.meter.charge_store_op("insert", self.db.store(name))
                    self.stats.table(name).gamma_inserts += 1
            self._fire_one(rule, tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _build_tasks(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[EngineTask]:
        if not self._per_rule_tasks:
            return [self._make_task(tup, outcome) for tup, outcome in prepared]
        tasks: list[EngineTask] = []
        for tup, outcome in prepared:
            if outcome is InsertOutcome.DUPLICATE:
                tasks.append(self._make_task(tup, outcome))  # dup bookkeeping
                continue
            rules = self.program.rules_for(tup.schema.name)
            if not rules:
                tasks.append(self._make_task(tup, outcome))
                continue
            for i, rule in enumerate(rules):
                tasks.append(self._make_rule_task(tup, rule, outcome, charge_insert=i == 0))
        return tasks

    def _apply_retention(self) -> None:
        """Prune Gamma generations per the lifetime hints (§5 step 4)."""
        for name, (pos, keep, max_seen) in list(self._retention.items()):
            store = self.db.store(name)
            new_max = max_seen
            for t in store.scan():
                v = t.values[pos]
                if new_max is None or v > new_max:
                    new_max = v
            if new_max is None or new_max == max_seen:
                continue
            cutoff = new_max - keep + 1
            doomed = [t for t in store.scan() if t.values[pos] < cutoff]
            for t in doomed:
                store.discard(t)
            if doomed:
                self.stats.table(name).gamma_discarded += len(doomed)
            self._retention[name] = (pos, keep, new_max)

    def _flush_task_events(self, results: list[TaskResult]) -> None:
        """Emit each task's buffered micro events plus a per-task
        summary, in submission order — the only order that is stable
        across strategies."""
        assert self.tracer is not None
        for r in results:
            for kind, data in r.events:
                self.tracer.emit(kind, data)
            self.tracer.emit(
                "task",
                {
                    "trigger": repr(r.trigger),
                    "duplicate": r.duplicate,
                    "fired": list(r.fired_rules),
                    "n_puts": len(r.puts),
                    "n_output": len(r.output),
                    "cost": r.meter.total_cost,
                },
            )

    def _run_step(self, batch: list[JTuple]) -> None:
        self.stats.on_step(len(batch))
        if self.tracer is not None:
            self.tracer.step = self._steps
            self.tracer.emit(
                "step",
                {
                    "step": self._steps,
                    "width": len(batch),
                    "frontier": [repr(t) for t in batch],
                },
            )
        # Phase A (sequential): move the whole class into Gamma, so the
        # rules fired in phase B see every tuple of the class ("positive
        # queries with timestamps <= T", §4) and Gamma stays read-only
        # while the batch fires.
        prepared: list[tuple[JTuple, InsertOutcome | None]] = []
        for tup in batch:
            if tup.schema.name in self._no_gamma:
                prepared.append((tup, None))
            else:
                prepared.append((tup, self.db.insert(tup)))
        # Phase B: fire (possibly genuinely threaded).
        tasks = self._build_tasks(prepared)
        results = self.strategy.run_batch(tasks)
        if self.tracer is not None:
            self._flush_task_events(results)
        # Phase C (sequential, deterministic order): apply buffered puts.
        for r in results:
            for put in r.puts:
                accepted = self._enqueue_delta(put, r.meter)
                if self.tracer is not None:
                    self.tracer.emit(
                        "effect", {"tuple": repr(put), "accepted": accepted}
                    )
        if self._retention:
            self._apply_retention()
        allocations = 0.0
        for r in results:
            self.output.extend(r.output)
            allocations += r.meter.count("tuple_put") + r.meter.count("delta_insert")
            self.meter.merge(r.meter)
        retained = float(self.db.heap_tuples())
        self.strategy.account_step(results, allocations=allocations, retained=retained)

    # -- run -------------------------------------------------------------

    def run(self) -> RunResult:
        if self._ran:
            raise EngineError("an Engine instance can only run once")
        self._ran = True
        start = time.perf_counter()
        if self.tracer is not None:
            fp = self.options.fault_plan
            self.tracer.emit(
                "run-start",
                {
                    "program": self.program.name,
                    "strategy": self.strategy.name,
                    "threads": self.strategy.n_threads,
                    "chaos_seed": self.options.chaos_seed,
                    "fault_plan": fp.to_dict() if fp is not None else None,
                    "task_granularity": self.options.task_granularity,
                },
                meta=True,
            )

        # Initial puts run as one synthetic sequential task so -noDelta
        # cascades work during initialisation too.
        init_result = TaskResult(trigger=None)  # type: ignore[arg-type]
        for tup in self.program.initial_puts:
            init_result.meter.charge("tuple_put")
            self.stats.on_put("<init>", tup.schema.name)
            if tup.schema.name in self._no_delta:
                self.stats.table(tup.schema.name).delta_bypass += 1
                self._immediate(tup, init_result)
            else:
                init_result.puts.append(tup)
        for put in init_result.puts:
            accepted = self._enqueue_delta(put, init_result.meter)
            if self.tracer is not None:
                self.tracer.emit("effect", {"tuple": repr(put), "accepted": accepted})
        if self.tracer is not None and init_result.events:
            for kind, data in init_result.events:
                self.tracer.emit(kind, data)
        self.output.extend(init_result.output)
        self.meter.merge(init_result.meter)
        self.strategy.account_serial(init_result.meter.total_cost)
        if self._retention:
            # -noDelta cascades can run entirely inside initialisation
            # (zero engine steps); lifetime hints still apply
            self._apply_retention()

        max_steps = self.options.max_steps
        while self.delta:
            if max_steps is not None and self._steps >= max_steps:
                raise EngineError(
                    f"program exceeded max_steps={max_steps}; "
                    f"{len(self.delta)} tuples still pending"
                )
            self._steps += 1
            batch = self.delta.pop_min_class()
            self._run_step(batch)

        wall = time.perf_counter() - start
        self.strategy.close()
        if self.tracer is not None:
            self.tracer.step = self._steps
            self.tracer.emit(
                "run-end",
                {
                    "steps": self._steps,
                    "output": output_hash(self.output),
                    "n_output": len(self.output),
                    "table_sizes": dict(sorted(self.db.table_sizes().items())),
                },
            )
            self.tracer.run_end()
        return RunResult(
            program=self.program.name,
            strategy=self.strategy.name,
            threads=self.strategy.n_threads,
            output=self.output,
            wall_time=wall,
            report=self.strategy.report(),
            stats=self.stats,
            table_sizes=self.db.table_sizes(),
            meter=self.meter,
            steps=self._steps,
            options=self.options,
            database=self.db,
            trace=self.tracer,
        )
