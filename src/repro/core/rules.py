"""Rules and the rule-execution context.

A rule is the paper's ``foreach`` construct: it is *triggered* by each
tuple of one table, may query the Gamma database, and ``put``s new
tuples (§3).  Rule bodies here are plain Python callables
``body(ctx, trigger_tuple)`` — the analogue of the generated Java rule
methods — but they interact with the world only through the
:class:`RuleContext`, which

* records every ``put`` (the engine applies them after the body runs,
  so a body can never observe its own effects — matching the paper's
  semantics where puts land in the Delta set);
* serves queries against the read-only Gamma snapshot;
* meters abstract cost for the virtual-time machine;
* enforces the law of causality dynamically (puts must not travel into
  the past; negative/aggregate queries must be about the fixed past)
  when the engine runs with ``causality_check != "off"``.

Rules may carry symbolic metadata (``meta``) consumed by the static
causality prover in :mod:`repro.solver`; that is the analogue of the
paper's SMT proof obligations (§4).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.errors import (
    CausalityError,
    RuleError,
    StratificationWarning,
    UnsafeOperationError,
)
from repro.core.ordering import Lit, OrderDecls, Seq, Timestamp, compare_timestamps
from repro.core.query import Query, QueryKind, build_query
from repro.core.reducers import Reducer, reduce_all
from repro.core.tuples import JTuple, TableHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.database import Database
    from repro.exec.metering import CostMeter
    from repro.plan.cache import PlanCache
    from repro.plan.compile import CompiledQueryPlan

__all__ = ["Rule", "RuleContext", "query_upper_bound"]

RuleBody = Callable[["RuleContext", JTuple], None]


class Rule:
    """One ``foreach`` rule.

    Parameters
    ----------
    name:
        Diagnostic name (defaults to the body function's name).
    trigger:
        The table whose tuples fire this rule.
    body:
        ``body(ctx, tup)``.
    unsafe:
        Allows side-effecting context operations (file I/O); mirrors the
        paper's 'unsafe' system-rule blocks (§1.2 footnote).
    meta:
        Optional symbolic description for the static prover
        (:class:`repro.solver.obligations.RuleMeta`).
    assume_stratified:
        Suppresses dynamic negative-query warnings for this rule — the
        analogue of the programmer accepting an SMT warning after
        manual reasoning/invariants (§4).
    """

    __slots__ = ("name", "trigger", "body", "unsafe", "meta", "assume_stratified")

    def __init__(
        self,
        trigger: TableHandle,
        body: RuleBody,
        name: str | None = None,
        unsafe: bool = False,
        meta: Any = None,
        assume_stratified: bool = False,
    ):
        self.trigger = trigger
        self.body = body
        self.name = name or getattr(body, "__name__", "<rule>")
        self.unsafe = unsafe
        self.meta = meta
        self.assume_stratified = assume_stratified

    def __repr__(self) -> str:
        tag = " unsafe" if self.unsafe else ""
        return f"<rule {self.name} foreach({self.trigger.name}){tag}>"


def query_upper_bound(
    query: Query, decls: OrderDecls
) -> tuple[Timestamp, bool] | None:
    """Best-effort upper bound on the timestamps a query can observe.

    Returns ``(ts, strict)`` where ``strict`` means the real bound is
    strictly below ``ts`` (an exclusive range closed the deciding
    level), or ``None`` when the constraints leave some ``seq`` level
    unbounded — in that case the dynamic checker cannot adjudicate and
    defers to the static prover / ``assume_stratified``.
    """
    key: list[tuple] = []
    display: list[Any] = []
    strict = False
    from repro.core.ordering import KIND_LIT, KIND_PAR, KIND_SEQ  # local: avoid cycle noise

    for entry in query.schema.orderby:
        if isinstance(entry, Lit):
            key.append((KIND_LIT, decls.rank(entry.name)))
            display.append(entry.name)
        elif isinstance(entry, Seq):
            pos = query.schema.field_position(entry.field)
            if pos in query.eq:
                key.append((KIND_SEQ, query.eq[pos]))
                display.append(query.eq[pos])
            elif pos in query.ranges:
                lo, hi, lo_inc, hi_inc = query.ranges[pos]
                if hi is None:
                    return None
                key.append((KIND_SEQ, hi))
                display.append(hi)
                strict = not hi_inc
                break  # later levels cannot raise the bound past this one
            else:
                return None
        else:  # Par level: all values equivalent, contributes nothing
            key.append((KIND_PAR,))
            display.append("*")
    return Timestamp(tuple(key), tuple(display)), strict


def _literal_levels_declared(a: Timestamp, b: Timestamp, decls: OrderDecls) -> bool:
    """True iff the first level at which ``a`` and ``b`` differ is not a
    literal pair that lacks an explicit ``order`` declaration.

    The runtime's Delta tree totalises undeclared literals arbitrarily
    (deterministic but meaningless), so a causality argument resting on
    such a pair is unsound — the missing-``order`` situation of §6.1.
    """
    from repro.core.ordering import KIND_LIT

    names = None
    for ca, cb in zip(a.key, b.key):
        if ca == cb:
            continue
        if ca[0] == KIND_LIT and cb[0] == KIND_LIT:
            if names is None:
                names = decls.literals()
            try:
                return decls.comparable(names[ca[1]], names[cb[1]])
            except IndexError:  # pragma: no cover - defensive
                return False
        return True  # first difference is a value level: fine
    return True  # equal or prefix-related: no literal decision involved


class RuleContext:
    """Execution context handed to a rule body for one firing."""

    __slots__ = (
        "_db",
        "_decls",
        "_meter",
        "_rule",
        "trigger",
        "trigger_ts",
        "puts",
        "output",
        "_check_mode",
        "_adjudicate",
        "_finished",
        "_neg_warned",
        "_ts_ok",
        "_collector",
        "_lock",
        "_sched",
        "_trace",
        "_plans",
        "_record",
    )

    def __init__(
        self,
        db: "Database",
        decls: OrderDecls,
        meter: "CostMeter",
        rule: Rule,
        trigger: JTuple,
        trigger_ts: Timestamp,
        check_mode: str = "warn",
        collector: Any = None,
        lock: Any = None,
        scheduler: Any = None,
        trace: list | None = None,
        plans: "PlanCache | None" = None,
        record: Any = None,
    ):
        self._db = db
        self._decls = decls
        self._meter = meter
        self._rule = rule
        self.trigger = trigger
        self.trigger_ts = trigger_ts
        self.puts: list[JTuple] = []
        self.output: list[str] = []
        self._check_mode = check_mode
        # adjudication of negative/aggregate queries is settled per
        # firing; hot paths branch on this instead of calling into the
        # checker just to return
        self._adjudicate = check_mode != "off" and not rule.assume_stratified
        self._finished = False
        self._neg_warned = False
        # identity of the last timestamp object that passed the put
        # causality check — timestamps are memoised per tuple (and
        # shared for constant orderbys), so consecutive puts of the
        # same table usually present the same object again
        self._ts_ok = None
        self._collector = collector
        self._lock = lock
        # strategy yield hook: called at every put/query boundary so a
        # perturbing strategy (chaos) can interleave or fault the body
        self._sched = scheduler
        # per-task trace event sink (flushed by the engine in
        # deterministic submission order)
        self._trace = trace
        # compiled query plans shared across all firings of this run;
        # None -> every query rebuilds through build_query (legacy path)
        self._plans = plans
        # retraction mode: FiringRecord accumulating this firing's
        # Gamma footprint (reads, query shapes, native tables)
        self._record = record

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> None:
        self._finished = True

    def _guard(self) -> None:
        if self._finished:
            raise RuleError(
                f"rule {self._rule.name} used its context after completion"
            )

    # -- effects ------------------------------------------------------------

    def put(self, tup: JTuple) -> None:
        """Add a tuple to the database (via the Delta set).

        Enforces the law of causality: the new tuple's timestamp must
        not precede the trigger's (§4: "rules can affect the future,
        but they are not allowed to change the past").
        """
        self._guard()
        if self._sched is not None:
            self._sched()
        if not isinstance(tup, JTuple):
            raise RuleError(f"put expects a tuple, got {type(tup).__name__}")
        if self._trace is not None:
            self._trace.append(
                (
                    "put",
                    {
                        "rule": self._rule.name,
                        "table": tup.schema.name,
                        "tuple": repr(tup),
                    },
                )
            )
        if self._check_mode != "off":
            ts = self._db.timestamp(tup)
            if ts is not self._ts_ok:
                if compare_timestamps(ts, self.trigger_ts) < 0:
                    raise CausalityError(
                        f"rule {self._rule.name} put {tup!r} (ts {ts}) into the "
                        f"past of its trigger {self.trigger!r} (ts {self.trigger_ts})"
                    )
                self._ts_ok = ts
        self._meter.charge("tuple_put")
        self.puts.append(tup)

    def println(self, *args: Any) -> None:
        """Debug printing (§6.2 footnote 8: side-effecting, tolerated in
        rules for tracing; the kosher route is putting Println tuples).
        Output is captured into the run result, keeping runs pure."""
        self._guard()
        self.output.append(" ".join(str(a) for a in args))

    def charge(self, n: float, counter: str = "user_work") -> None:
        """Explicitly meter abstract work for an inner loop (the
        analogue of real computation inside a generated Java rule)."""
        self._meter.charge(counter, n=1, cost=n)

    def charge_shared(self, resource: str, cost: float) -> None:
        """Mark part of this task's work as serialising on a shared
        machine resource (``"membw"`` for dense-array streaming,
        ``"gamma:<Table>"`` for a shared structure).  Rules using the
        ``ctx.native`` bulk path charge their memory traffic this way,
        since no store-op metering sees those writes — it is what bends
        Fig 11 past ~20 cores."""
        self._guard()
        self._meter.charge_shared(resource, cost)

    def io_allowed(self) -> None:
        """Raise unless this rule was declared ``unsafe``."""
        if not self._rule.unsafe:
            raise UnsafeOperationError(
                f"rule {self._rule.name} attempted I/O but is not declared unsafe"
            )

    def native(self, table: TableHandle):
        """Direct access to a table's Gamma store — the 'native arrays'
        escape hatch (§6.4/§6.6): unsafe rules may read/write a
        :class:`~repro.gamma.nativearray.NativeArrayStore`'s numpy
        arrays in bulk, bypassing per-tuple ``put`` (the analogue of
        generated Java writing primitive arrays).  The rule must be
        declared ``unsafe`` because this steps outside the immutable
        tuple discipline; it remains deterministic as long as writes
        target slices owned by this rule's trigger (par-partitioned
        regions), which is the invariant the Median program maintains."""
        self._guard()
        self.io_allowed()
        if self._record is not None:
            # bulk writes are invisible to per-tuple support tracking:
            # remember the table so retraction can taint-clear it
            self._record.native.add(table.schema.name)
        return self._db.store(table)

    # -- queries ------------------------------------------------------------

    def _causal_filter(self, results: list[JTuple]) -> list[JTuple]:
        """Restrict query results to the firing's causal past.

        Forward execution keeps the invariant "Gamma holds only tuples
        at or below the current class", so this filter never drops
        anything there.  Under retraction, a repair drain travels below
        the old frontier while Gamma still holds later-derived tuples a
        scratch run could not have seen at this timestamp — a refired
        non-monotonic rule observing them diverges from the scratch
        recompute.  Hiding tuples ordered strictly after the trigger's
        class restores scratch-equivalent visibility (same-class tuples
        stay visible: phase A lands the whole class before phase B
        fires it).
        """
        if not results:
            return results
        ts_of = self._db.timestamp
        tts = self.trigger_ts
        return [t for t in results if compare_timestamps(ts_of(t), tts) <= 0]

    def _run_query(self, query: Query) -> list[JTuple]:
        if self._sched is not None:
            self._sched()
        store = self._db.store(query.schema.name)
        if self._lock is not None:
            # real-threads strategy: coarse lock so store iteration never
            # races a -noDelta cascade insert (functional validation only)
            with self._lock:
                results = self._db.select(query)
        else:
            results = self._db.select(query)
        if self._record is not None:
            results = self._causal_filter(results)
        self._meter.charge_lookup(store, query)
        if results:
            self._meter.charge_store_op("result", store, len(results))
        if self._collector is not None:
            names = query.schema.field_names
            self._collector.on_query(
                self._rule.name,
                query.schema.name,
                len(results),
                eq_fields=tuple(sorted(names[i] for i in query.eq)),
                range_fields=tuple(sorted(names[i] for i in query.ranges)),
            )
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": query.schema.name,
                        "kind": query.kind.value,
                        "n_results": len(results),
                    },
                )
            )
        if self._record is not None:
            self._record.note_query(query, results)
        return results

    def _run_planned(self, plan: "CompiledQueryPlan", query: Query) -> list[JTuple]:
        """:meth:`_run_query` for the compiled-plan fast path: the
        store's access path and metering tags were resolved when the
        shape compiled, so per firing this is one prepared select plus
        flat counter bumps."""
        if self._sched is not None:
            self._sched()
        ps = plan.prepared
        if self._lock is not None:
            with self._lock:
                results = ps.run(query)
        else:
            results = ps.run(query)
        if self._record is not None:
            results = self._causal_filter(results)
        n = len(results)
        self._meter.charge_planned(ps, n)
        if self._collector is not None:
            hit = plan.rule_hits.get(self._rule.name)
            if hit is None:
                plan.rule_hits[self._rule.name] = [1, n]
            else:
                hit[0] += 1
                hit[1] += n
        if self._trace is not None:
            self._trace.append(
                (
                    "query",
                    {
                        "rule": self._rule.name,
                        "table": plan.table_name,
                        "kind": query.kind.value,
                        "n_results": len(results),
                    },
                )
            )
        if self._record is not None:
            self._record.note_query(query, results)
        return results

    def _check_negative(self, query: Query) -> None:
        """Dynamic slice of the §4 law for negative/aggregate queries:
        their observable region must lie strictly before the trigger."""
        if self._check_mode == "off" or self._rule.assume_stratified:
            return
        self._adjudicate_negative(
            query_upper_bound(query, self._decls), query.kind.value, query.schema.name
        )

    def _check_negative_planned(
        self, plan: "CompiledQueryPlan", query: Query
    ) -> None:
        """:meth:`_check_negative` with the orderby walk precompiled."""
        if self._check_mode == "off" or self._rule.assume_stratified:
            return
        bound = plan.bound.evaluate(query) if plan.bound is not None else None
        self._adjudicate_negative(bound, query.kind.value, plan.table_name)

    def _adjudicate_negative(
        self,
        bound: tuple[Timestamp, bool] | None,
        kind_value: str,
        table_name: str,
    ) -> None:
        ok: bool | None
        if bound is None:
            ok = None  # cannot adjudicate dynamically
        else:
            ts, strict = bound
            if not _literal_levels_declared(ts, self.trigger_ts, self._decls):
                # the deciding literal pair is only ordered by the
                # arbitrary totalisation, not by the programmer's order
                # declarations — the §6.1 missing-`order` scenario
                ok = None
            else:
                c = compare_timestamps(ts, self.trigger_ts)
                ok = c < 0 or (c == 0 and strict)
        if ok is None:
            if not self._neg_warned:
                self._neg_warned = True
                warnings.warn(
                    f"rule {self._rule.name}: {kind_value} query on "
                    f"{table_name} has no statically bounded timestamp; "
                    f"stratification not verified dynamically",
                    StratificationWarning,
                    stacklevel=4,
                )
        elif not ok:
            msg = (
                f"rule {self._rule.name}: {kind_value} query on "
                f"{table_name} can observe the present/future of its "
                f"trigger (ts {self.trigger_ts}) — violates local stratification"
            )
            if self._check_mode == "strict":
                raise CausalityError(msg)
            if not self._neg_warned:
                self._neg_warned = True
                warnings.warn(msg, StratificationWarning, stacklevel=4)

    def get(
        self,
        table: TableHandle,
        *prefix: Any,
        where: Callable[[JTuple], bool] | None = None,
        ranges: Mapping[str, Any] | None = None,
        **eq: Any,
    ) -> list[JTuple]:
        """Positive query: all matching tuples (``get T(args)``)."""
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(table, *prefix, where=where, ranges=ranges, **eq)
            return self._run_query(q)
        plan, q = plans.lookup(table, prefix, where, ranges, eq, QueryKind.POSITIVE)
        return self._run_planned(plan, q)

    def get_uniq(
        self,
        table: TableHandle,
        *prefix: Any,
        where: Callable[[JTuple], bool] | None = None,
        ranges: Mapping[str, Any] | None = None,
        **eq: Any,
    ) -> JTuple | None:
        """``get uniq? T(args)``: the unique match or ``None``.

        Observing *absence* is a negative query for causality purposes,
        so this is checked as NEGATIVE.  More than one match raises.
        """
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(
                table, *prefix, where=where, ranges=ranges, kind=QueryKind.NEGATIVE, **eq
            )
            self._check_negative(q)
            results = self._run_query(q)
        else:
            plan, q = plans.lookup(table, prefix, where, ranges, eq, QueryKind.NEGATIVE)
            if self._adjudicate:
                self._check_negative_planned(plan, q)
            results = self._run_planned(plan, q)
        if len(results) > 1:
            raise RuleError(
                f"get uniq? {table.name} matched {len(results)} tuples"
            )
        return results[0] if results else None

    def exists(self, table: TableHandle, *prefix: Any, **kw: Any) -> bool:
        """Positive existence test."""
        return bool(self.get(table, *prefix, **kw))

    def absent(
        self,
        table: TableHandle,
        *prefix: Any,
        where: Callable[[JTuple], bool] | None = None,
        ranges: Mapping[str, Any] | None = None,
        **eq: Any,
    ) -> bool:
        """Negative query: true iff *no* tuple matches."""
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(
                table, *prefix, where=where, ranges=ranges, kind=QueryKind.NEGATIVE, **eq
            )
            self._check_negative(q)
            return not self._run_query(q)
        plan, q = plans.lookup(table, prefix, where, ranges, eq, QueryKind.NEGATIVE)
        if self._adjudicate:
            self._check_negative_planned(plan, q)
        return not self._run_planned(plan, q)

    def get_min(
        self,
        table: TableHandle,
        *prefix: Any,
        by: str,
        where: Callable[[JTuple], bool] | None = None,
        ranges: Mapping[str, Any] | None = None,
        **eq: Any,
    ) -> JTuple | None:
        """``get min T(args)``: matching tuple minimising field ``by``
        (an aggregate query)."""
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(
                table, *prefix, where=where, ranges=ranges, kind=QueryKind.AGGREGATE, **eq
            )
            self._check_negative(q)
            results = self._run_query(q)
        else:
            plan, q = plans.lookup(table, prefix, where, ranges, eq, QueryKind.AGGREGATE)
            if self._adjudicate:
                self._check_negative_planned(plan, q)
            results = self._run_planned(plan, q)
        if not results:
            return None
        pos = table.schema.field_position(by)
        return min(results, key=lambda t: t.values[pos])

    def count(self, table: TableHandle, *prefix: Any, **kw: Any) -> int:
        """Aggregate count of matching tuples."""
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(table, *prefix, kind=QueryKind.AGGREGATE, **kw)
            self._check_negative(q)
            return len(self._run_query(q))
        where = kw.pop("where", None)
        ranges = kw.pop("ranges", None)
        plan, q = plans.lookup(table, prefix, where, ranges, kw, QueryKind.AGGREGATE)
        if self._adjudicate:
            self._check_negative_planned(plan, q)
        return len(self._run_planned(plan, q))

    def reduce(
        self,
        table: TableHandle,
        *prefix: Any,
        reducer: Reducer,
        value: Callable[[JTuple], Any],
        where: Callable[[JTuple], bool] | None = None,
        ranges: Mapping[str, Any] | None = None,
        **eq: Any,
    ) -> Any:
        """Aggregate reduction over matching tuples — the Fig 4 pattern
        ``for (record : get PvWatts(...)) stats += record.power``."""
        self._guard()
        plans = self._plans
        if plans is None:
            q = build_query(
                table, *prefix, where=where, ranges=ranges, kind=QueryKind.AGGREGATE, **eq
            )
            self._check_negative(q)
            results = self._run_query(q)
        else:
            plan, q = plans.lookup(table, prefix, where, ranges, eq, QueryKind.AGGREGATE)
            if self._adjudicate:
                self._check_negative_planned(plan, q)
            results = self._run_planned(plan, q)
        self._meter.charge("reduce_op", n=len(results))
        return reduce_all(reducer, (value(t) for t in results))

    def par_reduce(
        self,
        values: Iterable[Any],
        reducer: Reducer,
        chunks: int = 8,
        cost_per_item: float = 0.3,
    ) -> Any:
        """§5.2's reducer-loop extension: "Loops that do involve a
        reducer object could also be executed in parallel, with a
        tree-based pass to combine the final reducer results."

        Folds ``values`` chunk-wise and combines the partials in a
        balanced tree (results identical to the sequential fold up to
        float reassociation, guaranteed by the reducer's ``combine``
        law), while metering the loop's cost as *divisible* so the
        virtual fork/join machine spreads it over cores.
        """
        self._guard()
        from repro.core.reducers import tree_reduce

        vals = list(values)
        chunks = max(1, min(chunks, len(vals))) if vals else 1
        size = (len(vals) + chunks - 1) // chunks if vals else 0
        chunked = [vals[i * size : (i + 1) * size] for i in range(chunks)] if vals else []
        result, _depth = tree_reduce(reducer, chunked)
        self._meter.charge_parallel(cost_per_item * len(vals), chunks)
        return result

    def par_loop(self, items: Iterable[Any]) -> Iterable[Any]:
        """Mark a loop body as independent (no reducer), the §5.2
        "embarrassingly parallel for loops within rules" hook.  The
        current all-minimums strategy runs it sequentially — exactly
        like the paper's implementation — but the marker lets the
        metering layer account the loop's parallel potential."""
        self._guard()
        return items
