"""Table declarations: schemas, fields, primary keys.

The paper declares tables with a concise one-line notation::

    table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)

``->`` separates the primary-key fields from the dependent fields; the
generated table carries the invariant that at most one tuple exists per
key value (§3).  Tables with no ``->`` are plain sets of tuples.

This module parses that notation (:func:`parse_fields`) and represents
the result as a :class:`TableSchema`, which also owns the table's
``orderby`` specification.  Actual tuple instances live in
:mod:`repro.core.tuples`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.errors import SchemaError, UnknownFieldError
from repro.core.ordering import Lit, OrderByEntry, Par, Seq, parse_orderby

__all__ = ["Field", "TableSchema", "parse_fields", "TYPE_DEFAULTS"]

# Java-style type names from the paper mapped to Python checkers.
_TYPE_ALIASES = {
    "int": "int",
    "long": "int",
    "double": "float",
    "float": "float",
    "String": "str",
    "str": "str",
    "boolean": "bool",
    "bool": "bool",
    "any": "any",
}

_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "any": lambda v: True,
}

#: Default values used when a field is omitted at construction time
#: ("use default values for frame and dy", §3).
TYPE_DEFAULTS = {"int": 0, "float": 0.0, "str": "", "bool": False, "any": None}


@dataclass(frozen=True, slots=True)
class Field:
    """One column of a table."""

    name: str
    type: str  # normalised: int/float/str/bool/any
    is_key: bool

    def check(self, value: Any) -> bool:
        return _TYPE_CHECKS[self.type](value)

    @property
    def default(self) -> Any:
        return TYPE_DEFAULTS[self.type]


def _parse_one_field(text: str, is_key: bool, prev_type: str | None) -> Field:
    parts = text.split()
    if len(parts) == 2:
        tname, fname = parts
    elif len(parts) == 1 and prev_type is not None:
        # "int x, y" style: y inherits the preceding type
        tname, fname = prev_type, parts[0]
    else:
        raise SchemaError(f"cannot parse field declaration {text!r}")
    if tname not in _TYPE_ALIASES:
        raise SchemaError(f"unknown field type {tname!r} in {text!r}")
    if not fname.isidentifier():
        raise SchemaError(f"bad field name {fname!r}")
    return Field(fname, _TYPE_ALIASES[tname], is_key)


def parse_fields(decl: str) -> tuple[Field, ...]:
    """Parse ``"int frame -> int x, int y"`` into Field objects.

    Everything before ``->`` is key, everything after is dependent.  If
    there is no ``->`` all fields are ordinary (whole-tuple set
    semantics).
    """
    decl = decl.strip()
    if not decl:
        raise SchemaError("empty field declaration")
    if "->" in decl:
        key_part, _, dep_part = decl.partition("->")
        key_texts = [t.strip() for t in key_part.split(",") if t.strip()]
        dep_texts = [t.strip() for t in dep_part.split(",") if t.strip()]
        if not key_texts or not dep_texts:
            raise SchemaError(f"'->' needs fields on both sides: {decl!r}")
    else:
        key_texts = []
        dep_texts = [t.strip() for t in decl.split(",") if t.strip()]

    fields: list[Field] = []
    prev_type: str | None = None
    for text in key_texts:
        f = _parse_one_field(text, True, prev_type)
        prev_type = f.type if len(text.split()) == 2 else prev_type
        fields.append(f)
    prev_type = None
    for text in dep_texts:
        f = _parse_one_field(text, "->" in decl, prev_type)  # placeholder, fixed below
        f = Field(f.name, f.type, False)
        prev_type = f.type if len(text.split()) == 2 else prev_type
        fields.append(f)

    names = [f.name for f in fields]
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate field names in {decl!r}")
    return tuple(fields)


class TableSchema:
    """Schema of one relational table: named typed fields, optional
    primary key, and the table's orderby specification.

    Parameters
    ----------
    name:
        Table name (also the default literal tag used in orderby lists).
    fields:
        Either the paper's one-line string notation or an iterable of
        :class:`Field`.
    orderby:
        The orderby list — entries may be :class:`Lit`/:class:`Seq`/
        :class:`Par` objects or strings (``"Int"``, ``"seq frame"``).
        An empty orderby is legal: all tuples of the table are mutually
        equivalent.
    """

    __slots__ = (
        "name",
        "fields",
        "orderby",
        "index",
        "key_indexes",
        "dep_indexes",
        "field_names",
        "_defaults",
        "_checks",
        "_all_int",
        "_exact",
    )

    def __init__(
        self,
        name: str,
        fields: str | Iterable[Field],
        orderby: Iterable[OrderByEntry | str] = (),
    ):
        if not name.isidentifier() or not name[0].isupper():
            raise SchemaError(f"table names must be capitalised identifiers: {name!r}")
        self.name = name
        if isinstance(fields, str):
            self.fields = parse_fields(fields)
        else:
            self.fields = tuple(fields)
            if not all(isinstance(f, Field) for f in self.fields):
                raise SchemaError("fields must be Field instances")
        if not self.fields:
            raise SchemaError(f"table {name} has no fields")
        self.field_names = tuple(f.name for f in self.fields)
        self.index = {f.name: i for i, f in enumerate(self.fields)}
        if len(self.index) != len(self.fields):
            raise SchemaError(f"duplicate field names in table {name}")
        self.key_indexes = tuple(i for i, f in enumerate(self.fields) if f.is_key)
        self.dep_indexes = tuple(i for i, f in enumerate(self.fields) if not f.is_key)
        self.orderby = parse_orderby(orderby)
        for entry in self.orderby:
            if isinstance(entry, (Seq, Par)) and entry.field not in self.index:
                raise UnknownFieldError(
                    f"orderby of {name} references unknown field {entry.field!r}"
                )
        self._defaults = tuple(f.default for f in self.fields)
        self._checks = tuple(_TYPE_CHECKS[f.type] for f in self.fields)
        self._all_int = all(f.type == "int" for f in self.fields)
        # exact runtime type per field (None for "any"): a value of
        # exactly its declared type always passes its checker
        self._exact = tuple(
            {"int": int, "float": float, "str": str, "bool": bool}.get(f.type)
            for f in self.fields
        )

    # -- helpers used by tuples/engine -----------------------------------

    @property
    def has_key(self) -> bool:
        return bool(self.key_indexes)

    def literal_names(self) -> tuple[str, ...]:
        """Literal tags appearing in this table's orderby list."""
        return tuple(e.name for e in self.orderby if isinstance(e, Lit))

    def field_position(self, name: str) -> int:
        try:
            return self.index[name]
        except KeyError:
            raise UnknownFieldError(f"table {self.name} has no field {name!r}") from None

    def defaults(self) -> tuple:
        return self._defaults

    def check_types(self, values: tuple) -> None:
        if self._all_int:
            # exact-type scan for the dominant all-int case; anything
            # else (bool, int subclass, wrong type) takes the slow loop
            # below for the per-field verdict and error message
            for v in values:
                if type(v) is not int:
                    break
            else:
                return
        else:
            # mixed schemas: a value of exactly its declared runtime
            # type always passes; widenings (int in a float field) and
            # failures fall through to the per-field loop
            for v, tp in zip(values, self._exact):
                if tp is not None and type(v) is not tp:
                    break
            else:
                return
        for f, chk, v in zip(self.fields, self._checks, values):
            if not chk(v):
                raise SchemaError(
                    f"{self.name}.{f.name} expects {f.type}, got {type(v).__name__} ({v!r})"
                )

    def key_of(self, values: tuple) -> tuple:
        """Primary-key projection of a value tuple."""
        return tuple(values[i] for i in self.key_indexes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.type} {f.name}{'*' if f.is_key else ''}" for f in self.fields)
        ob = ", ".join(repr(e) for e in self.orderby)
        return f"table {self.name}({cols}) orderby ({ob})"

    # Identity semantics: schemas are compared by object identity — a
    # program must not declare two tables with the same name (enforced
    # by Program), and tuples hold a direct schema reference.
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
