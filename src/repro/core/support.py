"""Support tracking for incremental view maintenance (retraction).

When a session runs with ``ExecOptions(retraction=True)``, the kernel
records one :class:`FiringRecord` per rule firing: the trigger, every
Gamma tuple the firing read, the structural shape of every query it
ran, the tuples it put and the output lines it printed.  The
:class:`SupportIndex` aggregates those records into the counting-based
support relation of classic incremental Datalog maintenance:

* ``support[t]`` — the set of firings that derived tuple ``t``.  A
  derived tuple stays in Gamma while at least one live firing supports
  it (counting); when the last supporting firing dies the tuple is
  over-deleted and its own dependents are visited in turn.
* ``readers[t]`` / ``triggered[t]`` — the firings whose *inputs*
  include ``t``, used to find the dependent cone of a deleted fact.
* ``queries_by_table`` — recorded query footprints per table, used for
  grown-result invalidation: when a *new* tuple with a smaller
  timestamp appears (a DRed rederivation descending below an already
  -fired frontier), any earlier firing whose recorded query would have
  matched it computed its result from incomplete data and must be
  re-run.

The repair loop itself (over-delete, rederive) lives in the kernel;
this module is pure bookkeeping, which is also what serialises into a
session snapshot.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.tuples import JTuple

__all__ = ["FiringRecord", "SupportIndex"]


class FiringRecord:
    """The Gamma footprint of one rule firing.

    ``reads`` is an insertion-ordered set of every tuple any query
    returned; ``queries`` keeps a structural copy of each query shape
    (negative/aggregate shapes matter even with no results: they define
    what *absence* the firing observed).  ``out_lines`` pairs each
    printed line with its deterministic output key, assigned at
    registration time.
    """

    __slots__ = (
        "rule_name",
        "rule_index",
        "trigger",
        "reads",
        "queries",
        "puts",
        "lines",
        "native",
        "fid",
        "out_lines",
    )

    def __init__(self, rule_name: str, rule_index: int, trigger: JTuple):
        self.rule_name = rule_name
        self.rule_index = rule_index
        self.trigger = trigger
        self.reads: dict[JTuple, None] = {}
        self.queries: list[Query] = []
        self.puts: tuple[JTuple, ...] = ()
        self.lines: tuple[str, ...] = ()
        self.native: set[str] = set()
        self.fid: int = -1
        self.out_lines: tuple[tuple[tuple, str], ...] = ()

    def note_query(self, q: Query, results: list[JTuple]) -> None:
        """Record one query's shape and results.  The query is copied
        structurally (eq/ranges dicts) because plan-cache queries may be
        reused across firings."""
        self.queries.append(Query(q.schema, dict(q.eq), dict(q.ranges), q.where, q.kind))
        for t in results:
            self.reads[t] = None

    def __repr__(self) -> str:
        return (
            f"<firing #{self.fid} {self.rule_name} on {self.trigger!r}: "
            f"{len(self.reads)} reads, {len(self.puts)} puts>"
        )


class SupportIndex:
    """All live firings plus the inverted indexes the repair loop needs."""

    __slots__ = (
        "next_fid",
        "firings",
        "base",
        "retracted_base",
        "support",
        "readers",
        "triggered",
        "live",
        "queries_by_table",
        "native_users",
    )

    def __init__(self) -> None:
        self.next_fid = 0
        #: fid -> FiringRecord, every live firing
        self.firings: dict[int, FiringRecord] = {}
        #: externally asserted facts (never need support)
        self.base: set[JTuple] = set()
        #: base facts that were deleted — duplicate deletes are no-ops
        self.retracted_base: set[JTuple] = set()
        #: derived tuple -> fids of the firings that put it
        self.support: dict[JTuple, set[int]] = {}
        #: tuple -> fids whose queries returned it
        self.readers: dict[JTuple, set[int]] = {}
        #: tuple -> fids it triggered
        self.triggered: dict[JTuple, set[int]] = {}
        #: (rule_index, trigger) -> fid — at most one live firing per
        #: rule/trigger pair (set semantics); doubles as the
        #: duplicate-delivery defence
        self.live: dict[tuple[int, JTuple], int] = {}
        #: table name -> {fid: [recorded queries on that table]}
        self.queries_by_table: dict[str, dict[int, list[Query]]] = {}
        #: table name -> fids that touched it through ctx.native()
        self.native_users: dict[str, set[int]] = {}

    # -- registration ------------------------------------------------------

    def register(self, rec: FiringRecord) -> int:
        """Index a fresh firing; assigns its fid."""
        rec.fid = self.next_fid
        self.next_fid += 1
        self.register_restored(rec)
        return rec.fid

    def register_restored(self, rec: FiringRecord) -> None:
        """Index a firing that already carries its fid (snapshot restore
        path; also the tail of :meth:`register`)."""
        fid = rec.fid
        self.firings[fid] = rec
        self.live[(rec.rule_index, rec.trigger)] = fid
        self.triggered.setdefault(rec.trigger, set()).add(fid)
        for t in rec.reads:
            self.readers.setdefault(t, set()).add(fid)
        for t in rec.puts:
            self.support.setdefault(t, set()).add(fid)
        for q in rec.queries:
            self.queries_by_table.setdefault(q.schema.name, {}).setdefault(
                fid, []
            ).append(q)
        for name in rec.native:
            self.native_users.setdefault(name, set()).add(fid)

    def unregister(self, fid: int) -> FiringRecord | None:
        """Drop a dead firing from every index (empty entries are
        cleaned up so the maps do not accrete)."""
        rec = self.firings.pop(fid, None)
        if rec is None:
            return None
        key = (rec.rule_index, rec.trigger)
        if self.live.get(key) == fid:
            del self.live[key]
        trig = self.triggered.get(rec.trigger)
        if trig is not None:
            trig.discard(fid)
            if not trig:
                del self.triggered[rec.trigger]
        for t in rec.reads:
            rd = self.readers.get(t)
            if rd is not None:
                rd.discard(fid)
                if not rd:
                    del self.readers[t]
        for t in rec.puts:
            sup = self.support.get(t)
            if sup is not None:
                sup.discard(fid)
                if not sup:
                    del self.support[t]
        for q in rec.queries:
            per_table = self.queries_by_table.get(q.schema.name)
            if per_table is not None:
                per_table.pop(fid, None)
                if not per_table:
                    del self.queries_by_table[q.schema.name]
        for name in rec.native:
            users = self.native_users.get(name)
            if users is not None:
                users.discard(fid)
                if not users:
                    del self.native_users[name]
        return rec

    def __len__(self) -> int:
        return len(self.firings)

    def __repr__(self) -> str:
        return (
            f"<SupportIndex {len(self.firings)} firings, "
            f"{len(self.base)} base facts, {len(self.support)} derived>"
        )
