"""Immutable tuple instances and builders.

Each JStar tuple is an immutable record with a fixed set of named fields
(§3: "Each tuple in a table is typically implemented as an immutable
Java object with a fixed set of named fields").  The paper offers three
construction styles — positional, by-name, and by-name with defaults —
plus a generated *builder* that copies an existing tuple while updating
a few fields.  All three map onto :meth:`TableSchema`-driven
construction here::

    ship = Ship.new(0, 10, 10, 150, 0)          # by position
    ship = Ship.new(frame=0, x=10, dx=150, y=10, dy=0)   # by name
    ship = Ship.new(x=10, dx=150, y=10)         # defaults for the rest
    ship2 = ship.copy(frame=1, x=160)           # builder / copy method

Tuples hash and compare by (schema, values), giving the set semantics
the engine relies on for deduplication (§6.2: "JStar has a set-oriented
semantics, so duplicate SumMonth tuples are discarded").
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.errors import SchemaError
from repro.core.schema import TableSchema

__all__ = ["JTuple", "TableHandle"]


class JTuple:
    """One immutable tuple.  Field access by attribute (``t.frame``) or
    position (``t[0]``); ``copy(**updates)`` is the builder."""

    __slots__ = ("schema", "values", "_hash")

    def __init__(self, schema: TableSchema, values: tuple):
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_hash", hash((id(schema), values)))

    # -- immutability -----------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"JStar tuples are immutable (tried to set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("JStar tuples are immutable")

    # -- field access -----------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails, i.e. for field
        # names.  __slots__ attributes resolve before reaching here.
        schema: TableSchema = object.__getattribute__(self, "schema")
        idx = schema.index.get(name)
        if idx is None:
            raise AttributeError(f"{schema.name} tuple has no field {name!r}")
        return object.__getattribute__(self, "values")[idx]

    def __getitem__(self, i: int) -> Any:
        return self.values[i]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def field(self, name: str) -> Any:
        """Field access by name with a proper error for unknown names."""
        return self.values[self.schema.field_position(name)]

    def asdict(self) -> dict[str, Any]:
        return dict(zip(self.schema.field_names, self.values))

    def key(self) -> tuple:
        """Primary-key projection (empty tuple if the table has no key)."""
        return self.schema.key_of(self.values)

    # -- builder ----------------------------------------------------------

    def copy(self, **updates: Any) -> "JTuple":
        """Builder-style copy: a new tuple with some fields replaced."""
        if not updates:
            return self
        vals = list(self.values)
        for name, value in updates.items():
            vals[self.schema.field_position(name)] = value
        new_values = tuple(vals)
        self.schema.check_types(new_values)
        return JTuple(self.schema, new_values)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JTuple):
            return NotImplemented
        return self.schema is other.schema and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v!r}" for n, v in zip(self.schema.field_names, self.values)
        )
        return f"{self.schema.name}({pairs})"


class TableHandle:
    """User-facing handle for a declared table.

    Returned by :meth:`repro.core.program.Program.table`; provides the
    ``new`` constructor and is what rules pass to queries (``get``,
    ``foreach``).  The handle is a thin façade over the schema so that
    application code reads like the paper's listings.
    """

    __slots__ = ("schema",)

    def __init__(self, schema: TableSchema):
        self.schema = schema

    @property
    def name(self) -> str:
        return self.schema.name

    def new(self, *args: Any, **kwargs: Any) -> JTuple:
        """Construct a tuple positionally, by name, or mixed; omitted
        fields take their type's default value."""
        schema = self.schema
        n = len(schema.fields)
        if len(args) > n:
            raise SchemaError(
                f"{schema.name} has {n} fields, got {len(args)} positional values"
            )
        if len(args) == n and not kwargs:
            values = tuple(args)
        else:
            vals = list(schema.defaults())
            for i, a in enumerate(args):
                vals[i] = a
            for name, value in kwargs.items():
                idx = schema.field_position(name)
                if idx < len(args):
                    raise SchemaError(
                        f"{schema.name}.{name} given both positionally and by name"
                    )
                vals[idx] = value
            values = tuple(vals)
        schema.check_types(values)
        return JTuple(schema, values)

    def __call__(self, *args: Any, **kwargs: Any) -> JTuple:
        """``Ship(0, 10, ...)`` is sugar for ``Ship.new(0, 10, ...)``,
        mirroring the paper's ``new Ship(...)`` expressions."""
        return self.new(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<table {self.schema.name}>"

    def __hash__(self) -> int:
        return hash(self.schema)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TableHandle):
            return self.schema is other.schema
        return NotImplemented
