"""The Delta tree: a multi-level deduplicating priority structure.

§5 of the paper: "the Delta set is organised as a single tree,
containing tuples from many tables, sorted lexicographically by the
orderby lists of those tables.  That is, the *i*-th level of the Delta
tree is sorted according to the *i*-th entries of the orderby lists."

* literal levels are "a linear array of subtrees, indexed by a total
  ordering of the order relationship" — here a rank-keyed child map;
* ``seq`` levels use a sorted map (the paper's ``TreeMap`` /
  ``ConcurrentSkipListMap``) — here our skip list;
* ``par`` levels collapse: all values share one subtree (unordered ⇒
  equivalent ⇒ parallel);
* leaves hold *sets* of tuples — one equivalence class, executable in
  parallel ("a priority-queue is not sufficient, because we also need
  to remove duplicate tuples as they are inserted", footnote 5).

A tuple whose orderby list ends early lives in the interior node's
``here`` set and is *earlier* than everything in that node's subtrees
(prefix-before-extension, matching
:func:`repro.core.ordering.compare_timestamps`).

:meth:`DeltaTree.pop_min_class` removes and returns the minimal
equivalence class — exactly the batch the all-minimums strategy fires
in parallel each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import OrderingError
from repro.core.ordering import KIND_LIT, KIND_PAR, KIND_SEQ, Timestamp
from repro.core.tuples import JTuple
from repro.gamma.skiplist import SkipListMap

__all__ = ["DeltaTree", "Insert", "Delete"]


@dataclass(frozen=True, slots=True)
class Insert:
    """A feed event asserting a base fact.  Plain tuples passed to
    ``EngineSession.feed`` are sugar for ``Insert(tuple)``."""

    tuple: JTuple


@dataclass(frozen=True, slots=True)
class Delete:
    """A feed event retracting a previously inserted base fact.  Only
    honoured when the session runs with ``ExecOptions(retraction=True)``;
    derived consequences are repaired incrementally (counting +
    DRed-style over-delete/rederive)."""

    tuple: JTuple


class _Node:
    """One Delta-tree node.

    ``here`` holds tuples whose timestamp ends at this node (insertion
    -ordered dict used as a deterministic set).  ``kind`` is fixed by
    the first child inserted: KIND_LIT (children keyed by literal rank,
    plain dict), KIND_SEQ (children in a sorted skip list), or KIND_PAR
    (single collapsed child).  Mixing kinds at one level is a malformed
    program.
    """

    __slots__ = ("here", "kind", "children", "par_child", "count")

    def __init__(self) -> None:
        self.here: dict[JTuple, None] = {}
        self.kind: int | None = None
        self.children: dict | SkipListMap | None = None
        self.par_child: _Node | None = None
        self.count = 0  # tuples in this subtree, including `here`

    def is_empty(self) -> bool:
        return self.count == 0


class DeltaTree:
    """The Delta set (§5, Fig 3).

    Supports insert-with-dedup, minimal-class extraction, and snapshot
    iteration (for visualisation).  All operations are deterministic.
    """

    def __init__(self, seed: int = 0xD317A):
        self._root = _Node()
        self._members: set[JTuple] = set()
        self._seed = seed
        self._seq_counter = 0  # distinct seeds for nested skip lists

    def __len__(self) -> int:
        return self._root.count

    def __bool__(self) -> bool:
        return self._root.count > 0

    def __contains__(self, tup: JTuple) -> bool:
        return tup in self._members

    # -- insertion -----------------------------------------------------------

    def insert(self, tup: JTuple, ts: Timestamp) -> bool:
        """Insert a tuple at its timestamp; False if it is already
        pending (duplicates are discarded on insertion, footnote 5)."""
        if tup in self._members:
            return False
        self._members.add(tup)
        self._place(tup, ts)
        return True

    def insert_batch(self, items: list[tuple[JTuple, Timestamp]]) -> list[bool]:
        """Insert a whole phase-C put batch with one membership-set
        update at the end instead of one per tuple.  The returned flags
        are positionally aligned with ``items``; per-item semantics are
        exactly :meth:`insert` in order (intra-batch duplicates are
        rejected like already-pending tuples)."""
        members = self._members
        fresh: set[JTuple] = set()
        accepted: list[bool] = []
        place = self._place
        for tup, ts in items:
            if tup in members or tup in fresh:
                accepted.append(False)
                continue
            place(tup, ts)
            fresh.add(tup)
            accepted.append(True)
        members.update(fresh)
        return accepted

    def _place(self, tup: JTuple, ts: Timestamp) -> None:
        """The tree walk of an insert (membership managed by callers)."""
        node = self._root
        path: list[_Node] = [node]
        for comp in ts.key:
            kind = comp[0]
            if node.kind is None:
                node.kind = kind
                if kind == KIND_LIT:
                    node.children = {}
                elif kind == KIND_SEQ:
                    self._seq_counter += 1
                    node.children = SkipListMap(self._seed ^ self._seq_counter)
                # KIND_PAR uses par_child only
            elif node.kind != kind:
                raise OrderingError(
                    "Delta tree level kind mismatch: the program's orderby "
                    "lists disagree on the structure of a level"
                )
            if kind == KIND_PAR:
                child = node.par_child
                if child is None:
                    child = node.par_child = _Node()
            elif kind == KIND_LIT:
                assert isinstance(node.children, dict)
                child = node.children.get(comp[1])
                if child is None:
                    child = node.children[comp[1]] = _Node()
            else:  # KIND_SEQ
                assert isinstance(node.children, SkipListMap)
                child = node.children.get(comp[1])
                if child is None:
                    child = _Node()
                    node.children.insert(comp[1], child)
            node = child
            path.append(node)
        node.here[tup] = None
        for n in path:
            n.count += 1

    # -- removal ---------------------------------------------------------------

    def remove(self, tup: JTuple, ts: Timestamp) -> bool:
        """Remove one pending tuple placed at ``ts`` (retraction of a
        not-yet-popped fact).  False if the tuple is not pending.
        Counts along the path are decremented; empty-node pruning is
        left to the pop side (counts are authoritative, pruning is
        best-effort)."""
        if tup not in self._members:
            return False
        node = self._root
        path: list[_Node] = [node]
        for comp in ts.key:
            kind = comp[0]
            if node.kind != kind:
                return False
            if kind == KIND_PAR:
                child = node.par_child
            elif kind == KIND_LIT:
                assert isinstance(node.children, dict)
                child = node.children.get(comp[1])
            else:  # KIND_SEQ
                assert isinstance(node.children, SkipListMap)
                child = node.children.get(comp[1])
            if child is None:
                return False
            node = child
            path.append(node)
        if tup not in node.here:
            return False
        del node.here[tup]
        for n in path:
            n.count -= 1
        self._members.discard(tup)
        return True

    # -- extraction -----------------------------------------------------------

    @staticmethod
    def _min_entry(node: _Node) -> tuple:
        """``(key, child)`` for the minimal non-empty child of an
        interior node — the single min-descent step shared by
        :meth:`peek_min_node` and :meth:`pop_min_class`.  ``key`` is the
        child's key in its parent (``None`` for the collapsed par
        child), which pop-side pruning needs."""
        if node.kind == KIND_PAR:
            child = node.par_child
            assert child is not None and child.count > 0
            return None, child
        if node.kind == KIND_LIT:
            assert isinstance(node.children, dict)
            key = min(r for r, c in node.children.items() if c.count > 0)
            return key, node.children[key]
        assert isinstance(node.children, SkipListMap)
        for k, c in node.children.items():
            if c.count > 0:
                return k, c
        raise AssertionError("non-empty node had no non-empty child")

    def peek_min_node(self) -> _Node | None:
        """The node holding the minimal equivalence class (or None)."""
        node = self._root
        if node.count == 0:
            return None
        while not node.here:
            _, node = self._min_entry(node)
        return node

    def pop_min_class(self) -> list[JTuple]:
        """Remove and return the minimal equivalence class (insertion
        order preserved — deterministic).  Empty list if the tree is
        empty."""
        if self._root.count == 0:
            return []
        # descend, remembering the path so counts/pruning can be fixed up
        path: list[tuple[_Node, int | None]] = []  # (node, child key or None)
        node = self._root
        while not node.here:
            key, child = self._min_entry(node)
            path.append((node, key))
            node = child
        batch = list(node.here)
        n = len(batch)
        node.here.clear()
        node.count -= n
        for parent, key in reversed(path):
            parent.count -= n
            # prune empty children to keep min-descent fast
            child_empty = False
            if parent.kind == KIND_PAR:
                if parent.par_child is not None and parent.par_child.count == 0:
                    parent.par_child = None
                    child_empty = True
            elif parent.kind == KIND_LIT:
                assert isinstance(parent.children, dict)
                if key is not None and parent.children[key].count == 0:
                    del parent.children[key]
                    child_empty = True
            else:
                assert isinstance(parent.children, SkipListMap)
                if key is not None:
                    c = parent.children.get(key)
                    if c is not None and c.count == 0:
                        parent.children.delete(key)
                        child_empty = True
            del child_empty  # pruning is best-effort; counts are authoritative
        self._members.difference_update(batch)
        return batch

    def drain(self) -> Iterator[list[JTuple]]:
        """Iterate equivalence classes in causal order, consuming the tree."""
        while self:
            yield self.pop_min_class()

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> list[tuple[tuple, list[str]]]:
        """(path-key, [tuple reprs]) for every non-empty leaf set, in
        causal order — used by the Delta-tree visualiser."""
        out: list[tuple[tuple, list[str]]] = []

        def walk(node: _Node, prefix: tuple) -> None:
            if node.here:
                out.append((prefix, [repr(t) for t in node.here]))
            if node.kind == KIND_PAR and node.par_child is not None:
                walk(node.par_child, prefix + ("par",))
            elif node.kind == KIND_LIT and isinstance(node.children, dict):
                for rank in sorted(node.children):
                    walk(node.children[rank], prefix + (("lit", rank),))
            elif node.kind == KIND_SEQ and isinstance(node.children, SkipListMap):
                for k, child in node.children.items():
                    walk(child, prefix + (("seq", k),))

        walk(self._root, ())
        return out

    def dump(self) -> list[JTuple]:
        """Every pending tuple, in causal walk order (``here`` before
        children; literal children by rank, seq children in key order,
        the collapsed par child last).  Within one leaf the original
        insertion order is preserved, so re-inserting the dumped list
        into an empty tree — each tuple at its own timestamp —
        reproduces this tree exactly, including the deterministic
        pop order of every equivalence class.  This is the Delta half of
        a session snapshot."""
        out: list[JTuple] = []

        def walk(node: _Node) -> None:
            out.extend(node.here)
            if node.kind == KIND_PAR and node.par_child is not None:
                walk(node.par_child)
            elif node.kind == KIND_LIT and isinstance(node.children, dict):
                for rank in sorted(node.children):
                    walk(node.children[rank])
            elif node.kind == KIND_SEQ and isinstance(node.children, SkipListMap):
                for _k, child in node.children.items():
                    walk(child)

        walk(self._root)
        return out

    def clear(self) -> None:
        self._root = _Node()
        self._members.clear()
