"""The codegen execution tier: freeze()-time compiled rule drivers (PR 9).

Phase B fires each rule through a driver generated once per program by
:mod:`repro.plan.codegen` — the body's query-and-put loop as
straight-line Python with pre-resolved field indices, inline
:class:`~repro.core.query.Query` construction against prebound
``PreparedSelect.run`` calls (or direct primary-key lookups), and
statically-decided causality checks.  Rules the compiler cannot prove
equivalent keep the scalar path, per rule, with the reason noted on the
stats collector.  Queries run live against Gamma (no prefetching), so
the tier needs no staleness epochs; results are byte-identical to the
scalar tier by construction.  Sequential strategies only; the registry
downgrades everything else, including traced runs (generated bodies
emit no trace events).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.database import InsertOutcome
from repro.core.executors.base import StepExecutor
from repro.core.executors.scalar import ScalarExecutor
from repro.core.ordering import Lit, Timestamp
from repro.core.rules import Rule
from repro.core.tuples import JTuple
from repro.exec.base import TaskResult
from repro.exec.metering import NULL_METER
from repro.plan.codegen import bind_driver, compiled_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepKernel

__all__ = ["CodegenExecutor"]


class CodegenExecutor(StepExecutor):
    name = "codegen"
    dedupe_phase_c = True

    def __init__(self, kernel: "StepKernel"):
        super().__init__(kernel)
        program = kernel.program
        if kernel._metered:
            kernel._metered = False
            kernel._note(
                "metering downgraded to 'off' under execution='codegen': "
                "generated rule bodies carry no meter (results are "
                "identical; per-task costs are not collected)"
            )
        #: rules without a driver fire through this embedded scalar tier
        #: (its puts still route back through our handle_puts, so
        #: cascades re-enter generated drivers where they exist)
        self._scalar = ScalarExecutor(kernel)
        self._drivers: dict[int, Callable] = {}
        self._rule_gen_fires: dict[str, int] = {}
        self._rule_scalar_fires: dict[str, int] = {}
        #: (plan, rule_name, [n_calls, n_results]) per bound query site;
        #: merged into plan.rule_hits at flush, before the collector
        #: absorbs the plans
        self._site_hits: list = []
        #: tables whose orderby is all-literal share one timestamp
        #: object per run (same memo the columnar tier keeps)
        self._const_names: frozenset[str] = frozenset(
            name
            for name, schema in program.schemas().items()
            if all(isinstance(e, Lit) for e in schema.orderby)
        )
        self._const_ts: dict[str, Timestamp] = {}
        check_mode = kernel._check_mode
        compiled_count = 0
        for rule in program.rules:
            compiled, reason = compiled_for(program, rule)
            if compiled is not None and reason is None:
                if compiled.has_neg_agg and not (
                    check_mode == "off" or rule.assume_stratified
                ):
                    reason = (
                        "negative/aggregate queries require dynamic "
                        f"adjudication under causality_check={check_mode!r} "
                        "(declare assume_stratified or set "
                        "causality_check='off')"
                    )
                else:
                    try:
                        self._drivers[id(rule)] = bind_driver(
                            compiled, kernel, rule, self._site_hits
                        )
                        compiled_count += 1
                        continue
                    except Exception as e:
                        reason = f"driver binding failed: {e!r}"
            kernel._note(f"codegen: rule {rule.name!r} kept scalar: {reason}")
        if compiled_count:
            kernel._note(
                f"codegen: {compiled_count} rule(s) compiled; inspect a "
                "driver with repro.plan.codegen.dump_generated_source(rule)"
            )

    # -- put routing ---------------------------------------------------------

    def handle_puts(
        self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str
    ) -> None:
        """:meth:`StepExecutor.handle_puts` with the store / rule-list /
        tally lookups hoisted per same-table run — the same shape as the
        columnar tier's, because -noDelta cascades dominate here too."""
        k = self.kernel
        tallies = k._put_tallies
        nd = k._no_delta
        buffered = result.puts
        insert_into = k.db._insert_into
        fire = self.fire_one
        cur: str | None = None
        tt = rules = ret = store = None
        in_gamma = False
        for tup in ctx_puts:
            name = tup.schema.name
            key = (rule_name, name)
            tallies[key] = tallies.get(key, 0) + 1
            if name not in nd:
                buffered.append(tup)
                continue
            if name != cur:
                cur = name
                tt = k._tt(name)
                in_gamma = name not in k._no_gamma
                store = k.db.store(name) if in_gamma else None
                rules = k.program.rules_for(name)
                ret = k._retention.get(name)
            tt[0] += 1
            if in_gamma:
                if insert_into(store, tup) is InsertOutcome.DUPLICATE:
                    tt[1] += 1
                    continue
                tt[2] += 1
                if ret is not None:
                    v = tup.values[ret[0]]
                    if ret[2] is None or v > ret[2]:
                        ret[2] = v
            else:
                tt[3] += 1
            for rule in rules:
                fire(rule, tup, result)

    # -- firing --------------------------------------------------------------

    def fire_one(self, rule: Rule, tup: JTuple, result: TaskResult) -> None:
        """Fire through the rule's generated driver, or the embedded
        scalar tier when the rule refused codegen.  The driver takes its
        per-firing state (trigger, timestamp, put buffer, output buffer)
        as arguments, so -noDelta cascades re-enter it safely."""
        driver = self._drivers.get(id(rule))
        if driver is None:
            counts = self._rule_scalar_fires
            counts[rule.name] = counts.get(rule.name, 0) + 1
            self._scalar.fire_one(rule, tup, result)
            return
        k = self.kernel
        name = tup.schema.name
        tallies = k._fire_tallies
        key = (name, rule.name)
        tallies[key] = tallies.get(key, 0) + 1
        counts = self._rule_gen_fires
        counts[rule.name] = counts.get(rule.name, 0) + 1
        ts = self._const_ts.get(name)
        if ts is None:
            ts = k.db.timestamp(tup)
            if name in self._const_names:
                self._const_ts[name] = ts
        puts: list[JTuple] = []
        out: list[str] = []
        driver(tup, ts, puts, out)
        if out:
            result.output.extend(out)
            tie = (name, tuple(repr(v) for v in tup.values))
            ridx = k._rule_index[id(rule)]
            result.out_keys.extend(
                (ts.key, tie, ridx, j) for j in range(len(out))
            )
            k.stats.rule(rule.name).output_lines += len(out)
        if puts:
            self.handle_puts(puts, result, rule.name)

    def fire_class(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[TaskResult]:
        """Codegen phase B: every (trigger, rule) pair in scalar
        submission order through the drivers.  Tracing always downgrades
        the whole run (registry row), so one sink result accumulates the
        class's puts and output in the order the per-task results would
        concatenate to."""
        k = self.kernel
        sink = TaskResult(trigger=None, meter=NULL_METER)  # type: ignore[arg-type]
        rules_for = k.program.rules_for
        tt = k._tt
        fire = self.fire_one
        for tup, outcome in prepared:
            name = tup.schema.name
            if outcome is InsertOutcome.DUPLICATE:
                sink.duplicate = True
                tt(name)[1] += 1
                continue
            if outcome is None:  # -noGamma table
                tt(name)[3] += 1
            else:
                tt(name)[2] += 1
            for rule in rules_for(name):
                fire(rule, tup, sink)
        return [sink]

    # -- bookkeeping ---------------------------------------------------------

    def flush_stats(self) -> None:
        k = self.kernel
        # fold the generated sites' [n_calls, n_results] counters into
        # the shared plans' rule_hits BEFORE the collector absorbs them
        # (kernel.flush_stats orders executor flush first)
        for plan, rule_name, hits in self._site_hits:
            if hits[0]:
                hit = plan.rule_hits.get(rule_name)
                if hit is None:
                    plan.rule_hits[rule_name] = [hits[0], hits[1]]
                else:
                    hit[0] += hits[0]
                    hit[1] += hits[1]
                hits[0] = 0
                hits[1] = 0
        gen, scalar = self._rule_gen_fires, self._rule_scalar_fires
        for name in sorted(set(gen) | set(scalar)):
            k.stats.note(
                f"codegen: rule {name!r} fired "
                f"{gen.get(name, 0)} generated / {scalar.get(name, 0)} scalar"
            )
        gen.clear()
        scalar.clear()
