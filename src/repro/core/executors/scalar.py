"""The scalar execution tier: one task per trigger, fresh contexts.

This is the reference tier — the §5 semantics every other tier must be
byte-identical to — and the only one that works under every strategy:
each popped tuple becomes one :class:`~repro.exec.base.EngineTask`
(or one per triggered rule under ``task_granularity="rule"``), each
firing gets a fresh :class:`~repro.core.rules.RuleContext`, and the
strategy is free to interleave the tasks however it likes.

The retraction repair path also builds its tasks here
(:meth:`ScalarExecutor.make_task` with ``refire``/``dead``): retraction
refuses every other tier, so repair and scalar firing share one code
path by construction.
"""

from __future__ import annotations

from repro.core.database import InsertOutcome
from repro.core.executors.base import StepExecutor
from repro.core.rules import Rule, RuleContext
from repro.core.support import FiringRecord
from repro.core.tuples import JTuple
from repro.exec.base import EngineTask, TaskResult

__all__ = ["ScalarExecutor"]


class ScalarExecutor(StepExecutor):
    name = "scalar"

    # -- firing --------------------------------------------------------------

    def fire_one(self, rule: Rule, tup: JTuple, result: TaskResult) -> None:
        k = self.kernel
        tallies = k._fire_tallies
        key = (tup.schema.name, rule.name)
        tallies[key] = tallies.get(key, 0) + 1
        result.meter.charge("rule_fire")
        rec = (
            FiringRecord(rule.name, k._rule_index[id(rule)], tup)
            if k._support is not None
            else None
        )
        ctx = RuleContext(
            k.db,
            k.program.decls,
            result.meter,
            rule,
            tup,
            k.db.timestamp(tup),
            k._check_mode,
            k.stats,
            k._lock,
            k.strategy.yield_point,
            result.events if k.tracer is not None else None,
            k._plans,
            rec,
        )
        rule.body(ctx, tup)
        ctx.finish()
        result.fired_rules.append(rule.name)
        if ctx.output:
            result.output.extend(ctx.output)
            if rec is None:
                # same key shape as _output_key, so the per-step sort in
                # _run_step reproduces the keyed order retraction mode
                # maintains via _insert_output
                tie = (tup.schema.name, tuple(repr(v) for v in tup.values))
                ridx = k._rule_index[id(rule)]
                result.out_keys.extend(
                    (ctx.trigger_ts.key, tie, ridx, j)
                    for j in range(len(ctx.output))
                )
            k.stats.rule(rule.name).output_lines += len(ctx.output)
        if rec is not None:
            rec.puts = tuple(ctx.puts)
            rec.lines = tuple(ctx.output)
            result.firings.append(rec)
        k._handle_puts(ctx.puts, result, rule.name)

    # -- task construction ---------------------------------------------------

    def make_task(
        self,
        tup: JTuple,
        outcome: InsertOutcome | None,
        refire: bool = False,
        dead: bool = False,
    ) -> EngineTask:
        """Task closure for one popped tuple.  ``outcome`` is the Gamma
        insertion result decided in the sequential prepare phase; the
        task charges for it and fires the triggered rules.  Retraction
        mode adds ``refire`` (fire even though the Gamma insert is a
        duplicate — DRed rederivation) and ``dead`` (the tuple was
        killed by a repair cascade after it was popped — behave like a
        duplicate, trace-stable)."""
        k = self.kernel

        def run() -> TaskResult:
            result = k._new_result(tup)
            result.meter.charge("delta_pop")
            name = tup.schema.name
            dead_now = dead or (
                k._dead_step is not None and tup in k._dead_step
            )
            if dead_now:
                result.duplicate = True
                k._tt(name)[1] += 1
                return result
            if outcome is None:  # -noGamma table
                k._tt(name)[3] += 1
            else:
                result.meter.charge_store_op("insert", k.db.store(name))
                if outcome is InsertOutcome.DUPLICATE:
                    k._tt(name)[1] += 1
                    if not refire:
                        result.duplicate = True
                        return result
                else:
                    k._tt(name)[2] += 1
            k._fire_rules(tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _make_rule_task(
        self,
        tup: JTuple,
        rule: Rule,
        outcome: InsertOutcome | None,
        charge_insert: bool,
    ) -> EngineTask:
        """§5.2's first extension: "we could create one task per rule
        that is triggered".  The first rule task of a tuple also pays
        its Delta-pop and Gamma-insert costs."""
        k = self.kernel

        def run() -> TaskResult:
            result = k._new_result(tup)
            name = tup.schema.name
            if charge_insert:
                result.meter.charge("delta_pop")
                if outcome is None:
                    k._tt(name)[3] += 1
                else:
                    result.meter.charge_store_op("insert", k.db.store(name))
                    k._tt(name)[2] += 1
            self.fire_one(rule, tup, result)
            return result

        return EngineTask(trigger=tup, run=run)

    def _build_tasks(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[EngineTask]:
        k = self.kernel
        if not k._per_rule_tasks:
            return [self.make_task(tup, outcome) for tup, outcome in prepared]
        tasks: list[EngineTask] = []
        for tup, outcome in prepared:
            if outcome is InsertOutcome.DUPLICATE:
                tasks.append(self.make_task(tup, outcome))  # dup bookkeeping
                continue
            rules = k.program.rules_for(tup.schema.name)
            if not rules:
                tasks.append(self.make_task(tup, outcome))
                continue
            for i, rule in enumerate(rules):
                tasks.append(
                    self._make_rule_task(tup, rule, outcome, charge_insert=i == 0)
                )
        return tasks

    def fire_class(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[TaskResult]:
        # Phase B: fire (possibly genuinely threaded).
        return self.kernel.strategy.run_batch(self._build_tasks(prepared))
