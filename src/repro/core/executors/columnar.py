"""The columnar execution tier: whole-class batch firing (PR 8).

Phase B evaluates each rule's predicted queries over the whole popped
class at once (:mod:`repro.plan.batchcompile`) and serves the firings
from the prefetched rows through a slim reused
:class:`~repro.plan.batchcompile.BatchRuleContext`; any firing whose
concrete calls diverge from the prediction falls back to the scalar
planned path, so results are byte-identical either way.  Sequential
strategies only; the registry downgrades everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.database import InsertOutcome
from repro.core.executors.base import StepExecutor
from repro.core.ordering import Lit, Timestamp
from repro.core.rules import Rule
from repro.core.tuples import JTuple
from repro.exec.base import TaskResult
from repro.exec.metering import NULL_METER
from repro.plan.batchcompile import (
    BatchBoundPlan,
    BatchPrefetch,
    BatchRuleContext,
    compile_batch_plan,
    put_always_causal,
    put_fast_compare,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepKernel

__all__ = ["ColumnarExecutor"]


class ColumnarExecutor(StepExecutor):
    name = "columnar"
    dedupe_phase_c = True

    def __init__(self, kernel: "StepKernel"):
        super().__init__(kernel)
        options = kernel.options
        program = kernel.program
        if kernel._metered:
            kernel._metered = False
            kernel._note(
                "metering downgraded to 'off' under execution='columnar': "
                "the batch firing path shares one no-op meter across each "
                "class (results are identical; per-task costs are not "
                "collected)"
            )
        #: per--noDelta-table mutation counters — a prefetched result is
        #: only served while its table's epoch is unchanged, because a
        #: -noDelta cascade can insert into Gamma *during* phase B.  The
        #: dict lives on the kernel (the shared ``_immediate`` path bumps
        #: it); this tier populates and consumes it.
        kernel._mut_epoch.update({name: 0 for name in options.no_delta})
        self._batch_plans: dict[int, BatchBoundPlan] = {}
        self._batch_ctxs: dict[int, BatchRuleContext] = {}
        self._rule_batch_fires: dict[str, int] = {}
        self._rule_scalar_fires: dict[str, int] = {}
        self._batch_widths: dict[int, int] = {}
        #: tables whose orderby is all-literal: their tuples share one
        #: timestamp per run, cached by name in ``_const_ts``
        self._const_names: frozenset[str] = frozenset(
            name
            for name, schema in program.schemas().items()
            if all(isinstance(e, Lit) for e in schema.orderby)
        )
        self._const_ts: dict[str, Timestamp] = {}
        #: trigger table -> {id(schema): True | (put_pos, trig_pos)} for
        #: put targets whose causality check is statically decided
        self._put_safe_cache: dict[str, dict[int, object]] = {}
        check_off = options.causality_check == "off"
        for rule in program.rules:
            # rules whose negative/aggregate queries are dynamically
            # adjudicated need a concrete Query per call; they keep the
            # scalar path (and their exact warning behaviour)
            if not (check_off or rule.assume_stratified):
                continue
            compiled = compile_batch_plan(rule)
            if compiled is not None:
                self._batch_plans[id(rule)] = compiled.bind(
                    kernel.db, kernel._plans, kernel._mut_epoch
                )

    def _put_safe_for(self, name: str, schema) -> dict[int, object]:
        """Build (and cache) the per-trigger-table put-check map:
        ``True`` for statically-causal targets (:func:`put_always_causal`),
        a ``(put_pos, trig_pos)`` pair for seq-comparable ones
        (:func:`put_fast_compare`); everything else stays on the full
        dynamic §4 comparison."""
        k = self.kernel
        decls = k.program.decls
        psafe: dict[int, object] = {}
        for s in k.program.schemas().values():
            if put_always_causal(s, schema, decls):
                psafe[id(s)] = True
            else:
                fc = put_fast_compare(s, schema)
                if fc is not None:
                    psafe[id(s)] = fc
        self._put_safe_cache[name] = psafe
        return psafe

    # -- put routing ---------------------------------------------------------

    def handle_puts(
        self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str
    ) -> None:
        """:meth:`StepExecutor.handle_puts` with the store / rule-list /
        tally lookups hoisted per same-table run — -noDelta cascades put
        thousands of same-table tuples per firing, and this loop is
        where they spend phase B."""
        k = self.kernel
        tallies = k._put_tallies
        nd = k._no_delta
        buffered = result.puts
        insert_into = k.db._insert_into
        fire = self.fire_one
        ep = k._mut_epoch
        cur: str | None = None
        tt = rules = ret = store = None
        in_gamma = False
        for tup in ctx_puts:
            name = tup.schema.name
            key = (rule_name, name)
            tallies[key] = tallies.get(key, 0) + 1
            if name not in nd:
                buffered.append(tup)
                continue
            if name != cur:
                cur = name
                tt = k._tt(name)
                in_gamma = name not in k._no_gamma
                store = k.db.store(name) if in_gamma else None
                rules = k.program.rules_for(name)
                ret = k._retention.get(name)
            tt[0] += 1
            if in_gamma:
                if insert_into(store, tup) is InsertOutcome.DUPLICATE:
                    tt[1] += 1
                    continue
                tt[2] += 1
                ep[name] += 1
                if ret is not None:
                    v = tup.values[ret[0]]
                    if ret[2] is None or v > ret[2]:
                        ret[2] = v
            else:
                tt[3] += 1
            for rule in rules:
                fire(rule, tup, result)

    # -- firing --------------------------------------------------------------

    def fire_one(
        self,
        rule: Rule,
        tup: JTuple,
        result: TaskResult,
        pf: BatchPrefetch | None = None,
        pfi: int = 0,
    ) -> None:
        """Fire through the rule's reused :class:`BatchRuleContext`,
        serving predicted queries from the class prefetch (``pf``/
        ``pfi``; cascade firings arrive with no prefetch and run the
        plain planned path).  Everything observable — puts, output keys,
        stats tallies, trace events — is identical to the scalar tier."""
        k = self.kernel
        name = tup.schema.name
        tallies = k._fire_tallies
        key = (name, rule.name)
        tallies[key] = tallies.get(key, 0) + 1
        counts = (
            self._rule_batch_fires if pf is not None else self._rule_scalar_fires
        )
        counts[rule.name] = counts.get(rule.name, 0) + 1
        trace = result.events if k.tracer is not None else None
        # constant-orderby tables share one timestamp object per run;
        # for them the per-trigger memo probe (a whole-tuple hash) is
        # replaced by one name lookup
        ts = self._const_ts.get(name)
        if ts is None:
            ts = k.db.timestamp(tup)
            if name in self._const_names:
                self._const_ts[name] = ts
        psafe = self._put_safe_cache.get(name)
        if psafe is None:
            psafe = self._put_safe_for(name, tup.schema)
        rid = id(rule)
        ctx = self._batch_ctxs.get(rid)
        if ctx is None or ctx.in_use:
            # first firing of the rule, or a -noDelta cascade re-entered
            # it while an outer firing still owns the shared context
            fresh = BatchRuleContext(
                k.db,
                k.program.decls,
                NULL_METER,
                rule,
                tup,
                ts,
                k._check_mode,
                k.stats,
                k._lock,
                k.strategy.yield_point,
                trace,
                k._plans,
                None,
            )
            fresh._pf = pf
            fresh._pfi = pfi
            fresh._put_safe = psafe
            if ctx is None:
                self._batch_ctxs[rid] = fresh
                fresh.in_use = True
            ctx = fresh
        else:
            ctx.in_use = True
            ctx.reset(tup, ts, trace, pf, pfi, psafe)
        rule.body(ctx, tup)
        ctx.finish()
        if k.tracer is not None:
            result.fired_rules.append(rule.name)
        if ctx.output:
            result.output.extend(ctx.output)
            tie = (tup.schema.name, tuple(repr(v) for v in tup.values))
            ridx = k._rule_index[id(rule)]
            result.out_keys.extend(
                (ctx.trigger_ts.key, tie, ridx, j)
                for j in range(len(ctx.output))
            )
            k.stats.rule(rule.name).output_lines += len(ctx.output)
        puts = ctx.puts
        # release before routing puts: a -noDelta cascade triggered by
        # them may legitimately re-fire this same rule, and ctx.reset
        # rebinds (never mutates) the lists captured above
        ctx.in_use = False
        if puts:
            k._handle_puts(puts, result, rule.name)

    def fire_class(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[TaskResult]:
        """Columnar phase B: prefetch each rule's predicted queries
        over the whole class, then fire every (trigger, rule) pair in
        the scalar submission order through the slim context path.

        Tracing gets one :class:`TaskResult` per trigger (so the task
        events match the scalar trace byte for byte); otherwise the
        whole class shares a single sink result, whose ``puts`` /
        ``output`` accumulate in exactly the order the per-task results
        would concatenate to."""
        k = self.kernel
        by_table: dict[str, list[JTuple]] = {}
        ordinals: list[int] = []
        for tup, outcome in prepared:
            if outcome is InsertOutcome.DUPLICATE:
                ordinals.append(-1)
                continue
            lst = by_table.get(tup.schema.name)
            if lst is None:
                lst = by_table[tup.schema.name] = []
            ordinals.append(len(lst))
            lst.append(tup)
        prefetches: dict[int, BatchPrefetch] = {}
        bplans = self._batch_plans
        if bplans:
            widths = self._batch_widths
            for name, triggers in by_table.items():
                for rule in k.program.rules_for(name):
                    bp = bplans.get(id(rule))
                    if bp is None:
                        continue
                    pf, n_probes = bp.prefetch(triggers)
                    prefetches[id(rule)] = pf
                    if n_probes:
                        k.meter.charge("gamma_batchselect", n=n_probes)
                    w = len(triggers)
                    widths[w] = widths.get(w, 0) + 1
        tracer = k.tracer
        results: list[TaskResult] = []
        sink = None
        if tracer is None:
            sink = TaskResult(trigger=None, meter=NULL_METER)  # type: ignore[arg-type]
            results.append(sink)
        rules_for = k.program.rules_for
        tt = k._tt
        fire = self.fire_one
        get_pf = prefetches.get
        for (tup, outcome), ordinal in zip(prepared, ordinals):
            name = tup.schema.name
            if tracer is not None:
                result = TaskResult(trigger=tup, meter=NULL_METER)
                results.append(result)
            else:
                result = sink  # type: ignore[assignment]
            if outcome is InsertOutcome.DUPLICATE:
                result.duplicate = True
                tt(name)[1] += 1
                continue
            if outcome is None:  # -noGamma table
                tt(name)[3] += 1
            else:
                tt(name)[2] += 1
            for rule in rules_for(name):
                fire(rule, tup, result, get_pf(id(rule)), ordinal)
        return results

    # -- bookkeeping ---------------------------------------------------------

    def flush_stats(self) -> None:
        k = self.kernel
        batch, scalar = self._rule_batch_fires, self._rule_scalar_fires
        for name in sorted(set(batch) | set(scalar)):
            k.stats.note(
                f"columnar: rule {name!r} fired "
                f"{batch.get(name, 0)} batch / {scalar.get(name, 0)} scalar"
            )
        if self._batch_widths:
            hist = ", ".join(
                f"{w}:{c}" for w, c in sorted(self._batch_widths.items())
            )
            k.stats.note(f"columnar: batch widths (width:classes) {hist}")
        batch.clear()
        scalar.clear()
        self._batch_widths.clear()
