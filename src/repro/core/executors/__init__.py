"""Pluggable execution tiers for the step kernel.

The kernel's §5 step loop is fixed — pop the minimal class, phase A
insert, phase B fire, phase C apply effects — but *how* phase B fires
and how puts route is a per-run choice (``ExecOptions(execution=...)``).
Each choice is a :class:`~repro.core.executors.base.StepExecutor`:

* :mod:`~repro.core.executors.scalar` — one task per trigger through a
  fresh :class:`~repro.core.rules.RuleContext`; the reference tier and
  the only one every strategy supports;
* :mod:`~repro.core.executors.columnar` — whole-class batch firing over
  predicted-query prefetches (PR 8);
* :mod:`~repro.core.executors.codegen` — rule bodies compiled at
  ``freeze()`` into straight-line drivers (this PR).

Tier selection, the refusal rows ``ExecOptions.__post_init__`` raises
on, and the downgrade rows the kernel notes at init all live in one
table: :mod:`~repro.core.executors.registry`.
"""

from repro.core.executors.base import StepExecutor
from repro.core.executors.registry import (
    EXECUTION_TIERS,
    check_execution_options,
    resolve_executor,
)

__all__ = [
    "StepExecutor",
    "EXECUTION_TIERS",
    "check_execution_options",
    "resolve_executor",
]
