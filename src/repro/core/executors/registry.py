"""One table for execution-tier selection, refusal, and downgrade.

Before this table existed the rules were split: ``program.py`` refused
some ``execution=`` combinations at option-construction time while the
kernel's init silently downgraded others with a stats note.  Both kinds
of row now live here, keyed by tier:

* **refusal rows** are *configuration contradictions* — combinations the
  run could never honour even in principle (columnar under the
  multiprocess shard runtime, codegen with retraction).  They raise the
  canonical ``invalid ExecOptions: ...`` error from
  ``ExecOptions.__post_init__`` via :func:`check_execution_options`, so
  an impossible request fails before any engine state exists.
* **downgrade rows** are *environmental misses* — the option set is
  coherent but this particular run cannot arm the tier (non-sequential
  strategy, plan cache disabled, tracing a tier that emits no trace
  events).  :func:`resolve_executor` notes the reason on the stats
  collector and falls back to the scalar tier; results are identical
  either way, because execution tiers never change semantics.

The split is a contract: anything a *different* option value would fix
refuses; anything that depends on the run environment downgrades.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executors.base import StepExecutor
    from repro.core.kernel import StepKernel

__all__ = [
    "EXECUTION_TIERS",
    "REFUSALS",
    "DOWNGRADES",
    "check_execution_options",
    "resolve_executor",
]

#: valid ``ExecOptions.execution`` values, in documentation order
EXECUTION_TIERS = ("scalar", "columnar", "codegen")


def _knobs(options: Any, *names: str) -> dict[str, Any]:
    return {"execution": options.execution, **{n: getattr(options, n) for n in names}}


# -- refusal rows ------------------------------------------------------------
# (tier, offending(options) -> knob dict | None, reason); the knob dict
# feeds program._refuse, which renders the canonical
# ``invalid ExecOptions: knob=value[, ...] -- reason`` message.

REFUSALS: list[tuple[str, Callable[[Any], dict | None], str]] = [
    (
        "columnar",
        lambda o: _knobs(o, "retraction") if o.retraction else None,
        "columnar execution is incompatible with retraction: "
        "batch firing does not record per-firing support yet",
    ),
    (
        "columnar",
        lambda o: _knobs(o, "strategy") if o.strategy == "processes" else None,
        "columnar execution is not supported by the "
        "multiprocess shard runtime yet",
    ),
    (
        "columnar",
        lambda o: (
            _knobs(o, "task_granularity") if o.task_granularity != "tuple" else None
        ),
        "columnar execution requires task_granularity='tuple' "
        "(the batch path owns the per-class firing loop)",
    ),
    (
        "codegen",
        lambda o: _knobs(o, "retraction") if o.retraction else None,
        "codegen execution is incompatible with retraction: "
        "generated rule drivers do not record per-firing support yet",
    ),
    (
        "codegen",
        lambda o: _knobs(o, "strategy") if o.strategy == "processes" else None,
        "codegen execution is not supported by the "
        "multiprocess shard runtime yet",
    ),
    (
        "codegen",
        lambda o: (
            _knobs(o, "task_granularity") if o.task_granularity != "tuple" else None
        ),
        "codegen execution requires task_granularity='tuple' "
        "(the generated driver owns the per-class firing loop)",
    ),
]


def check_execution_options(options: Any, refuse: Callable[..., None]) -> None:
    """Validate ``options.execution`` against the refusal rows.

    ``refuse`` is :func:`repro.core.program._refuse`, injected by the
    caller so this module never imports :mod:`repro.core.program`
    (which imports the kernel, which imports the executors)."""
    if options.execution not in EXECUTION_TIERS:
        refuse(
            "unknown execution mode; valid modes: " + ", ".join(EXECUTION_TIERS),
            execution=options.execution,
        )
    for tier, offending, reason in REFUSALS:
        if tier != options.execution:
            continue
        knobs = offending(options)
        if knobs:
            refuse(reason, **knobs)


# -- downgrade rows ----------------------------------------------------------
# (tier, applies(kernel) -> bool, note(kernel) -> str); rows are checked
# in order and the FIRST applicable one downgrades the run to scalar
# with its note — later rows are conditions the scalar run no longer
# cares about.


def _non_sequential(kernel: "StepKernel") -> bool:
    from repro.exec.sequential import SequentialStrategy

    return not isinstance(kernel.strategy, SequentialStrategy)


DOWNGRADES: list[tuple[str, Callable[["StepKernel"], bool], Callable[["StepKernel"], str]]] = [
    (
        "columnar",
        _non_sequential,
        lambda k: (
            "execution='columnar' ignored: the batch firing path is "
            f"sequential-only and this run uses the {k.strategy.name!r} "
            "strategy; all rules fire through the scalar path"
        ),
    ),
    (
        "columnar",
        lambda k: k._plans is None,
        lambda k: (
            "execution='columnar' ignored: batch plans build on the "
            "compiled-plan cache, which plan_cache=False disables"
        ),
    ),
    (
        "codegen",
        _non_sequential,
        lambda k: (
            "execution='codegen' ignored: the generated firing path is "
            f"sequential-only and this run uses the {k.strategy.name!r} "
            "strategy; all rules fire through the scalar path"
        ),
    ),
    (
        "codegen",
        lambda k: k._plans is None,
        lambda k: (
            "execution='codegen' ignored: generated query sites build on "
            "the compiled-plan cache, which plan_cache=False disables"
        ),
    ),
    (
        "codegen",
        lambda k: k.tracer is not None,
        lambda k: (
            "execution='codegen' ignored: generated rule bodies emit no "
            "trace events; trace=True runs fire through the scalar path"
        ),
    ),
]


def resolve_executor(kernel: "StepKernel") -> "StepExecutor":
    """Build the kernel's executor: the requested tier, or scalar with a
    downgrade note when an applicable row says this run cannot arm it.
    Tier classes import lazily — the registry is consulted by
    ``ExecOptions.__post_init__`` long before any tier is needed."""
    from repro.core.executors.scalar import ScalarExecutor

    requested = kernel.options.execution
    if requested != "scalar":
        for tier, applies, note in DOWNGRADES:
            if tier == requested and applies(kernel):
                kernel._note(note(kernel))
                return ScalarExecutor(kernel)
        if requested == "columnar":
            from repro.core.executors.columnar import ColumnarExecutor

            return ColumnarExecutor(kernel)
        if requested == "codegen":
            from repro.core.executors.codegen import CodegenExecutor

            return CodegenExecutor(kernel)
    return ScalarExecutor(kernel)
