"""The :class:`StepExecutor` protocol: one execution tier of the kernel.

An executor owns phase B (firing the popped class) and put routing for
one :class:`~repro.core.kernel.StepKernel`.  The kernel keeps everything
an execution tier must *not* vary — the Delta tree, Gamma, admission,
retraction repair, retention, phase C ordering — and delegates exactly
three operations:

* :meth:`StepExecutor.fire_class` — phase B for one prepared class;
* :meth:`StepExecutor.fire_one` — fire a single (rule, trigger) pair;
  the kernel routes -noDelta cascades and retraction refires through
  this, so a tier's fast path and its cascade path stay one code path;
* :meth:`StepExecutor.handle_puts` — route one firing's puts (buffer
  for phase C, or cascade -noDelta tables immediately).

``flush_stats`` runs at settle time *before* the kernel folds the plan
cache's ``rule_hits`` into the collector, so a tier may merge its own
per-site counters into the shared plans first.

Which tier a run gets — including refusals raised by
``ExecOptions.__post_init__`` and silent-with-a-note downgrades to
scalar — is decided by one table in
:mod:`repro.core.executors.registry`, never by the tiers themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.database import InsertOutcome
from repro.core.tuples import JTuple
from repro.exec.base import TaskResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepKernel
    from repro.core.rules import Rule

__all__ = ["StepExecutor"]


class StepExecutor:
    """Base class of every execution tier.

    Subclasses set :attr:`name` and implement :meth:`fire_one` and
    :meth:`fire_class`; :meth:`handle_puts` has a default (buffer
    non--noDelta puts, cascade the rest through the kernel) that batch
    tiers override with their hoisted loop.
    """

    #: registry name, matches the ``ExecOptions.execution`` value
    name = "?"
    #: phase C may skip store probe + timestamping for batch-local
    #: repeated puts (sound only when phase B never mutates Gamma
    #: outside the -noDelta cascade path, which bumps the epoch)
    dedupe_phase_c = False

    def __init__(self, kernel: "StepKernel"):
        self.kernel = kernel

    # -- firing --------------------------------------------------------------

    def fire_one(self, rule: "Rule", tup: JTuple, result: TaskResult) -> None:
        """Fire one rule for one trigger, appending effects to
        ``result``.  Must be safe to call re-entrantly from a -noDelta
        cascade started by its own puts."""
        raise NotImplementedError

    def fire_class(
        self, prepared: list[tuple[JTuple, InsertOutcome | None]]
    ) -> list[TaskResult]:
        """Phase B for one popped class (non-retraction runs only; the
        retraction repair path builds scalar tasks through the kernel).
        ``prepared`` pairs each trigger with its phase-A insert outcome,
        in pop order."""
        raise NotImplementedError

    # -- put routing ---------------------------------------------------------

    def handle_puts(
        self, ctx_puts: list[JTuple], result: TaskResult, rule_name: str
    ) -> None:
        """Route a rule's puts.  -noDelta tables cascade immediately
        inside the producing task (§5.1); everything else is buffered on
        the task result and enters Delta after the batch joins — which
        keeps Delta mutation out of the parallel phase and effect order
        deterministic."""
        k = self.kernel
        tallies = k._put_tallies
        for tup in ctx_puts:
            name = tup.schema.name
            key = (rule_name, name)
            tallies[key] = tallies.get(key, 0) + 1
            if name in k._no_delta:
                k._tt(name)[0] += 1
                k._immediate(tup, result)
            else:
                result.puts.append(tup)

    # -- bookkeeping ---------------------------------------------------------

    def flush_stats(self) -> None:
        """Fold tier-private counters into the kernel's collector (and
        the shared plan cache) at settle time; default: nothing."""
