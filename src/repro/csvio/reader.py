"""Byte-oriented CSV reading.

§6.1: "JStar uses its own more efficient CSV library that keeps lines
as byte arrays and avoids conversion to strings as much as possible" —
which is why the JStar PvWatts program beats the hand-coded Java one
(whose reader uses ``BufferedReader.readline`` plus ``String.split``).

The Python analogue of the same trade: this reader slices raw
``bytes`` and feeds them to ``int()`` directly (CPython's ``int``
accepts ASCII byte strings), skipping the text decode that the
baseline reader (:func:`read_records_text`, the ``readline``/``split``
style) pays per line.  The speed *relationship* between the two is
what Fig 6's PvWatts pair measures.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

__all__ = ["iter_lines", "parse_int_fields", "read_records_bytes", "read_records_text"]


def iter_lines(data: bytes, start: int = 0, end: int | None = None) -> Iterator[bytes]:
    """Yield newline-separated lines of ``data[start:end)``.

    Uses one C-level ``bytes.split`` pass over the window (the whole
    point of the byte-oriented reader: no per-line Python scanning and
    no text decode).  A trailing newline produces no empty final line,
    matching a find-loop's behaviour.
    """
    if end is None:
        end = len(data)
    if start >= end:
        return iter(())
    window = data if (start == 0 and end == len(data)) else data[start:end]
    lines = window.split(b"\n")
    if lines and not lines[-1]:
        lines.pop()
    return iter(lines)


def parse_int_fields(
    line: bytes, int_positions: Sequence[int], n_fields: int
) -> tuple | None:
    """Split one CSV line on commas; fields at ``int_positions`` parsed
    as ints, the rest kept as ``bytes``.  Returns None for blank or
    malformed lines (wrong field count)."""
    if not line or line.endswith(b"\r") and len(line) == 1:
        return None
    if line.endswith(b"\r"):
        line = line[:-1]
    if not line:
        return None
    parts = line.split(b",")
    if len(parts) != n_fields:
        return None
    out: list = list(parts)
    try:
        for i in int_positions:
            out[i] = int(parts[i])
    except ValueError:
        return None
    return tuple(out)


def read_records_bytes(
    data: bytes,
    int_positions: Sequence[int],
    n_fields: int,
    start: int = 0,
    end: int | None = None,
    on_record: Callable[[tuple], None] | None = None,
) -> list[tuple] | int:
    """The JStar-style fast path: byte slicing, no string decode.

    With ``on_record`` given, records are streamed to the callback and
    the count is returned (no list retained); otherwise the record list
    is returned.
    """
    # the parse loop is inlined (no per-line function call) — this is
    # the hot path whose speed Fig 6's PvWatts pair compares
    if end is None:
        end = len(data)
    window = data if (start == 0 and end == len(data)) else data[start:end]
    # one whole-buffer probe decides whether per-line \r handling is
    # needed at all (it costs ~8% of the loop when done per line)
    has_cr = window.find(b"\r") != -1
    records: list[tuple] = [] if on_record is None else None  # type: ignore[assignment]
    n = 0
    for line in window.split(b"\n"):
        if has_cr and line.endswith(b"\r"):
            line = line[:-1]
        if not line:
            continue
        parts = line.split(b",")
        if len(parts) != n_fields:
            continue
        out = list(parts)
        try:
            for i in int_positions:
                out[i] = int(parts[i])
        except ValueError:
            continue
        rec = tuple(out)
        if on_record is None:
            records.append(rec)
        else:
            on_record(rec)
            n += 1
    return records if on_record is None else n


def read_records_text(
    data: bytes,
    int_positions: Sequence[int],
    n_fields: int,
    on_record: Callable[[tuple], None] | None = None,
) -> list[tuple] | int:
    """The baseline style: decode to str, ``splitlines``/``split`` —
    the analogue of ``BufferedReader.readline`` + ``String.split``.
    Field values come back as ``str`` (ints parsed), so downstream
    code sees the same shape as the byte path."""
    text = data.decode("ascii")
    records: list[tuple] = []
    n = 0
    for line in text.splitlines():
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != n_fields:
            continue
        out: list = list(parts)
        try:
            for i in int_positions:
                out[i] = int(parts[i])
        except ValueError:
            continue
        rec = tuple(out)
        if on_record is None:
            records.append(rec)
        else:
            on_record(rec)
            n += 1
    return records if on_record is None else n
