"""CSV substrate: byte-oriented reader, region-split parallel reading,
and the synthetic PVWatts data generator (DESIGN.md §2 substitutions)."""

from repro.csvio.reader import (
    iter_lines,
    parse_int_fields,
    read_records_bytes,
    read_records_text,
)
from repro.csvio.split import read_region, region_bounds, split_regions
from repro.csvio.synth import (
    PVWATTS_FIELDS,
    PVWATTS_INT_POSITIONS,
    expected_month_means,
    generate_csv_bytes,
    hourly_records,
)

__all__ = [
    "iter_lines",
    "parse_int_fields",
    "read_records_bytes",
    "read_records_text",
    "read_region",
    "region_bounds",
    "split_regions",
    "PVWATTS_FIELDS",
    "PVWATTS_INT_POSITIONS",
    "expected_month_means",
    "generate_csv_bytes",
    "hourly_records",
]
