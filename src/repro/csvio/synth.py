"""Synthetic PVWatts-style solar data (the 192 MB NREL file substitute).

The paper's PvWatts case study reads ``large1000.csv`` — 8,760,000
hourly output records generated from NREL's PVWatts program — and
averages power per month (§6).  That file is not available, so this
module generates a deterministic stand-in with the same schema
(``year, month, day, hour, power``) and the properties the experiments
depend on:

* hourly records covering whole years (8 760 per installation-year),
  so all 12 months appear with realistic (28/30/31-day) weights;
* a plausible power model — seasonal × diurnal irradiance with seeded
  weather noise — so per-month averages are distinct and stable;
* two input orders matching Fig 10's experiment: ``"by-month"``
  (the paper's *unsorted* default: "ordered by year and month, which
  means that long sequences of records are processed by the same
  consumer") and ``"round-robin"`` (the paper's *sorted* best case:
  "sorted by day of the month and time of the day, so that input
  records are processed by consumers in a round-robin fashion").

Scale is a parameter; DESIGN.md records the default benchmark scale.
"""

from __future__ import annotations

import calendar
import math

import numpy as np

__all__ = [
    "PVWATTS_FIELDS",
    "PVWATTS_INT_POSITIONS",
    "hourly_records",
    "generate_csv_bytes",
    "expected_month_means",
]

#: field order of one CSV record
PVWATTS_FIELDS = ("year", "month", "day", "hour", "power")
#: positions parsed as integers (hour stays a string, as in Fig 4's
#: ``String hour`` column)
PVWATTS_INT_POSITIONS = (0, 1, 2, 4)

_DAYS = {m: calendar.monthrange(2001, m)[1] for m in range(1, 13)}  # non-leap


def _power(month: int, day: int, hour: int, noise: float) -> int:
    """Watt output of one installation-hour.

    Seasonal factor peaks mid-year (northern summer), diurnal factor is
    a half-sine between 06:00 and 18:00, plus multiplicative weather
    noise; night hours produce 0.
    """
    if hour < 6 or hour >= 18:
        return 0
    season = 0.6 + 0.4 * math.sin(math.pi * (month - 0.5) / 12.0)
    diurnal = math.sin(math.pi * (hour - 6) / 12.0)
    base = 4000.0 * season * diurnal
    jitter = 1.0 + 0.25 * noise + 0.002 * (day % 7)
    return max(0, int(base * jitter))


def hourly_records(
    n_years: int = 1,
    start_year: int = 2012,
    seed: int = 42,
    order: str = "by-month",
) -> list[tuple[int, int, int, str, int]]:
    """All hourly records, in the requested input order.

    ``order="by-month"`` is chronological (year, month, day, hour);
    ``order="round-robin"`` interleaves months: primary sort key is
    (day, hour), so consecutive records cycle through the 12 months.
    """
    if order not in ("by-month", "round-robin"):
        raise ValueError(f"unknown order {order!r}")
    rng = np.random.default_rng(seed)
    records: list[tuple[int, int, int, str, int]] = []
    for y in range(start_year, start_year + n_years):
        for month in range(1, 13):
            noise = rng.standard_normal(_DAYS[month] * 24)
            i = 0
            for day in range(1, _DAYS[month] + 1):
                for hour in range(24):
                    p = _power(month, day, hour, float(noise[i]))
                    records.append((y, month, day, f"{hour:02d}:00", p))
                    i += 1
    if order == "round-robin":
        records.sort(key=lambda r: (r[0], r[2], r[3], r[1]))
    return records


def generate_csv_bytes(
    n_years: int = 1,
    start_year: int = 2012,
    seed: int = 42,
    order: str = "by-month",
) -> bytes:
    """The CSV file as bytes (no header, matching the paper's reader)."""
    recs = hourly_records(n_years, start_year, seed, order)
    lines = [f"{y},{m},{d},{h},{p}" for (y, m, d, h, p) in recs]
    return ("\n".join(lines) + "\n").encode("ascii")


def expected_month_means(
    n_years: int = 1, start_year: int = 2012, seed: int = 42
) -> dict[tuple[int, int], float]:
    """Ground-truth per-(year, month) mean power, for validating both
    the JStar program and the baseline against the same data."""
    sums: dict[tuple[int, int], float] = {}
    counts: dict[tuple[int, int], int] = {}
    for y, m, _d, _h, p in hourly_records(n_years, start_year, seed):
        key = (y, m)
        sums[key] = sums.get(key, 0.0) + p
        counts[key] = counts.get(key, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
