"""Region-split parallel CSV reading.

§6.2: "the CSV reader library can run several readers in parallel, on
different parts of the input file.  (Each reader continues reading a
little way past the end of its region, to ensure that all records have
been read.  This strategy is also employed by some of the input file
readers in Hadoop.)"

The classic protocol, implemented here over an in-memory byte buffer:

* the file is cut at ``N`` arbitrary byte offsets;
* every reader except the first *skips* forward to the first newline at
  or after its region start (that partial record belongs to the
  previous reader);
* every reader keeps reading past its region end until it finishes the
  record that straddles the boundary.

Together the regions partition the record stream exactly once —
:func:`read_region` of all regions concatenated equals a whole-file
read, a property the test suite checks for arbitrary cut points
(hypothesis).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.csvio.reader import read_records_bytes

__all__ = ["split_regions", "region_bounds", "read_region"]


def split_regions(size: int, n: int) -> list[tuple[int, int]]:
    """Cut ``size`` bytes into ``n`` near-equal ``[start, end)`` regions."""
    if n < 1:
        raise ValueError("need at least one region")
    n = min(n, max(1, size))
    base = size // n
    cuts = [i * base for i in range(n)] + [size]
    return [(cuts[i], cuts[i + 1]) for i in range(n)]


def _align(data: bytes, p: int) -> int:
    """Byte offset of the first record start at or after ``p``.

    A record starts at offset 0 or immediately after a newline; if
    ``p`` lands mid-record, the reader "continues reading a little way
    past the end of its region" — i.e. ownership moves forward to the
    next newline.
    """
    if p <= 0:
        return 0
    if p >= len(data):
        return len(data)
    if data[p - 1 : p] == b"\n":
        return p
    nl = data.find(b"\n", p)
    return len(data) if nl < 0 else nl + 1


def region_bounds(data: bytes, start: int, end: int) -> tuple[int, int]:
    """Resolve a raw byte region to record-aligned bounds.

    The returned ``(first, last)`` are byte offsets such that reading
    lines in ``[first, last)`` yields exactly the records *owned* by
    this region: records whose first byte lies at the first record
    start ≥ ``start`` but before the first record start ≥ ``end``.
    Both bounds use the same alignment, so consecutive raw regions tile
    the record stream exactly once (every record read by exactly one
    reader), whatever the cut points.
    """
    first = _align(data, start)
    last = _align(data, end)
    return first, max(first, last)


def read_region(
    data: bytes,
    start: int,
    end: int,
    int_positions: Sequence[int],
    n_fields: int,
    on_record: Callable[[tuple], None],
) -> int:
    """Stream the records owned by byte region ``[start, end)`` to
    ``on_record``; returns the record count."""
    first, last = region_bounds(data, start, end)
    # same per-line semantics as parse_int_fields, via the inlined
    # whole-window loop (no per-line function call)
    return read_records_bytes(data, int_positions, n_fields, first, last, on_record)
