"""DOT rendering of dependency graphs (the Figs 7/9 pictures).

Fig 7's legend: "Blue rectangles are tuples, and red circles are tasks
executing rules — the bold arrows show the trigger tuple that starts
the rule executing."  We render table nodes as blue boxes, rule nodes
as red ellipses, trigger edges bold, put edges solid, read edges
dashed; execution-graph annotations become edge/node labels.

The output is plain Graphviz DOT text (no graphviz binary needed to
*generate* it; any renderer draws it).
"""

from __future__ import annotations

import networkx as nx

__all__ = ["to_dot"]

_NODE_STYLE = {
    "table": 'shape=box, style="filled", fillcolor="#cfe2ff"',
    "rule": 'shape=ellipse, style="filled", fillcolor="#ffd0cf"',
}

_EDGE_STYLE = {
    "trigger": "style=bold, color=black",
    "put": "color=black",
    "read": "style=dashed, color=gray40",
}


def _esc(s: str) -> str:
    return s.replace('"', '\\"')


def to_dot(g: nx.DiGraph, title: str | None = None) -> str:
    """Serialise a program/execution graph to DOT."""
    name = title or g.graph.get("name", "jstar")
    lines = [f'digraph "{_esc(name)}" {{', "  rankdir=LR;"]
    for node, data in g.nodes(data=True):
        kind = data.get("kind", "table")
        label = data.get("label", node)
        extras = []
        if "firings" in data:
            extras.append(f"{data['firings']} firings")
        if "gamma_inserts" in data and data["gamma_inserts"]:
            extras.append(f"{data['gamma_inserts']} tuples")
        if extras:
            label = f"{label}\\n({', '.join(extras)})"
        lines.append(
            f'  "{_esc(node)}" [label="{_esc(label)}", {_NODE_STYLE.get(kind, "")}];'
        )
    for u, v, data in g.edges(data=True):
        kind = data.get("kind", "put")
        attrs = [_EDGE_STYLE.get(kind, "")]
        if "count" in data:
            attrs.append(f'label="{data["count"]}"')
        lines.append(f'  "{_esc(u)}" -> "{_esc(v)}" [{", ".join(a for a in attrs if a)}];')
    lines.append("}")
    return "\n".join(lines)
