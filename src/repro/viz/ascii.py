"""ASCII renderers: dependency graphs and Delta-tree snapshots.

§1.5 mentions "a simple graph visualizer for viewing aspects of the
partial order over tuples that controls the parallelism" — terminals
and tests get the same views without a DOT renderer:

* :func:`graph_ascii` — a topologically-ordered adjacency listing of a
  program/execution graph;
* :func:`delta_ascii` — the current Delta tree as an indented outline,
  one line per non-empty leaf class (the partial order over pending
  tuples, in causal order).
"""

from __future__ import annotations

import networkx as nx

from repro.core.delta import DeltaTree

__all__ = ["graph_ascii", "delta_ascii"]

_EDGE_GLYPH = {"trigger": "==>", "put": "-->", "read": "..>"}


def graph_ascii(g: nx.DiGraph) -> str:
    """One line per edge, grouped by source, sources in (best-effort)
    topological order so dataflow reads top-to-bottom."""
    try:
        order = list(nx.topological_sort(g))
    except nx.NetworkXUnfeasible:  # cyclic programs are legal (Ship!)
        order = sorted(g.nodes)
    lines = []
    for node in order:
        outs = list(g.successors(node))
        if not outs and g.in_degree(node) == 0:
            lines.append(f"{g.nodes[node].get('label', node)}  (isolated)")
            continue
        for v in outs:
            kind = g.edges[node, v].get("kind", "put")
            count = g.edges[node, v].get("count")
            suffix = f"  x{count}" if count is not None else ""
            lines.append(
                f"{g.nodes[node].get('label', node)} "
                f"{_EDGE_GLYPH.get(kind, '-->')} "
                f"{g.nodes[v].get('label', v)}{suffix}"
            )
    return "\n".join(lines)


def delta_ascii(delta: DeltaTree, max_tuples_per_class: int = 6) -> str:
    """The pending partial order: each line is one equivalence class
    (tuples that would execute in parallel), in causal order."""
    lines = []
    for path, tuples in delta.snapshot():
        key_parts = []
        for comp in path:
            if comp == "par":
                key_parts.append("par *")
            else:
                tag, value = comp
                key_parts.append(f"{tag}={value}")
        shown = tuples[:max_tuples_per_class]
        more = len(tuples) - len(shown)
        suffix = f" ... +{more} more" if more > 0 else ""
        lines.append(
            f"[{', '.join(key_parts) or 'root'}]  "
            f"{{{', '.join(shown)}{suffix}}}  ({len(tuples)} parallel)"
        )
    return "\n".join(lines) if lines else "(Delta empty)"
