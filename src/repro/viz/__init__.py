"""Visualisation: DOT and ASCII renderers for dependency graphs and
Delta-tree snapshots (Figs 7/9 and the §1.5 partial-order viewer)."""

from repro.viz.ascii import delta_ascii, graph_ascii
from repro.viz.dot import to_dot

__all__ = ["to_dot", "graph_ascii", "delta_ascii"]
