"""Automated tuple-lifetime analysis (§5 step 4's missing automation).

Paper: "If program analysis makes it possible to determine that this
tuple can never participate in future queries, then it can be removed
from the Gamma database and garbage collected.  Currently, this
program analysis is not automated, so we simply retain all tuples, or
use manual lifetime hints from the user."

This module automates the common case.  Call a table *clocked* when its
orderby is ``(Lit, seq f, ...)`` — its level-1 ``seq`` field advances
with the program's causal time.  If **every** query against a clocked
table ``T`` binds ``T``'s clock to ``trigger_clock + c`` with ``c ≤ 0``
(a bounded lookback), then a ``T`` tuple whose clock lags the table's
maximum by more than ``max(-c)`` can never be returned by any future
query: future triggers have clocks ≥ the tuples already seen (the
Delta order guarantees nondecreasing trigger clocks), so every future
probe lands within the lookback window.  The sound hint is therefore
``RetentionHint(f, max_lookback + 1)``.

Soundness requires seeing *all* queries, so the analysis demands
symbolic metadata (:class:`~repro.solver.obligations.RuleMeta`) on
every rule — automatic for textual programs (:mod:`repro.lang.meta`);
DSL rules without metadata must be explicitly vouched for via
``trusted_no_query_rules``.  Any query we cannot fit the pattern
disqualifies its table.  (Pruning by the table's own maximum clock,
as the engine's hints do, is more conservative than pruning by the
global clock — it only ever keeps extra tuples.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.core.ordering import Lit, Seq
from repro.core.program import Program, RetentionHint
from repro.core.schema import TableSchema
from repro.solver.obligations import RuleMeta
from repro.solver.terms import Term

__all__ = ["clock_field", "suggest_retention"]


def clock_field(schema: TableSchema) -> str | None:
    """The table's clock: the field of the first orderby level that is
    ``seq``, provided only literals precede it."""
    for entry in schema.orderby:
        if isinstance(entry, Lit):
            continue
        if isinstance(entry, Seq):
            return entry.field
        return None  # par level before any seq: no usable clock
    return None


def _constant_lookback(bound: Term, trig_clock: Term) -> Fraction | None:
    """If ``bound == trig_clock + c`` for a constant ``c``, return
    ``c``; otherwise None."""
    diff = bound - trig_clock
    if diff.is_constant():
        return diff.constant
    return None


def suggest_retention(
    program: Program,
    trusted_no_query_rules: Iterable[str] = (),
) -> dict[str, RetentionHint]:
    """Derive sound :class:`RetentionHint`\\ s for a program's tables.

    Returns hints only for tables the analysis can prove safe; an empty
    dict means "retain everything", never an unsound hint.
    """
    program.freeze()
    trusted = set(trusted_no_query_rules)

    # gather all queries per table; bail out entirely if any rule is
    # opaque (it could query anything)
    metas: list[RuleMeta] = []
    for rule in program.rules:
        if isinstance(rule.meta, RuleMeta):
            metas.append(rule.meta)
        elif rule.name in trusted:
            continue
        else:
            return {}

    # per-table: None = disqualified, else max lookback seen so far
    lookback: dict[str, Fraction] = {}
    disqualified: set[str] = set()

    for meta in metas:
        trig_schema = meta.trigger_schema
        trig_clock_field = clock_field(trig_schema)
        trig_clock = (
            meta.trigger.get(trig_clock_field) if trig_clock_field else None
        )
        for branch in meta.branches:
            for q in branch.queries:
                name = q.schema.name
                if name in disqualified:
                    continue
                f = clock_field(q.schema)
                if f is None or trig_clock is None:
                    disqualified.add(name)
                    continue
                bound = q.bound.get(f)
                if bound is None:
                    # the clock is unbounded (or only range-bounded via
                    # the constraints callback — treated conservatively)
                    disqualified.add(name)
                    continue
                c = _constant_lookback(bound, trig_clock)
                if c is None or c > 0:
                    # not trigger-aligned, or probes the future (the
                    # causality checker flags the latter separately)
                    disqualified.add(name)
                    continue
                back = -c
                if name not in lookback or back > lookback[name]:
                    lookback[name] = back

    hints: dict[str, RetentionHint] = {}
    for name, back in lookback.items():
        if name in disqualified:
            continue
        schema = program.tables[name].schema
        f = clock_field(schema)
        assert f is not None
        keep = int(back) + 1 if back == int(back) else int(back) + 2
        hints[name] = RetentionHint(f, keep_last=keep)
    return hints
