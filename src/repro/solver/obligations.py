"""Causality proof obligations (§4) and their symbolic rule metadata.

The paper sends one obligation to an SMT solver per ``put`` (the new
tuple must be in the trigger's present/future) and per negative or
aggregate query (the queried region must be strictly in the past)::

    1. inv(trig) and Cond and inv(tuple1)
         ==>  orderby(trig) <= orderby(tuple1)
    3. inv(trig) and not(Cond)
         ==>  orderby(Tuple1(queryArgs)) < orderby(trig)

A rule's Python body is opaque, so rules that want static checking
carry a :class:`RuleMeta`: the same information the JStar compiler
would extract from the source — per-branch path conditions, the tuples
each branch puts (field expressions over trigger fields), and the
queries it makes (bound fields + extra constraints).  Table invariants
(``inv`` above) are supplied per table as functions from field
variables to constraints; obligations both *use* trigger/query
invariants as hypotheses and *check* that puts preserve them.

Timestamp comparisons are lexicographic over mixed literal / ``seq`` /
``par`` levels; :func:`prove_lex_le` decomposes them into linear
entailments for the Fourier–Motzkin core plus declared-order facts for
literal levels.  The decomposition proves ``a ≤lex b`` via the standard
unfolding ``a0 < b0  ∨  (a0 = b0 ∧ rest)``, trying in order: strictly
less at this level (done), exactly equal (descend), provably ≤ (descend
under the added equality hypothesis).  This is sound and complete for
the obligations the paper's examples generate; genuinely disjunctive
facts fail to prove, which surfaces as the paper's warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.errors import SolverError
from repro.core.ordering import Lit, OrderDecls, Par, Seq
from repro.core.query import QueryKind
from repro.core.schema import TableSchema
from repro.core.tuples import TableHandle
from repro.solver.fourier import entails
from repro.solver.terms import Constraint, Term, var

__all__ = [
    "Invariant",
    "SymPut",
    "SymQuery",
    "Branch",
    "RuleMeta",
    "Obligation",
    "symbolic_timestamp",
    "prove_lex_le",
    "generate_obligations",
]

#: maps a table's field variables to its invariant constraints
Invariant = Callable[[Mapping[str, Term]], Sequence[Constraint]]

_NUMERIC = ("int", "float", "bool")


def _field_vars(schema: TableSchema, prefix: str) -> dict[str, Term]:
    """Fresh variables for every numeric field of a table."""
    return {
        f.name: var(f"{prefix}.{f.name}")
        for f in schema.fields
        if f.type in _NUMERIC
    }


@dataclass(slots=True)
class SymPut:
    """One symbolic ``put``: field expressions over trigger variables.
    Fields missing from ``fields`` (e.g. strings) are unconstrained."""

    schema: TableSchema
    fields: dict[str, Term]


@dataclass(slots=True)
class SymQuery:
    """One symbolic query.

    ``bound`` maps field name to the Term it is equality-constrained to
    (the query's positional/named args); unmentioned numeric fields get
    fresh variables.  ``constraints`` are extra facts about the query's
    own field variables, phrased by a callback receiving those
    variables — this is how a ``[distance < dist.distance]`` predicate
    becomes visible to the prover.
    """

    schema: TableSchema
    kind: QueryKind
    bound: dict[str, Term] = field(default_factory=dict)
    constraints: Callable[[Mapping[str, Term]], Sequence[Constraint]] | None = None


@dataclass(slots=True)
class Branch:
    """One path through the rule body.

    ``bindings`` are auxiliary tuple-variable environments in scope on
    this path (loop variables iterating a query): each is a
    ``(schema, field vars)`` pair whose table invariant joins the
    branch hypotheses — how ``for (edge : get Edge(...))`` lets an
    ``Edge.value >= 0`` invariant prove the Estimate put of Fig 5.
    """

    when: list[Constraint] = field(default_factory=list)
    puts: list[SymPut] = field(default_factory=list)
    queries: list[SymQuery] = field(default_factory=list)
    bindings: list[tuple[TableSchema, dict[str, Term]]] = field(default_factory=list)


class RuleMeta:
    """Symbolic description of one rule, built fluently::

        m = RuleMeta(Ship)
        t = m.trigger
        b = m.branch(when=[t["x"] < 400])
        b.put(Ship, frame=t["frame"] + 1, x=t["x"] + 150,
              y=t["y"], dx=t["dx"], dy=t["dy"])
    """

    def __init__(self, trigger: TableHandle | TableSchema):
        self.trigger_schema = (
            trigger.schema if isinstance(trigger, TableHandle) else trigger
        )
        self.trigger: dict[str, Term] = _field_vars(self.trigger_schema, "trig")
        self.branches: list[Branch] = []

    def branch(self, when: Sequence[Constraint] = ()) -> "_BranchBuilder":
        b = Branch(when=list(when))
        self.branches.append(b)
        return _BranchBuilder(b)


class _BranchBuilder:
    __slots__ = ("_branch",)

    def __init__(self, branch: Branch):
        self._branch = branch

    def put(self, table: TableHandle, **fields: Term | int | float) -> "_BranchBuilder":
        schema = table.schema
        exprs: dict[str, Term] = {}
        for name, expr in fields.items():
            schema.field_position(name)  # validates
            exprs[name] = _as_term(expr)
        self._branch.puts.append(SymPut(schema, exprs))
        return self

    def query(
        self,
        table: TableHandle,
        kind: QueryKind = QueryKind.POSITIVE,
        constraints: Callable[[Mapping[str, Term]], Sequence[Constraint]] | None = None,
        **bound: Term | int | float,
    ) -> "_BranchBuilder":
        schema = table.schema
        b = {name: _as_term(v) for name, v in bound.items()}
        for name in b:
            schema.field_position(name)
        self._branch.queries.append(SymQuery(schema, kind, b, constraints))
        return self


def _as_term(x: Term | int | float) -> Term:
    if isinstance(x, Term):
        return x
    return Term({}, x)


# ---------------------------------------------------------------------------
# symbolic timestamps and lexicographic entailment
# ---------------------------------------------------------------------------

# a symbolic timestamp component:
#   ("lit", name) | ("seq", Term) | ("seq?",) unprovable | ("par",)
SymComponent = tuple


def symbolic_timestamp(
    schema: TableSchema, fields: Mapping[str, Term]
) -> list[SymComponent]:
    """The symbolic orderby list of a tuple with the given field terms.
    ``seq`` levels whose field has no term (non-numeric / unspecified)
    become opaque ``("seq?",)`` components, which only prove equal to
    themselves never to another tuple's level."""
    comps: list[SymComponent] = []
    for entry in schema.orderby:
        if isinstance(entry, Lit):
            comps.append(("lit", entry.name))
        elif isinstance(entry, Seq):
            t = fields.get(entry.field)
            comps.append(("seq", t) if t is not None else ("seq?",))
        elif isinstance(entry, Par):
            comps.append(("par",))
    return comps


def prove_lex_le(
    a: Sequence[SymComponent],
    b: Sequence[SymComponent],
    hypotheses: Sequence[Constraint],
    decls: OrderDecls,
    strict: bool = False,
    entails_fn: Callable[[Sequence[Constraint], Constraint], bool] = entails,
) -> tuple[bool, str]:
    """Try to prove ``a ≤lex b`` (or ``<lex``) under the hypotheses.
    Returns (proved, human-readable reason).  ``entails_fn`` selects the
    decision procedure (§1.5's alternative-provers hook)."""
    hyps = list(hypotheses)
    i = 0
    n = min(len(a), len(b))
    while i < n:
        ca, cb = a[i], b[i]
        if ca[0] != cb[0]:
            return False, f"level {i}: structural mismatch ({ca[0]} vs {cb[0]})"
        kind = ca[0]
        if kind == "par":
            i += 1
            continue
        if kind == "seq?":
            return False, f"level {i}: opaque seq field (no symbolic term)"
        if kind == "lit":
            la, lb = ca[1], cb[1]
            if la == lb:
                i += 1
                continue
            if decls.declared_less(la, lb):
                return True, f"level {i}: order declares {la} < {lb}"
            return False, (
                f"level {i}: literals {la} vs {lb} not declared {la} < {lb}"
            )
        # seq with terms
        ta, tb = ca[1], cb[1]
        if entails_fn(hyps, ta < tb):
            return True, f"level {i}: proved {ta!r} < {tb!r}"
        if entails_fn(hyps, ta.eq(tb)):
            i += 1
            continue
        if entails_fn(hyps, ta <= tb):
            hyps = hyps + [ta.eq(tb)]
            i += 1
            continue
        return False, f"level {i}: cannot prove {ta!r} <= {tb!r}"
    if len(a) == len(b):
        if strict:
            return False, "timestamps may be equal (strict ordering required)"
        return True, "timestamps equal on every compared level"
    if len(a) < len(b):
        return True, "left timestamp is a strict prefix (sorts first)"
    return False, "left timestamp extends the right (sorts after)"


# ---------------------------------------------------------------------------
# obligation generation
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Obligation:
    """One discharged-or-not proof obligation."""

    rule: str
    kind: str  # "put-causality" | "put-invariant" | "query-past"
    description: str
    proved: bool
    reason: str


def generate_obligations(
    rule_name: str,
    meta: RuleMeta,
    decls: OrderDecls,
    invariants: Mapping[str, Invariant] | None = None,
    prover: str | None = None,
) -> list[Obligation]:
    """Generate and attempt to discharge every §4 obligation of a rule.

    Per branch: (a) for each put, ``hyps ⟹ orderby(trig) ≤lex
    orderby(put)``; (b) for each put, the target table's invariant
    holds of the put fields; (c) for each negative/aggregate query,
    ``hyps ⟹ orderby(query) <lex orderby(trig)``; (d) for each
    positive query, ``orderby(query) ≤lex orderby(trig)`` (see module
    docstring for why this is the sound engine-level form).
    """
    from repro.solver.provers import get_prover

    _, entails_fn = get_prover(prover)
    inv = dict(invariants or {})
    out: list[Obligation] = []
    trig_schema = meta.trigger_schema
    trig_ts = symbolic_timestamp(trig_schema, meta.trigger)

    def invariant_atoms(schema: TableSchema, fields: Mapping[str, Term]) -> list[Constraint]:
        f = inv.get(schema.name)
        return list(f(fields)) if f is not None else []

    base_hyps = invariant_atoms(trig_schema, meta.trigger)

    q_counter = 0
    for bi, branch in enumerate(meta.branches):
        hyps = base_hyps + branch.when
        for b_schema, b_fields in branch.bindings:
            hyps = hyps + invariant_atoms(b_schema, b_fields)
        # queries first: they are hypotheses-independent checks
        for q in branch.queries:
            q_counter += 1
            q_fields = _field_vars(q.schema, f"q{q_counter}")
            q_fields.update(q.bound)
            q_hyps = hyps + invariant_atoms(q.schema, q_fields)
            if q.constraints is not None:
                q_hyps = q_hyps + list(q.constraints(q_fields))
            q_ts = symbolic_timestamp(q.schema, q_fields)
            strict = q.kind is not QueryKind.POSITIVE
            ok, why = prove_lex_le(
                q_ts, trig_ts, q_hyps, decls, strict=strict, entails_fn=entails_fn
            )
            out.append(
                Obligation(
                    rule_name,
                    "query-past",
                    f"branch {bi}: {q.kind.value} query on {q.schema.name} "
                    f"{'<' if strict else '<='} trigger",
                    ok,
                    why,
                )
            )
        for pi, p in enumerate(branch.puts):
            # unspecified numeric fields are unconstrained fresh vars
            p_fields = _field_vars(p.schema, f"p{bi}_{pi}")
            p_fields.update(p.fields)
            put_hyps = hyps + invariant_atoms(p.schema, p_fields)
            put_ts = symbolic_timestamp(p.schema, p_fields)
            ok, why = prove_lex_le(
                trig_ts, put_ts, put_hyps, decls, strict=False, entails_fn=entails_fn
            )
            out.append(
                Obligation(
                    rule_name,
                    "put-causality",
                    f"branch {bi}: put {p.schema.name} in trigger's future",
                    ok,
                    why,
                )
            )
            # invariant preservation: hyps (without assuming the put's
            # own invariant!) must entail each invariant atom
            for atom in invariant_atoms(p.schema, p_fields):
                proved = entails_fn(hyps, atom)
                out.append(
                    Obligation(
                        rule_name,
                        "put-invariant",
                        f"branch {bi}: put {p.schema.name} preserves {atom!r}",
                        proved,
                        "entailed" if proved else "not entailed",
                    )
                )
    return out
