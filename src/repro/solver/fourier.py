"""Fourier–Motzkin decision procedure for linear rational arithmetic.

This is the reproduction's stand-in for the paper's SMT solvers (§1.5,
§4): the causality obligations are conjunctions/implications of linear
comparisons over orderby fields, a fragment for which Fourier–Motzkin
elimination is a complete decision procedure over the rationals.

Soundness note for the integer-typed fields: if a constraint system is
infeasible over ℚ it is infeasible over ℤ, so every theorem we *prove*
is genuinely valid; we may fail to prove some integer-only facts (e.g.
``2x == 1`` infeasibility is caught, but tighter parity arguments are
not) — mirroring how the paper treats an unproved obligation as a
warning rather than an error.

Entry points:

* :func:`feasible` — is a conjunction of atoms satisfiable (ℚ)?
* :func:`entails` — does a conjunction imply an atom?  (refutes
  ``H ∧ ¬C`` disjunct by disjunct)
* :func:`entails_all` — implication of a conjunction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.errors import SolverError
from repro.solver.terms import Constraint, Rel, Term

__all__ = ["feasible", "entails", "entails_all", "MAX_ATOMS"]

#: safety valve: FM is worst-case exponential; obligations are tiny, so
#: hitting this means a malformed meta, not a hard theorem.
MAX_ATOMS = 4000


def _substitute_equalities(atoms: list[Constraint]) -> list[Constraint] | None:
    """Gaussian elimination of EQ atoms.  Returns inequality atoms only,
    or None if an equality is already contradictory."""
    ineqs = [a for a in atoms if a.rel != Rel.EQ]
    eqs = [a for a in atoms if a.rel == Rel.EQ]
    while eqs:
        eq = eqs.pop()
        t = eq.term
        if t.is_constant():
            if t.constant != 0:
                return None
            continue
        # solve for the variable with the largest |coeff| (stability moot
        # with Fractions; any pivot works)
        pivot = next(iter(sorted(t.coeffs)))
        c = t.coeffs[pivot]
        # pivot = (-t + c*pivot) / c  ==  pivot - t/c
        replacement = Term({pivot: Fraction(1)}) - t * (Fraction(1) / c)

        def subst(a: Constraint) -> Constraint:
            ct = a.term
            if pivot not in ct.coeffs:
                return a
            k = ct.coeffs[pivot]
            new = ct + (replacement - Term({pivot: Fraction(1)})) * k
            return Constraint(new, a.rel)

        ineqs = [subst(a) for a in ineqs]
        eqs = [subst(a) for a in eqs]
    return ineqs


def feasible(atoms: Iterable[Constraint]) -> bool:
    """Satisfiability over ℚ of a conjunction of atoms."""
    work = _substitute_equalities(list(atoms))
    if work is None:
        return False
    # Fourier–Motzkin: repeatedly eliminate a variable.
    while True:
        # check ground atoms, drop them
        rest: list[Constraint] = []
        for a in work:
            if a.term.is_constant():
                v = a.term.constant
                if a.rel == Rel.LE and v > 0:
                    return False
                if a.rel == Rel.LT and v >= 0:
                    return False
            else:
                rest.append(a)
        work = rest
        if not work:
            return True
        if len(work) > MAX_ATOMS:
            raise SolverError(
                f"Fourier-Motzkin blow-up ({len(work)} atoms); "
                "obligation too large — check the rule metadata"
            )
        # pick the variable appearing in the fewest atoms (greedy heuristic)
        occurrence: dict[str, int] = {}
        for a in work:
            for v in a.term.coeffs:
                occurrence[v] = occurrence.get(v, 0) + 1
        pivot = min(sorted(occurrence), key=occurrence.__getitem__)
        lowers: list[tuple[Term, bool]] = []  # bound <= / < pivot  (term, strict)
        uppers: list[tuple[Term, bool]] = []  # pivot <= / < bound
        others: list[Constraint] = []
        for a in work:
            c = a.term.coeffs.get(pivot)
            if c is None:
                others.append(a)
                continue
            # a: c*pivot + r REL 0   =>  pivot REL' -r/c  (flip if c < 0)
            r = a.term - Term({pivot: c})
            bound = r * (Fraction(-1) / c)
            strict = a.rel == Rel.LT
            if c > 0:
                uppers.append((bound, strict))
            else:
                lowers.append((bound, strict))
        work = others
        for lo, lo_strict in lowers:
            for up, up_strict in uppers:
                # lo (<|<=) pivot (<|<=) up  =>  lo - up (<|<=) 0
                rel = Rel.LT if (lo_strict or up_strict) else Rel.LE
                work.append(Constraint(lo - up, rel))


def entails(hypotheses: Sequence[Constraint], conclusion: Constraint) -> bool:
    """``⋀hypotheses ⟹ conclusion`` (valid over ℚ)."""
    return all(
        not feasible(list(hypotheses) + [neg]) for neg in conclusion.negate()
    )


def entails_all(
    hypotheses: Sequence[Constraint], conclusions: Iterable[Constraint]
) -> bool:
    """``⋀hypotheses ⟹ ⋀conclusions``."""
    return all(entails(hypotheses, c) for c in conclusions)
