"""Symbolic linear terms over tuple fields.

The causality proof obligations of §4 compare *orderby lists* whose
``seq`` entries are arithmetic over tuple fields (``s.frame + 1``,
``dist.distance + edge.value``).  Those expressions are linear, so the
prover works in linear rational arithmetic: a :class:`Term` is
``Σ coeff·var + const`` with exact :class:`~fractions.Fraction`
coefficients.

Variables are created with :func:`var` and are conventionally named
``"<role>.<field>"`` (``trig.frame``, ``q.distance``) by the obligation
generator.  Terms support ``+ - *`` (by constants) and the comparison
operators, which build :class:`Constraint` atoms for the
Fourier–Motzkin core.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.core.errors import SolverError

__all__ = ["Term", "Constraint", "var", "const", "Rel"]

Number = Union[int, float, Fraction]


def _frac(x: Number) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        return Fraction(x).limit_denominator(10**12)
    raise SolverError(f"not a number: {x!r}")


class Term:
    """A linear expression ``Σ coeff·var + const`` (immutable)."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[str, Fraction] | None = None, constant: Number = 0):
        clean = {v: c for v, c in (coeffs or {}).items() if c != 0}
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "constant", _frac(constant))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Terms are immutable")

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(other: "Term | Number") -> "Term":
        if isinstance(other, Term):
            return other
        return Term({}, _frac(other))

    def __add__(self, other: "Term | Number") -> "Term":
        o = self._coerce(other)
        coeffs = dict(self.coeffs)
        for v, c in o.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return Term(coeffs, self.constant + o.constant)

    __radd__ = __add__

    def __neg__(self) -> "Term":
        return Term({v: -c for v, c in self.coeffs.items()}, -self.constant)

    def __sub__(self, other: "Term | Number") -> "Term":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Term | Number") -> "Term":
        return self._coerce(other) + (-self)

    def __mul__(self, k: Number) -> "Term":
        if isinstance(k, Term):
            raise SolverError("only linear terms are supported (term * term)")
        kf = _frac(k)
        return Term({v: c * kf for v, c in self.coeffs.items()}, self.constant * kf)

    __rmul__ = __mul__

    # -- comparisons build constraints ------------------------------------

    def __le__(self, other: "Term | Number") -> "Constraint":
        return Constraint(self - self._coerce(other), Rel.LE)

    def __lt__(self, other: "Term | Number") -> "Constraint":
        return Constraint(self - self._coerce(other), Rel.LT)

    def __ge__(self, other: "Term | Number") -> "Constraint":
        return Constraint(self._coerce(other) - self, Rel.LE)

    def __gt__(self, other: "Term | Number") -> "Constraint":
        return Constraint(self._coerce(other) - self, Rel.LT)

    def eq(self, other: "Term | Number") -> "Constraint":
        """Equality atom (named method; ``==`` keeps Python semantics)."""
        return Constraint(self - self._coerce(other), Rel.EQ)

    # -- introspection ----------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def substitute(self, assignment: Mapping[str, Number]) -> "Term":
        coeffs: dict[str, Fraction] = {}
        constant = self.constant
        for v, c in self.coeffs.items():
            if v in assignment:
                constant += c * _frac(assignment[v])
            else:
                coeffs[v] = c
        return Term(coeffs, constant)

    def evaluate(self, assignment: Mapping[str, Number]) -> Fraction:
        t = self.substitute(assignment)
        if not t.is_constant():
            missing = sorted(t.coeffs)
            raise SolverError(f"unbound variables in evaluate: {missing}")
        return t.constant

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __hash__(self) -> int:
        return hash((frozenset(self.coeffs.items()), self.constant))

    def __repr__(self) -> str:
        parts = []
        for v in sorted(self.coeffs):
            c = self.coeffs[v]
            parts.append(f"{'+' if c >= 0 else '-'} {abs(c)}*{v}")
        if self.constant != 0 or not parts:
            parts.append(f"{'+' if self.constant >= 0 else '-'} {abs(self.constant)}")
        s = " ".join(parts)
        return s[2:] if s.startswith("+ ") else s


class Rel:
    """Relation tags for constraints normalised as ``term REL 0``."""

    LE = "<="
    LT = "<"
    EQ = "=="


@dataclass(frozen=True, slots=True)
class Constraint:
    """Atom ``term <= 0``, ``term < 0`` or ``term == 0``."""

    term: Term
    rel: str

    def negate(self) -> tuple["Constraint", ...]:
        """The negation, as a disjunction of atoms (EQ splits in two)."""
        if self.rel == Rel.LE:  # not(t <= 0)  ==  -t < 0
            return (Constraint(-self.term, Rel.LT),)
        if self.rel == Rel.LT:  # not(t < 0)  ==  -t <= 0
            return (Constraint(-self.term, Rel.LE),)
        # not(t == 0)  ==  t < 0 or -t < 0
        return (Constraint(self.term, Rel.LT), Constraint(-self.term, Rel.LT))

    def satisfied_by(self, assignment: Mapping[str, Number]) -> bool:
        v = self.term.evaluate(assignment)
        if self.rel == Rel.LE:
            return v <= 0
        if self.rel == Rel.LT:
            return v < 0
        return v == 0

    def variables(self) -> frozenset[str]:
        return self.term.variables()

    def __repr__(self) -> str:
        return f"({self.term!r} {self.rel} 0)"


def var(name: str) -> Term:
    """A fresh linear variable."""
    return Term({name: Fraction(1)}, 0)


def const(x: Number) -> Term:
    """A constant term."""
    return Term({}, x)
