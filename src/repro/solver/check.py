"""Program-level static causality check — the paper's SMT pass.

§4: "We use SMT solvers ... to check that each rule is consistent with
the programmer-supplied causality ordering. ... If the SMT solver
cannot prove one of these theorems, the relevant statement is marked
with a warning message, and the programmer is strongly recommended to
change the program."

:func:`check_program` walks every rule:

* rules carrying :class:`~repro.solver.obligations.RuleMeta` get their
  obligations generated and discharged;
* rules marked ``assume_stratified`` are recorded as accepted-by-
  programmer (the paper's workflow when the prover fails but manual
  reasoning justifies the rule);
* rules with no metadata are reported as unchecked.

``strict=True`` turns any unproved obligation into a
:class:`~repro.core.errors.StratificationError` — the hard failure the
paper shows for the PvWatts program when the ``order`` declaration is
omitted (§6.1: "a Stratification error would be displayed").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import StratificationError, StratificationWarning
from repro.core.program import Program
from repro.solver.obligations import (
    Invariant,
    Obligation,
    RuleMeta,
    generate_obligations,
)

__all__ = ["RuleFinding", "CheckReport", "check_program"]


@dataclass(slots=True)
class RuleFinding:
    """Per-rule outcome of the static pass."""

    rule: str
    status: str  # "proved" | "failed" | "assumed" | "unchecked"
    obligations: list[Obligation] = field(default_factory=list)

    @property
    def failed_obligations(self) -> list[Obligation]:
        return [o for o in self.obligations if not o.proved]


@dataclass(slots=True)
class CheckReport:
    """Whole-program result."""

    findings: list[RuleFinding]

    @property
    def all_proved(self) -> bool:
        return all(f.status in ("proved", "assumed") for f in self.findings)

    def by_status(self, status: str) -> list[RuleFinding]:
        return [f for f in self.findings if f.status == status]

    def summary(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f"{f.rule}: {f.status}")
            for o in f.failed_obligations:
                lines.append(f"  UNPROVED [{o.kind}] {o.description} — {o.reason}")
        return "\n".join(lines)


def check_program(
    program: Program,
    invariants: Mapping[str, Invariant] | None = None,
    strict: bool = False,
    prover: str | None = None,
) -> CheckReport:
    """Run the static causality pass over a program (see module doc).
    ``prover`` selects the decision procedure: "fourier-motzkin"
    (default), "simplex", or "cross-check" (§1.5's alternative SMT
    connections)."""
    program.freeze()
    findings: list[RuleFinding] = []
    for rule in program.rules:
        if isinstance(rule.meta, RuleMeta):
            obs = generate_obligations(
                rule.name, rule.meta, program.decls, invariants, prover=prover
            )
            unproved = [o for o in obs if not o.proved]
            if not unproved:
                findings.append(RuleFinding(rule.name, "proved", obs))
                continue
            if rule.assume_stratified:
                findings.append(RuleFinding(rule.name, "assumed", obs))
                continue
            findings.append(RuleFinding(rule.name, "failed", obs))
            msg = (
                f"rule {rule.name}: {len(unproved)} causality obligation(s) "
                f"unproved; first: {unproved[0].description} — {unproved[0].reason}"
            )
            if strict:
                raise StratificationError(msg)
            warnings.warn(msg, StratificationWarning, stacklevel=2)
        elif rule.assume_stratified:
            findings.append(RuleFinding(rule.name, "assumed"))
        else:
            findings.append(RuleFinding(rule.name, "unchecked"))
    return CheckReport(findings)
