"""SMT-style causality prover (§4's proof obligations).

Linear rational arithmetic via Fourier–Motzkin elimination
(:mod:`repro.solver.fourier`) plus the declared literal order, applied
to lexicographic timestamp comparisons
(:func:`~repro.solver.obligations.prove_lex_le`).  See DESIGN.md §2 for
why this replaces the paper's external SMT solvers soundly.
"""

from repro.solver.check import CheckReport, RuleFinding, check_program
from repro.solver.fourier import entails, entails_all, feasible
from repro.solver.lifetime import clock_field, suggest_retention
from repro.solver.provers import DEFAULT_PROVER, PROVERS, get_prover
from repro.solver.simplex import simplex_entails, simplex_feasible
from repro.solver.obligations import (
    Branch,
    Invariant,
    Obligation,
    RuleMeta,
    SymPut,
    SymQuery,
    generate_obligations,
    prove_lex_le,
    symbolic_timestamp,
)
from repro.solver.terms import Constraint, Rel, Term, const, var

__all__ = [
    "Term",
    "Constraint",
    "Rel",
    "var",
    "const",
    "feasible",
    "entails",
    "entails_all",
    "RuleMeta",
    "Branch",
    "SymPut",
    "SymQuery",
    "Invariant",
    "Obligation",
    "generate_obligations",
    "prove_lex_le",
    "symbolic_timestamp",
    "check_program",
    "suggest_retention",
    "clock_field",
    "PROVERS",
    "DEFAULT_PROVER",
    "get_prover",
    "simplex_feasible",
    "simplex_entails",
    "CheckReport",
    "RuleFinding",
]
