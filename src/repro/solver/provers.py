"""The prover registry — "several alternative SMT theorem provers" (§1.5).

Two independent decision procedures for the causality fragment are
registered:

* ``"fourier-motzkin"`` — quantifier elimination
  (:mod:`repro.solver.fourier`), the default;
* ``"simplex"`` — exact-rational two-phase simplex
  (:mod:`repro.solver.simplex`);
* ``"cross-check"`` — runs both and raises on disagreement (the
  belt-and-braces mode you want when the prover gates a language
  guarantee).

Both decide full linear rational arithmetic, so they must agree on
every input — a hypothesis test enforces it.  ``check_program`` and
``generate_obligations`` accept ``prover=`` to select one.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.errors import SolverError
from repro.solver.fourier import entails as fm_entails
from repro.solver.fourier import feasible as fm_feasible
from repro.solver.simplex import simplex_entails, simplex_feasible
from repro.solver.terms import Constraint

__all__ = ["EntailsFn", "FeasibleFn", "get_prover", "PROVERS", "DEFAULT_PROVER"]

EntailsFn = Callable[[Sequence[Constraint], Constraint], bool]
FeasibleFn = Callable[[Sequence[Constraint]], bool]

DEFAULT_PROVER = "fourier-motzkin"


def _cross_entails(hyps: Sequence[Constraint], concl: Constraint) -> bool:
    a = fm_entails(hyps, concl)
    b = simplex_entails(hyps, concl)
    if a != b:  # pragma: no cover - would be a prover bug
        raise SolverError(
            f"prover disagreement: fourier-motzkin={a} simplex={b} "
            f"on {list(hyps)} ⟹ {concl}"
        )
    return a


def _cross_feasible(atoms: Sequence[Constraint]) -> bool:
    a = fm_feasible(atoms)
    b = simplex_feasible(atoms)
    if a != b:  # pragma: no cover - would be a prover bug
        raise SolverError(
            f"prover disagreement: fourier-motzkin={a} simplex={b} on {list(atoms)}"
        )
    return a


PROVERS: dict[str, tuple[FeasibleFn, EntailsFn]] = {
    "fourier-motzkin": (fm_feasible, fm_entails),
    "simplex": (simplex_feasible, simplex_entails),
    "cross-check": (_cross_feasible, _cross_entails),
}


def get_prover(name: str | None = None) -> tuple[FeasibleFn, EntailsFn]:
    """(feasible, entails) for a registered prover name."""
    key = name or DEFAULT_PROVER
    try:
        return PROVERS[key]
    except KeyError:
        raise SolverError(
            f"unknown prover {key!r}; available: {sorted(PROVERS)}"
        ) from None
