"""An alternative decision procedure: exact-rational two-phase simplex.

§1.5: JStar has "a connection to several alternative Satisfiability
Modulo Theories (SMT) theorem provers".  The reproduction mirrors that
plurality: besides the Fourier–Motzkin core (:mod:`repro.solver.
fourier`), this module decides the same linear-arithmetic fragment with
a textbook two-phase simplex over exact :class:`~fractions.Fraction`
arithmetic, using Bland's rule throughout (no cycling, guaranteed
termination).  The prover registry (:mod:`repro.solver.provers`) can
run both and cross-check; a hypothesis test asserts they always agree.

Encoding.  Free variables split as ``x = x⁺ − x⁻`` (both ≥ 0);
equalities split into two inequalities; strict inequalities use the
ε-trick: ``{tᵢ < 0} ∪ {tⱼ ≤ 0}`` is satisfiable over ℚ iff

    max ε  s.t.  tᵢ + ε ≤ 0,  tⱼ ≤ 0,  0 ≤ ε ≤ 1

has optimum ε > 0 (a strict solution admits a uniform margin; capping
ε keeps the LP bounded).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.solver.terms import Constraint, Rel

__all__ = ["simplex_feasible", "simplex_entails", "maximize_leq"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _Tableau:
    """Equality-form tableau ``[B⁻¹A | B⁻¹b]`` with an explicit basis."""

    def __init__(self, rows: list[list[Fraction]], rhs: list[Fraction], basis: list[int]):
        self.rows = rows          # m x n
        self.rhs = rhs            # m
        self.basis = basis        # m basic column indices
        self.m = len(rows)
        self.n = len(rows[0]) if rows else 0

    def pivot(self, r: int, c: int) -> None:
        pv = self.rows[r][c]
        inv = _ONE / pv
        self.rows[r] = [v * inv for v in self.rows[r]]
        self.rhs[r] *= inv
        for i in range(self.m):
            if i != r:
                f = self.rows[i][c]
                if f != 0:
                    self.rows[i] = [
                        a - f * b for a, b in zip(self.rows[i], self.rows[r])
                    ]
                    self.rhs[i] -= f * self.rhs[r]
        self.basis[r] = c

    def reduced_costs(self, c_vec: list[Fraction]) -> tuple[list[Fraction], Fraction]:
        """Reduced costs ``c_j − c_B·(B⁻¹A)_j`` and objective value for
        maximisation of ``c·x`` at the current basic solution."""
        cb = [c_vec[b] for b in self.basis]
        red = list(c_vec)
        for i in range(self.m):
            if cb[i] != 0:
                for j in range(self.n):
                    red[j] -= cb[i] * self.rows[i][j]
        value = sum(cb[i] * self.rhs[i] for i in range(self.m))
        return red, value

    def maximize(self, c_vec: list[Fraction], banned: frozenset[int] = frozenset()):
        """Run simplex (Bland's rule) maximising ``c·x``; returns the
        optimum or None if unbounded."""
        while True:
            red, value = self.reduced_costs(c_vec)
            enter = None
            for j in range(self.n):
                if j not in banned and red[j] > 0:
                    enter = j  # Bland: smallest index
                    break
            if enter is None:
                return value
            leave, best = None, None
            for i in range(self.m):
                a = self.rows[i][enter]
                if a > 0:
                    ratio = self.rhs[i] / a
                    key = (ratio, self.basis[i])  # Bland tie-break
                    if best is None or key < best:
                        best, leave = key, i
            if leave is None:
                return None  # unbounded
            self.pivot(leave, enter)


def maximize_leq(
    objective: list[Fraction],
    a_rows: list[list[Fraction]],
    b: list[Fraction],
) -> Fraction | None:
    """``max objective·x`` s.t. ``a_rows·x ≤ b``, ``x ≥ 0``.

    Returns the optimum, None if unbounded, or raises ``ValueError`` if
    infeasible.
    """
    n = len(objective)
    m = len(a_rows)
    # equality form: A x + s = b, s >= 0; negate rows with b_i < 0 and
    # give them artificials (their slack enters with -1)
    n_art = sum(1 for v in b if v < 0)
    width = n + m + n_art
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    basis: list[int] = []
    art_cols: list[int] = []
    next_art = n + m
    for i in range(m):
        row = [_ZERO] * width
        neg = b[i] < 0
        sign = -_ONE if neg else _ONE
        for j in range(n):
            if a_rows[i][j] != 0:
                row[j] = sign * a_rows[i][j]
        row[n + i] = sign  # slack
        rows.append(row)
        rhs.append(sign * b[i])
        if neg:
            row[next_art] = _ONE
            basis.append(next_art)
            art_cols.append(next_art)
            next_art += 1
        else:
            basis.append(n + i)
    t = _Tableau(rows, rhs, basis)

    if art_cols:
        # phase 1: maximise -(sum of artificials)
        phase1 = [_ZERO] * width
        for c in art_cols:
            phase1[c] = -_ONE
        opt = t.maximize(phase1)
        if opt is None or opt < 0:
            raise ValueError("infeasible")
        # pivot any artificial still (degenerately) in the basis out
        banned = frozenset(art_cols)
        for i in range(t.m):
            if t.basis[i] in banned:
                enter = next(
                    (
                        j
                        for j in range(width)
                        if j not in banned and t.rows[i][j] != 0
                    ),
                    None,
                )
                if enter is not None:
                    t.pivot(i, enter)
        banned_final = banned
    else:
        banned_final = frozenset()

    obj = list(objective) + [_ZERO] * (width - n)
    return t.maximize(obj, banned=banned_final)


def simplex_feasible(atoms: Iterable[Constraint]) -> bool:
    """Satisfiability over ℚ of a conjunction of atoms (simplex)."""
    atoms = list(atoms)
    names = sorted({v for a in atoms for v in a.term.coeffs})
    idx = {v: i for i, v in enumerate(names)}
    n = 2 * len(names) + 1  # x+, x- pairs, then epsilon last
    eps = n - 1

    a_rows: list[list[Fraction]] = []
    b: list[Fraction] = []
    has_strict = False

    def add(coeffs, constant, strict: bool) -> None:
        row = [_ZERO] * n
        for v, c in coeffs.items():
            i = idx[v]
            row[2 * i] += Fraction(c)
            row[2 * i + 1] -= Fraction(c)
        if strict:
            row[eps] = _ONE
        a_rows.append(row)
        b.append(-Fraction(constant))

    for a in atoms:
        term = a.term
        if term.is_constant():
            v = term.constant
            if a.rel == Rel.LE and v > 0:
                return False
            if a.rel == Rel.LT and v >= 0:
                return False
            if a.rel == Rel.EQ and v != 0:
                return False
            continue
        if a.rel == Rel.EQ:
            add(term.coeffs, term.constant, strict=False)
            add({v: -c for v, c in term.coeffs.items()}, -term.constant, strict=False)
        else:
            strict = a.rel == Rel.LT
            has_strict = has_strict or strict
            add(term.coeffs, term.constant, strict=strict)
    if not a_rows:
        return True
    # 0 <= eps <= 1
    bound = [_ZERO] * n
    bound[eps] = _ONE
    a_rows.append(bound)
    b.append(_ONE)

    objective = [_ZERO] * n
    objective[eps] = _ONE
    try:
        opt = maximize_leq(objective, a_rows, b)
    except ValueError:
        return False
    if opt is None:  # bounded by construction; defensive
        return True
    return opt > 0 if has_strict else True


def simplex_entails(hypotheses: Sequence[Constraint], conclusion: Constraint) -> bool:
    """``⋀hypotheses ⟹ conclusion`` via refutation with simplex."""
    return all(
        not simplex_feasible(list(hypotheses) + [neg])
        for neg in conclusion.negate()
    )
