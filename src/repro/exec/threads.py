"""Real-threads strategy — functional validation of parallel safety.

The GIL makes CPython threads useless for CPU speedup (why the
fork/join strategy is *simulated*, DESIGN.md §2), but they are very
useful for a different purpose: genuinely interleaving rule firings to
validate that the engine's step protocol is safe under concurrency —
Gamma is read-only while a batch fires, effects are buffered per task,
and application order is deterministic.  Integration tests run every
case study under this strategy and assert byte-identical output with
the sequential strategy.

No virtual-time account is kept (``report()`` is ``None``); only wall
time, which the engine records anyway.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.exec.base import EngineTask, Strategy, TaskResult

__all__ = ["ThreadStrategy"]


class ThreadStrategy(Strategy):
    name = "threads"
    concurrent_stores = True
    needs_locks = True

    def __init__(self, pool_size: int = 4):
        if pool_size < 1:
            raise ValueError("thread pool needs at least one thread")
        self.n_threads = pool_size
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="jstar"
        )

    def run_batch(self, tasks: Sequence[EngineTask]) -> list[TaskResult]:
        if self._pool is None:
            raise RuntimeError("strategy already closed")
        if len(tasks) == 1:
            return [tasks[0].run()]
        # map() preserves submission order in its results, which is all
        # the engine needs for deterministic effect application.
        return list(self._pool.map(lambda t: t.run(), tasks))

    def account_step(
        self,
        results: Sequence[TaskResult],
        allocations: float,
        retained: float,
    ) -> None:
        pass  # wall-clock only

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
