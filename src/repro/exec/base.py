"""Execution-strategy interface.

§5: "The compiler generates parallel Java code and data structures by
default, or can generate sequential code and data structures if the
``-sequential`` compiler flag is supplied."  Here the same choice is a
runtime *strategy* object, and — true to the language's promise — the
choice can only change *time*, never results.

A strategy decides three things:

1. whether default Gamma stores are the sequential or the concurrent
   variants (``concurrent_stores``);
2. how a step's task batch is *executed* (``run_batch``) — every
   built-in strategy except :class:`~repro.exec.threads.ThreadStrategy`
   runs bodies sequentially in deterministic order, because virtual
   time is accounted separately from real execution;
3. how the batch is *accounted* (``account_step``) — the virtual-time
   machine for the fork/join simulator, a plain sum for sequential.

``TaskResult`` order always equals submission order, so effect
application is deterministic regardless of strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.tuples import JTuple
from repro.exec.metering import CostMeter
from repro.simcore.machine import MachineReport

__all__ = ["TaskResult", "EngineTask", "Strategy"]


@dataclass(slots=True)
class TaskResult:
    """Outcome of executing one tuple-task."""

    trigger: JTuple
    puts: list[JTuple] = field(default_factory=list)
    output: list[str] = field(default_factory=list)
    meter: CostMeter = field(default_factory=CostMeter)
    fired_rules: list[str] = field(default_factory=list)
    duplicate: bool = False  # tuple was already in Gamma; nothing fired
    #: per-task trace micro events (kind, data), buffered here so the
    #: engine can flush them in submission order — a globally shared
    #: recorder would interleave nondeterministically under real threads
    events: list[tuple[str, dict]] = field(default_factory=list)
    #: per-task firing records (retraction mode only): one
    #: :class:`~repro.core.support.FiringRecord` per rule fired, buffered
    #: like ``events`` so registration happens in submission order — and
    #: so records of faulted/duplicate results are discarded with them
    firings: list = field(default_factory=list)
    #: deterministic sort keys parallel to ``output`` (non-retraction
    #: mode): (trigger ts key, trigger tie-break, rule index, line index).
    #: The engine sorts each step's lines by this key so output order is
    #: a pure function of the firing set — identical to the keyed order
    #: retraction mode maintains — instead of depending on the pop order
    #: within an equivalence class
    out_keys: list = field(default_factory=list)


@dataclass(slots=True)
class EngineTask:
    """One schedulable unit: a tuple plus the closure that processes it
    (Gamma insertion + firing every triggered rule).  §5.2: "Even if a
    tuple triggers more than one rule, we create only one task for that
    tuple"."""

    trigger: JTuple
    run: Callable[[], TaskResult]


class Strategy(ABC):
    """One way of executing and accounting all-minimums step batches."""

    #: diagnostic name ("sequential", "forkjoin", "threads")
    name: str = "abstract"
    #: True -> Database defaults to concurrent store variants
    concurrent_stores: bool = False
    #: worker count (1 for sequential)
    n_threads: int = 1
    #: True -> engine must guard shared mutation with a real lock
    needs_locks: bool = False
    #: True -> this strategy consumes per-task CostMeters (a virtual
    #: -time machine); the engine forces metering on even when the run
    #: asked for ``metering="off"``
    requires_metering: bool = False
    #: optional hook the engine installs into every RuleContext: called
    #: at each put/query boundary inside a rule body.  The chaos
    #: strategy uses it to interleave and fault task bodies; every other
    #: strategy leaves it None (zero overhead).
    yield_point: Callable[[], None] | None = None

    def bind(self, tracer=None, stats=None) -> None:
        """Attach the run's trace recorder / stats collector.  Base
        strategies ignore both; the chaos strategy records scheduling
        decisions and fault counters through them."""

    @abstractmethod
    def run_batch(self, tasks: Sequence[EngineTask]) -> list[TaskResult]:
        """Execute a batch; results in submission order."""

    @abstractmethod
    def account_step(
        self,
        results: Sequence[TaskResult],
        allocations: float,
        retained: float,
    ) -> None:
        """Advance virtual time for one completed step."""

    def account_serial(self, cost: float) -> None:
        """Account inherently sequential work (e.g. initial puts)."""

    def report(self) -> MachineReport | None:
        """Virtual-time report, if this strategy keeps one."""
        return None

    def close(self) -> None:
        """Release pools/threads.  Must be idempotent: sessions close
        strategies through try/finally paths that can run twice."""

    # -- context-manager protocol -------------------------------------------

    def __enter__(self) -> "Strategy":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- checkpoint hooks ----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable resumable state (RNG cursors, virtual-time
        accounts).  Strategies without such state return ``{}``."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore what :meth:`state_dict` captured.  Default no-op."""
