"""Cost metering: the bridge between real execution and virtual time.

Every run of a JStar program *really executes* the rule bodies (so all
outputs are exact and deterministic), while a :class:`CostMeter`
records the abstract work each task performed: tuples created, Delta
and Gamma operations, query results, reducer steps, and explicit
``ctx.charge`` work for numeric inner loops.  The simulated fork/join
machine (:mod:`repro.simcore`) then schedules those per-task costs onto
*N* virtual cores.

Two ledgers per meter:

* ``costs[counter]`` — work units per named counter (also ``counters``
  with raw op counts);
* ``shared[resource]`` — work units that must *serialise* on a named
  shared resource (the Delta tree, a concurrent Gamma table, memory
  bandwidth).  These are the paper's scalability villains: "the inner
  loop of the program puts several million Estimate tuples through the
  Delta tree, which is still not sufficiently scalable" (§6.5).

Costs for store operations come from each store's
:class:`~repro.gamma.base.CostProfile`; everything else uses
:data:`DEFAULT_WEIGHTS`.  All constants are calibrated in one place —
see :mod:`repro.simcore.contention` for the machine-level ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gamma.base import PreparedSelect, TableStore

__all__ = ["DEFAULT_WEIGHTS", "CostMeter", "NullMeter", "NULL_METER"]

#: Work units charged per op for non-store counters.
DEFAULT_WEIGHTS: dict[str, float] = {
    "tuple_put": 1.0,      # a rule issuing put (allocation + handoff)
    "delta_insert": 7.0,   # insertion into the Delta tree (calibrated to the paper's §6.2 noDelta effect)
    "delta_pop": 5.5,      # removal of one tuple from the Delta tree
    "rule_fire": 0.5,      # dispatch overhead of firing a rule
    "gamma_query": 1.0,    # base cost of issuing a query
    "gamma_batchselect": 0.7,  # one bulk-prefetched query (columnar phase B)
    "reduce_op": 0.3,      # one reducer step
    "user_work": 1.0,      # explicit ctx.charge (cost given by caller)
    "csv_parse": 0.6,      # parsing one CSV record (byte-level reader)
    "csv_parse_slow": 1.4, # parsing via split/str (baseline style)
    "task_spawn": 0.8,     # fork/join task creation overhead
    "io_record": 0.2,      # reading one record's bytes
}


class CostMeter:
    """Accumulates abstract work, split by counter and shared resource."""

    __slots__ = ("counters", "costs", "shared", "total_cost", "splittable")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.costs: dict[str, float] = {}
        self.shared: dict[str, float] = {}
        self.total_cost: float = 0.0
        #: (cost, chunks) slices of this task's work that an in-rule
        #: parallel loop could divide across cores (§5.2's reducer-tree
        #: extension); the fork/join account fans these out
        self.splittable: list[tuple[float, int]] = []

    # -- charging ---------------------------------------------------------

    def charge(self, counter: str, n: int = 1, cost: float | None = None) -> None:
        """Charge ``n`` ops on ``counter``; total cost defaults to
        ``n * DEFAULT_WEIGHTS[counter]`` (``cost`` overrides, already
        multiplied)."""
        if cost is None:
            cost = n * DEFAULT_WEIGHTS.get(counter, 1.0)
        self.counters[counter] = self.counters.get(counter, 0) + n
        self.costs[counter] = self.costs.get(counter, 0.0) + cost
        self.total_cost += cost

    def charge_shared(self, resource: str, cost: float) -> None:
        """Mark ``cost`` work units as serialising on ``resource``."""
        if cost:
            self.shared[resource] = self.shared.get(resource, 0.0) + cost

    def charge_parallel(self, cost: float, chunks: int, counter: str = "par_loop") -> None:
        """Charge ``cost`` of work that is divisible into ``chunks``
        independent pieces (an in-rule parallel loop, §5.2)."""
        self.charge(counter, n=1, cost=cost)
        if chunks > 1 and cost > 0:
            self.splittable.append((cost, chunks))

    def charge_store_op(self, op: str, store: "TableStore", n: int = 1) -> None:
        """Charge a Gamma store operation using its cost profile and
        route the serialisable fraction to the store's resource."""
        profile = store.cost
        per = {
            "insert": profile.insert_cost,
            "lookup": profile.lookup_cost,
            "result": profile.result_cost,
        }[op]
        cost = per * n
        counter = f"gamma_{op}:{store.schema.name}"
        self.counters[counter] = self.counters.get(counter, 0) + n
        self.costs[counter] = self.costs.get(counter, 0.0) + cost
        self.total_cost += cost
        if profile.resource is not None and profile.serial_fraction > 0.0:
            self.charge_shared(profile.resource, cost * profile.serial_fraction)

    def charge_lookup(self, store: "TableStore", query) -> None:
        """Charge one select against a store, letting the store price
        the query (:meth:`~repro.gamma.base.TableStore.lookup_cost_for`).
        For plain stores this is exactly ``charge_store_op("lookup")``;
        index-aware stores charge a cheaper ``gamma_ixlookup:`` counter
        for queries an index serves."""
        profile = store.cost
        cost, tag = store.lookup_cost_for(query)
        counter = f"gamma_{tag}:{store.schema.name}"
        self.counters[counter] = self.counters.get(counter, 0) + 1
        self.costs[counter] = self.costs.get(counter, 0.0) + cost
        self.total_cost += cost
        if profile.resource is not None and profile.serial_fraction > 0.0:
            self.charge_shared(profile.resource, cost * profile.serial_fraction)

    def charge_planned(self, ps: "PreparedSelect", n_results: int) -> None:
        """Charge one select served through a compiled plan.  Ledger
        effects are exactly ``charge_lookup(store, query)`` followed by
        ``charge_store_op("result", store, n_results)`` (when results
        were yielded) — the costs, counters, and shared fractions were
        precomputed per shape on the :class:`~repro.gamma.base.PreparedSelect`."""
        counters = self.counters
        costs = self.costs
        counter = ps.lookup_counter
        counters[counter] = counters.get(counter, 0) + 1
        costs[counter] = costs.get(counter, 0.0) + ps.lookup_cost
        self.total_cost += ps.lookup_cost
        if ps.lookup_shared:
            self.shared[ps.resource] = (
                self.shared.get(ps.resource, 0.0) + ps.lookup_shared
            )
        if n_results:
            cost = ps.result_cost * n_results
            counter = ps.result_counter
            counters[counter] = counters.get(counter, 0) + n_results
            costs[counter] = costs.get(counter, 0.0) + cost
            self.total_cost += cost
            shared = ps.result_shared * n_results
            if shared:
                self.shared[ps.resource] = self.shared.get(ps.resource, 0.0) + shared

    def charge_query(self, table_name: str, n_results: int) -> None:
        """Base query dispatch + per-result cost (store-agnostic share;
        store-specific result costs are added by the engine where it
        has the store in hand)."""
        self.charge("gamma_query")
        if n_results:
            self.charge("query_result", n=n_results, cost=0.25 * n_results)

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "CostMeter") -> None:
        self.splittable.extend(other.splittable)
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        for k, v in other.costs.items():
            self.costs[k] = self.costs.get(k, 0.0) + v
        for k, v in other.shared.items():
            self.shared[k] = self.shared.get(k, 0.0) + v
        self.total_cost += other.total_cost

    def reset(self) -> None:
        self.counters.clear()
        self.costs.clear()
        self.shared.clear()
        self.splittable.clear()
        self.total_cost = 0.0

    # -- checkpointing --------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable form, for session snapshots."""
        return {
            "counters": dict(self.counters),
            "costs": dict(self.costs),
            "shared": dict(self.shared),
            "total_cost": self.total_cost,
            "splittable": [[c, n] for c, n in self.splittable],
        }

    def load_state(self, state: dict) -> None:
        self.counters = {str(k): int(v) for k, v in state.get("counters", {}).items()}
        self.costs = {str(k): float(v) for k, v in state.get("costs", {}).items()}
        self.shared = {str(k): float(v) for k, v in state.get("shared", {}).items()}
        self.total_cost = float(state.get("total_cost", 0.0))
        self.splittable = [
            (float(c), int(n)) for c, n in state.get("splittable", [])
        ]

    # -- reporting ----------------------------------------------------------

    def cost_by_prefix(self, prefix: str) -> float:
        """Sum of costs whose counter name starts with ``prefix`` —
        used for the §6.3 phase breakdown."""
        return sum(c for name, c in self.costs.items() if name.startswith(prefix))

    def count(self, counter: str) -> int:
        return self.counters.get(counter, 0)

    def __repr__(self) -> str:
        return (
            f"CostMeter(total={self.total_cost:.1f}, "
            f"counters={len(self.counters)}, shared={list(self.shared)})"
        )


class NullMeter(CostMeter):
    """The ``metering="off"`` meter: every charge is a no-op, so the
    hot path spends zero time on cost dict traffic.  The ledgers stay
    empty (``total_cost == 0.0``), which is visible — and documented —
    in ``RunResult.meter`` / ``virtual_time`` for unmetered runs.
    Strategies that *consume* meters (the fork/join virtual machine)
    declare :attr:`~repro.exec.base.Strategy.requires_metering`, and
    the engine forces metering back on for them.
    """

    __slots__ = ()

    def charge(self, counter: str, n: int = 1, cost: float | None = None) -> None:
        pass

    def charge_shared(self, resource: str, cost: float) -> None:
        pass

    def charge_parallel(self, cost: float, chunks: int, counter: str = "par_loop") -> None:
        pass

    def charge_store_op(self, op: str, store: "TableStore", n: int = 1) -> None:
        pass

    def charge_lookup(self, store: "TableStore", query) -> None:
        pass

    def charge_planned(self, ps: "PreparedSelect", n_results: int) -> None:
        pass

    def charge_query(self, table_name: str, n_results: int) -> None:
        pass

    def merge(self, other: CostMeter) -> None:
        pass


#: shared instance — a NullMeter has no state, so every unmetered task
#: can use the same one (no per-task allocation at all)
NULL_METER = NullMeter()
