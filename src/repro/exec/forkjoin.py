"""The simulated fork/join all-minimums strategy (the paper's default).

"Our current implementation uses a very simple parallelisation strategy
built on top of the Java 7 Fork/Join framework.  It treats the Delta
set as an event queue, ordered by the causality ordering.  At each
execution step, it takes all minimal tuples out of the Delta set, and
executes all those tuples in parallel." (§5)

Here the *effects* of each task are computed sequentially in
deterministic order (so program output is bit-identical to the
sequential strategy — the determinism guarantee of §1.3), while the
*time* each task took is replayed on an N-core virtual machine with
the calibrated contention and GC models (see DESIGN.md §2 for why this
substitution is sound on a GIL-bound single-core host).

``pool_size`` is the paper's ``--threads=N`` runtime flag.
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.base import EngineTask, Strategy, TaskResult
from repro.simcore.contention import CalibratedCosts
from repro.simcore.gc import GcModel
from repro.simcore.machine import Machine, MachineReport
from repro.simcore.task import SimTask

__all__ = ["ForkJoinStrategy"]


class ForkJoinStrategy(Strategy):
    name = "forkjoin"
    concurrent_stores = True
    # the virtual machine schedules each task's metered cost onto its
    # cores — without meters there is nothing to simulate
    requires_metering = True

    def __init__(
        self,
        pool_size: int,
        calib: CalibratedCosts | None = None,
        gc: GcModel | None = None,
    ):
        if pool_size < 1:
            raise ValueError("fork/join pool needs at least one thread")
        self.n_threads = pool_size
        self._machine = Machine(
            n_cores=pool_size,
            calib=calib if calib is not None else CalibratedCosts(),
            gc=gc if gc is not None else GcModel(),
        )

    def run_batch(self, tasks: Sequence[EngineTask]) -> list[TaskResult]:
        # Real execution stays sequential and deterministic; parallelism
        # exists only in the virtual-time account.
        return [t.run() for t in tasks]

    def account_step(
        self,
        results: Sequence[TaskResult],
        allocations: float,
        retained: float,
    ) -> None:
        sim: list[SimTask] = []
        for r in results:
            m = r.meter
            divisible = sum(c for c, _ in m.splittable)
            sim.append(
                SimTask(
                    max(0.0, m.total_cost - divisible),
                    dict(m.shared),
                    label=repr(r.trigger),
                )
            )
            # §5.2 in-rule parallel loops: fan each divisible slice out
            # as chunk tasks inside the same step (the step's join
            # barrier approximates the loop's own join)
            for cost, chunks in m.splittable:
                per = cost / chunks
                sim.extend(SimTask(per) for _ in range(chunks))
        self._machine.run_step(sim, allocations=allocations, retained=retained)

    def account_serial(self, cost: float) -> None:
        self._machine.run_serial(cost)

    def report(self) -> MachineReport:
        return self._machine.report

    def state_dict(self) -> dict:
        from repro.exec.sequential import _report_state

        return {"machine": _report_state(self._machine.report)}

    def load_state(self, state: dict) -> None:
        from repro.exec.sequential import _load_report_state

        if state:
            _load_report_state(self._machine.report, state.get("machine", {}))

    @property
    def machine(self) -> Machine:
        return self._machine
