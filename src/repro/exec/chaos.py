"""The chaos strategy: adversarial schedule fuzzing for the §1.3 contract.

Every built-in strategy promises that schedule changes *time but never
results*, because the all-minimums step protocol keeps Gamma read-only
while a batch fires and applies buffered effects in deterministic task
order.  :class:`ChaosStrategy` attacks that protocol on purpose, with a
seeded RNG so every attack is reproducible:

* **order permutation** — each batch executes in a random order (results
  are still returned in submission order, which is the contract);
* **interleaving** — task bodies run on cooperative threads that hand
  control back at every ``put``/query boundary, and the scheduler picks
  which task advances next at random, so rule bodies genuinely
  interleave at effect granularity (at most one body runs at a time, so
  no real data race is introduced — only every *schedule* the protocol
  claims to tolerate);
* **fault injection** (:class:`FaultPlan`) — tasks raise mid-body and
  are redelivered from scratch, completed tasks are spuriously delivered
  a second time, and tasks are delayed behind the rest of their batch.

A run under ``ChaosStrategy`` must be byte-identical to the sequential
baseline; ``tests/chaos`` asserts exactly that over a seed matrix.  The
strategy records every scheduling decision (through the engine's trace
recorder, when tracing is on) so a failing seed can be replayed exactly
by :class:`repro.trace.replay.TraceReplayer`, and the deliberately
broken ``completion_order_effects`` variant — effects applied in
arrival order, the classic unsound "optimisation" — exists so the test
harness can prove it would catch a real violation.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.errors import EngineError
from repro.exec.base import EngineTask, Strategy, TaskResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.replay import ReplaySchedule

__all__ = ["ChaosFault", "FaultPlan", "ChaosStrategy", "DEFAULT_INTERLEAVE_CAP"]

#: batches wider than this run permuted-sequentially instead of on
#: cooperative threads (one thread per task would be wasteful for the
#: thousand-tuple init batches of the CSV workloads)
DEFAULT_INTERLEAVE_CAP = 16

#: a raise-fault triggers at the task's k-th put/query boundary,
#: k drawn uniformly from [1, _MAX_FAULT_POINT]
_MAX_FAULT_POINT = 3


class ChaosFault(Exception):
    """Injected mid-task failure; the strategy redelivers the task."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-task fault probabilities for one chaos run.

    ``raise_prob``      task raises :class:`ChaosFault` at a random
                        put/query boundary and is re-run from scratch —
                        tests that a half-executed body leaks no effects
                        (all effects are buffered on the discarded
                        :class:`~repro.exec.base.TaskResult`);
    ``duplicate_prob``  the task is delivered a second time after it
                        completed and the duplicate's result discarded —
                        tests Gamma's set semantics end to end;
    ``delay_prob``      the task executes only after every other task of
                        its batch finished — tests that in-batch
                        completion order carries no meaning.

    At most one fault is assigned per task (a single uniform draw
    against the cumulative probabilities), so the probabilities must sum
    to at most 1.
    """

    raise_prob: float = 0.0
    duplicate_prob: float = 0.0
    delay_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("raise_prob", "duplicate_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise EngineError(f"fault plan {name} must be in [0, 1], got {p}")
        if self.raise_prob + self.duplicate_prob + self.delay_prob > 1.0 + 1e-9:
            raise EngineError("fault plan probabilities must sum to at most 1")

    @property
    def enabled(self) -> bool:
        return self.raise_prob > 0 or self.duplicate_prob > 0 or self.delay_prob > 0

    def to_dict(self) -> dict[str, float]:
        return {
            "raise_prob": self.raise_prob,
            "duplicate_prob": self.duplicate_prob,
            "delay_prob": self.delay_prob,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        return cls(
            raise_prob=float(d.get("raise_prob", 0.0)),
            duplicate_prob=float(d.get("duplicate_prob", 0.0)),
            delay_prob=float(d.get("delay_prob", 0.0)),
        )


class _TaskState:
    """Book-keeping for one task under chaos control."""

    __slots__ = (
        "index", "task", "result", "thread", "done", "paused", "resume",
        "yields", "fault_kind", "fault_at", "faulted", "error", "interleaved",
    )

    def __init__(self, index: int, task: EngineTask):
        self.index = index
        self.task = task
        self.result: TaskResult | None = None
        self.thread: threading.Thread | None = None
        self.done = False
        self.paused = False
        self.resume = False
        self.yields = 0
        self.fault_kind: str | None = None
        self.fault_at: int | None = None
        self.faulted = False
        self.error: BaseException | None = None
        self.interleaved = False


class _Gate:
    """Cooperative scheduler core: at most one task body runs between
    yield points; :meth:`yield_point` is installed as the strategy's
    ``yield_point`` hook and called by every ``RuleContext`` put/query.
    Calls from threads that are not chaos-controlled (engine init puts,
    other strategies) are no-ops."""

    def __init__(self) -> None:
        self.cv = threading.Condition()
        self._local = threading.local()

    def current(self) -> _TaskState | None:
        return getattr(self._local, "state", None)

    def run_inline(self, state: _TaskState, fn: Callable[[], TaskResult]) -> TaskResult:
        """Run ``fn`` on the calling thread with ``state`` installed so
        yield points see it (permuted-sequential mode, duplicate
        deliveries)."""
        prev = self.current()
        self._local.state = state
        try:
            return fn()
        finally:
            self._local.state = prev

    def adopt(self, state: _TaskState) -> None:
        """Install ``state`` on the calling worker thread."""
        self._local.state = state

    def yield_point(self) -> None:
        state = self.current()
        if state is None:
            return
        state.yields += 1
        if (
            state.fault_kind == "raise"
            and not state.faulted
            and state.fault_at is not None
            and state.yields >= state.fault_at
        ):
            state.faulted = True
            raise ChaosFault(
                f"injected fault in task {state.index} at boundary {state.yields}"
            )
        if not state.interleaved:
            return
        with self.cv:
            state.paused = True
            self.cv.notify_all()
            while not state.resume:
                self.cv.wait()
            state.resume = False
            state.paused = False


class ChaosStrategy(Strategy):
    """Seeded adversarial scheduling; see module docstring.

    ``script`` replays the recorded decisions of an earlier traced run
    instead of drawing fresh ones (see
    :class:`repro.trace.replay.ReplaySchedule`);
    ``completion_order_effects`` is the intentionally-broken variant
    that returns results in completion order — it exists solely so the
    chaos harness can demonstrate it *catches* an engine that applies
    effects in arrival order.
    """

    name = "chaos"
    concurrent_stores = False
    needs_locks = False
    n_threads = 1

    def __init__(
        self,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        interleave_cap: int = DEFAULT_INTERLEAVE_CAP,
        completion_order_effects: bool = False,
        script: "ReplaySchedule | None" = None,
    ):
        self.seed = seed
        self._rng = random.Random(seed)
        self.fault_plan = fault_plan or FaultPlan()
        self._cap = max(1, interleave_cap)
        self._broken = completion_order_effects
        self._script = script
        self._gate = _Gate()
        self.yield_point = self._gate.yield_point
        self._tracer: Any = None
        self._stats: Any = None
        self._batch_no = 0
        #: triggered-fault counters for the whole run
        self.fault_counts: dict[str, int] = {}

    # -- engine hookup ------------------------------------------------------

    def bind(self, tracer: Any = None, stats: Any = None) -> None:
        self._tracer = tracer
        self._stats = stats

    def state_dict(self) -> dict:
        """Checkpoint the schedule RNG mid-stream so a restored session
        draws the *continuation* of this run's decision sequence — the
        same decisions an uninterrupted run would have drawn."""
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "batch_no": self._batch_no,
            "fault_counts": dict(self.fault_counts),
        }

    def load_state(self, state: dict) -> None:
        if not state:
            return
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(int(x) for x in internal), gauss))
        self._batch_no = int(state["batch_no"])
        self.fault_counts.update(
            {str(k): int(v) for k, v in state.get("fault_counts", {}).items()}
        )

    def _count_fault(self, kind: str, task_index: int) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self._stats is not None:
            self._stats.on_fault(kind)
        if self._tracer is not None:
            self._tracer.emit(
                "fault", {"fault": kind, "task": task_index, "batch": self._batch_no},
                meta=True,
            )

    # -- decision drawing ---------------------------------------------------

    def _draw_decisions(
        self, n: int
    ) -> tuple[str, list[int], dict[int, str], dict[int, int]]:
        """(mode, execution order, fault assignment, raise points) for
        one batch — either fresh from the RNG or from the replay script."""
        if self._script is not None:
            return self._script.decisions_for(self._batch_no, n)
        mode = "interleave" if 1 < n <= self._cap else "seq"
        order = list(range(n))
        self._rng.shuffle(order)
        faults: dict[int, str] = {}
        fault_points: dict[int, int] = {}
        plan = self.fault_plan
        if plan.enabled:
            for i in range(n):
                r = self._rng.random()
                if r < plan.raise_prob:
                    faults[i] = "raise"
                    fault_points[i] = self._rng.randint(1, _MAX_FAULT_POINT)
                elif r < plan.raise_prob + plan.duplicate_prob:
                    faults[i] = "duplicate"
                elif r < plan.raise_prob + plan.duplicate_prob + plan.delay_prob:
                    faults[i] = "delay"
        return mode, order, faults, fault_points

    # -- execution ----------------------------------------------------------

    def run_batch(self, tasks: Sequence[EngineTask]) -> list[TaskResult]:
        self._batch_no += 1
        n = len(tasks)
        if n == 0:
            return []
        mode, order, faults, fault_points = self._draw_decisions(n)
        states = [_TaskState(i, t) for i, t in enumerate(tasks)]
        for i, kind in faults.items():
            states[i].fault_kind = kind
            if kind == "raise":
                states[i].fault_at = fault_points.get(i, 1)

        if mode == "interleave":
            picks, completion = self._run_interleaved(states)
        else:
            picks, completion = self._run_sequential(states, order)

        # spurious duplicate deliveries: re-run after the batch, discard
        # the result — set semantics must absorb the redelivery
        for s in states:
            if s.fault_kind == "duplicate":
                dup = _TaskState(s.index, s.task)
                self._gate.run_inline(dup, s.task.run)
                self._count_fault("duplicate", s.index)

        if self._tracer is not None:
            self._tracer.emit(
                "sched",
                {
                    "batch": self._batch_no,
                    "mode": mode,
                    "n": n,
                    "order": list(order),
                    "picks": list(picks),
                    "faults": {str(i): k for i, k in sorted(faults.items())},
                    "fault_points": {str(i): p for i, p in sorted(fault_points.items())},
                },
                meta=True,
            )

        for s in states:
            assert s.result is not None
        if self._broken:
            # UNSOUND on purpose: hand effects back in arrival order
            return [states[i].result for i in completion]  # type: ignore[misc]
        return [s.result for s in states]  # type: ignore[misc]

    def _run_with_redelivery(self, state: _TaskState) -> TaskResult:
        """Run one task; an injected :class:`ChaosFault` discards the
        partial result (and everything buffered on it) and re-runs the
        task from scratch, like a work-stealing pool redelivering after
        a worker died."""
        while True:
            try:
                return state.task.run()
            except ChaosFault:
                self._count_fault("raise", state.index)
                # state.faulted stays True: the redelivery runs clean

    def _run_sequential(
        self, states: list[_TaskState], order: list[int]
    ) -> tuple[list[int], list[int]]:
        """Permuted-sequential execution: every task runs to completion,
        delayed tasks are pushed behind the rest of the batch."""
        prompt = [i for i in order if states[i].fault_kind != "delay"]
        delayed = [i for i in order if states[i].fault_kind == "delay"]
        completion: list[int] = []
        for i in prompt + delayed:
            state = states[i]
            if state.fault_kind == "delay":
                self._count_fault("delay", state.index)
            state.result = self._gate.run_inline(
                state, lambda s=state: self._run_with_redelivery(s)
            )
            completion.append(i)
        return [], completion

    def _run_interleaved(
        self, states: list[_TaskState]
    ) -> tuple[list[int], list[int]]:
        """Cooperative-thread execution: the scheduler repeatedly picks
        one runnable task and advances it to its next put/query boundary
        (or completion).  Exactly one body runs at any moment."""
        gate = self._gate
        script_picks = (
            self._script.picks_for(self._batch_no) if self._script is not None else None
        )
        pick_cursor = 0

        def worker(state: _TaskState) -> None:
            gate.adopt(state)
            with gate.cv:
                while not state.resume:
                    gate.cv.wait()
                state.resume = False
            try:
                state.result = self._run_with_redelivery(state)
            except BaseException as exc:  # noqa: BLE001 — reported to the caller
                state.error = exc
            finally:
                with gate.cv:
                    state.done = True
                    gate.cv.notify_all()

        for state in states:
            state.interleaved = True
            state.thread = threading.Thread(
                target=worker, args=(state,), name=f"chaos-{state.index}", daemon=True
            )
            state.thread.start()

        picks: list[int] = []
        completion: list[int] = []
        known_done = [False] * len(states)
        while True:
            with gate.cv:
                for s in states:
                    if s.done and not known_done[s.index]:
                        known_done[s.index] = True
                        completion.append(s.index)
                unfinished = [s for s in states if not s.done]
                if not unfinished:
                    break
                runnable = [s for s in unfinished if s.fault_kind != "delay"]
                if not runnable:
                    # only delayed tasks remain: release them now
                    for s in unfinished:
                        self._count_fault("delay", s.index)
                        s.fault_kind = None
                    runnable = unfinished
            if script_picks is not None:
                if pick_cursor >= len(script_picks):
                    raise EngineError(
                        f"replay schedule exhausted in batch {self._batch_no}: "
                        "the replayed program diverged from the recording"
                    )
                idx = script_picks[pick_cursor]
                pick_cursor += 1
                state = states[idx]
                if state.done or state not in runnable:
                    raise EngineError(
                        f"replay schedule picked task {idx} in batch "
                        f"{self._batch_no} but it is not runnable — the "
                        "replayed program diverged from the recording"
                    )
            else:
                state = runnable[self._rng.randrange(len(runnable))]
            picks.append(state.index)
            with gate.cv:
                state.resume = True
                gate.cv.notify_all()
                # wait until the worker is *parked again*: done, or paused
                # with the resume flag consumed.  Checking ``paused`` alone
                # would race the worker still waking from its previous
                # pause (stale ``paused=True``) and could release a second
                # task concurrently.
                while not (state.done or (state.paused and not state.resume)):
                    gate.cv.wait()
        for state in states:
            assert state.thread is not None
            state.thread.join()
            if state.error is not None:
                raise state.error
        return picks, completion

    # -- accounting ---------------------------------------------------------

    def account_step(
        self,
        results: Sequence[TaskResult],
        allocations: float,
        retained: float,
    ) -> None:
        pass  # chaos runs validate semantics, not virtual time
