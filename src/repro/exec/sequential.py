"""The ``-sequential`` strategy.

Runs every task in submission order with sequential Gamma stores and a
one-core virtual machine: no spawn/barrier overhead, no contention, no
concurrent-structure premium — the baseline against which *absolute*
speedup is defined (§6.2 footnote 11: "absolute speedup is relative to
the fastest sequential or single-threaded parallel version").
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.base import EngineTask, Strategy, TaskResult
from repro.simcore.contention import CalibratedCosts
from repro.simcore.gc import GcModel
from repro.simcore.machine import Machine, MachineReport
from repro.simcore.task import SimTask

__all__ = ["SequentialStrategy"]


class SequentialStrategy(Strategy):
    name = "sequential"
    concurrent_stores = False
    n_threads = 1

    def __init__(self, gc: GcModel | None = None):
        self._machine = Machine(
            n_cores=1, calib=CalibratedCosts(), gc=gc if gc is not None else GcModel()
        )

    def run_batch(self, tasks: Sequence[EngineTask]) -> list[TaskResult]:
        return [t.run() for t in tasks]

    def account_step(
        self,
        results: Sequence[TaskResult],
        allocations: float,
        retained: float,
    ) -> None:
        sim = [
            SimTask(r.meter.total_cost, dict(r.meter.shared)) for r in results
        ]
        self._machine.run_step(sim, allocations=allocations, retained=retained)

    def account_serial(self, cost: float) -> None:
        self._machine.run_serial(cost)

    def report(self) -> MachineReport:
        return self._machine.report

    def state_dict(self) -> dict:
        return {"machine": _report_state(self._machine.report)}

    def load_state(self, state: dict) -> None:
        if state:
            _load_report_state(self._machine.report, state.get("machine", {}))


def _report_state(report: MachineReport) -> dict:
    """The resumable fields of a virtual-time account (``n_cores`` is
    structural and rebuilt from the options, not restored)."""
    return {
        "elapsed": report.elapsed,
        "busy": report.busy,
        "gc_time": report.gc_time,
        "contention": report.contention,
        "overhead": report.overhead,
        "steps": report.steps,
        "tasks": report.tasks,
        "max_batch": report.max_batch,
    }


def _load_report_state(report: MachineReport, state: dict) -> None:
    for name in (
        "elapsed", "busy", "gc_time", "contention", "overhead"
    ):
        setattr(report, name, float(state.get(name, 0.0)))
    for name in ("steps", "tasks", "max_batch"):
        setattr(report, name, int(state.get(name, 0)))
