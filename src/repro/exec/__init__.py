"""Execution strategies and cost metering (§5 parallelisation strategies)."""

from repro.exec.base import EngineTask, Strategy, TaskResult
from repro.exec.chaos import ChaosFault, ChaosStrategy, FaultPlan
from repro.exec.forkjoin import ForkJoinStrategy
from repro.exec.metering import DEFAULT_WEIGHTS, CostMeter
from repro.exec.sequential import SequentialStrategy
from repro.exec.threads import ThreadStrategy

__all__ = [
    "EngineTask",
    "Strategy",
    "TaskResult",
    "ChaosFault",
    "ChaosStrategy",
    "FaultPlan",
    "ForkJoinStrategy",
    "SequentialStrategy",
    "ThreadStrategy",
    "CostMeter",
    "DEFAULT_WEIGHTS",
]
