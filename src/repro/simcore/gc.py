"""Garbage-collection pressure model.

§6.2: "Given that this program inserts more than 8 million PvWatts
tuples that cannot be garbage collected into the Gamma database and
that we have observed up to 60 % of the elapsed time being spent in
the garbage collector, it is clear that garbage collection is at least
partially responsible" [for the sub-linear PvWatts speedup].

Model: each step pays a mostly-serial GC tax proportional to the
objects *allocated* during the step, amplified by how full the heap
already is (young-generation collections get more expensive and more
frequent as the retained set grows):

``gc_time = alloc_cost · allocations · (1 + amplify · retained / (retained + half_full))``

``retained`` counts *boxed tuples* on the heap — native-array stores
report (near) zero (:meth:`TableStore.heap_tuples`), which is exactly
why the §6.4/§6.6 native-array optimisation and the Disruptor's
object-recycling design (§6.3) help scalability, not just raw speed.

The tax is added to the step makespan as serial time (stop-the-world),
so it hurts *parallel* efficiency far more than sequential runs — a
1-core run is slowed by the same seconds, but an 8-core run loses 8
cores' worth of potential work while the collector runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GcModel"]


@dataclass(frozen=True)
class GcModel:
    """Tunables for the GC-pressure tax."""

    #: work units of collector time per allocated (retained or transient) object
    alloc_cost: float = 0.35
    #: how strongly a full heap amplifies the per-allocation tax
    amplify: float = 3.0
    #: retained-object count at which amplification reaches half strength
    half_full: float = 200_000.0
    #: fraction of GC work that is stop-the-world (the rest is concurrent)
    serial_share: float = 0.8

    def step_tax(self, allocations: float, retained: float) -> float:
        """Serial GC time (work units) charged to one step."""
        if allocations <= 0:
            return 0.0
        pressure = 1.0 + self.amplify * retained / (retained + self.half_full)
        return self.alloc_cost * allocations * pressure * self.serial_share


#: model with GC effectively disabled (for ablations)
NO_GC = GcModel(alloc_cost=0.0)
