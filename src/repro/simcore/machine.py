"""The virtual multicore machine: clock + scheduler + contention + GC.

This is the substitute for the paper's Xeon testbeds (see DESIGN.md §2).
The engine executes rule bodies for real and feeds the machine one
:class:`~repro.simcore.task.SimTask` batch per all-minimums step; the
machine returns the step's virtual duration and advances its clock.

Because outputs are computed before any scheduling happens, the
machine can *only* influence reported time — program results are
identical for every core count, which is the determinism guarantee the
language promises (§1.3) and which our property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.simcore.contention import CalibratedCosts, StepTiming, step_makespan
from repro.simcore.gc import GcModel
from repro.simcore.task import SimTask

__all__ = ["MachineReport", "Machine"]


@dataclass
class MachineReport:
    """Aggregate virtual-time account of a whole run."""

    n_cores: int
    elapsed: float = 0.0
    busy: float = 0.0
    gc_time: float = 0.0
    contention: float = 0.0
    overhead: float = 0.0
    steps: int = 0
    tasks: int = 0
    max_batch: int = 0

    @property
    def utilisation(self) -> float:
        denom = self.elapsed * self.n_cores
        return self.busy / denom if denom > 0 else 1.0

    def as_dict(self) -> dict:
        return {
            "n_cores": self.n_cores,
            "elapsed": self.elapsed,
            "busy": self.busy,
            "gc_time": self.gc_time,
            "contention": self.contention,
            "overhead": self.overhead,
            "steps": self.steps,
            "tasks": self.tasks,
            "max_batch": self.max_batch,
            "utilisation": self.utilisation,
        }


@dataclass
class Machine:
    """N virtual cores with calibrated contention and GC models."""

    n_cores: int
    calib: CalibratedCosts = field(default_factory=CalibratedCosts)
    gc: GcModel = field(default_factory=GcModel)
    report: MachineReport = field(init=False)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("a machine needs at least one core")
        self.report = MachineReport(n_cores=self.n_cores)

    def run_step(
        self,
        tasks: Sequence[SimTask],
        allocations: float = 0.0,
        retained: float = 0.0,
    ) -> StepTiming:
        """Execute one step batch in virtual time.

        ``allocations`` = objects allocated during the step,
        ``retained`` = boxed tuples currently live in Gamma (feeds the
        GC model).  Returns the step timing; the machine's clock and
        aggregate report advance accordingly.
        """
        timing = step_makespan(tasks, self.n_cores, self.calib)
        gc_tax = self.gc.step_tax(allocations, retained)
        r = self.report
        r.elapsed += timing.makespan + gc_tax
        r.busy += timing.busy
        r.gc_time += gc_tax
        r.contention += timing.contention
        r.overhead += timing.overhead
        r.steps += 1
        r.tasks += timing.n_tasks
        r.max_batch = max(r.max_batch, timing.n_tasks)
        return timing

    def run_serial(self, cost: float) -> None:
        """Account a purely sequential stretch (e.g. program setup)."""
        self.report.elapsed += cost
        self.report.busy += cost

    @property
    def now(self) -> float:
        return self.report.elapsed
