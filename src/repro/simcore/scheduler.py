"""Fork/join scheduling of task batches onto virtual cores.

The paper's runtime submits each step's minimal-class tuples to a Java
Fork/Join pool and joins them before the next step (§5, "it takes all
minimal tuples out of the Delta set, and executes all those tuples in
parallel").  Work-stealing pools achieve makespans close to the greedy
bound, so we model a step's makespan with **LPT (longest processing
time first) list scheduling**: sort tasks by descending cost, always
assign to the least-loaded core.  LPT is within 4/3 of optimal and,
more importantly, within a few percent of what a work-stealing
executor actually achieves on batch workloads — accurate enough for
speedup *shapes*.

A tiny binary heap keeps the least-loaded-core lookup cheap; for large
batches of uniform tasks we shortcut with the exact formula.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.simcore.task import SimTask

__all__ = ["lpt_makespan", "greedy_makespan"]


def lpt_makespan(costs: Sequence[float], n_cores: int) -> float:
    """Makespan of LPT list scheduling of ``costs`` on ``n_cores``."""
    if not costs:
        return 0.0
    if n_cores <= 1 or len(costs) == 1:
        return sum(costs) if n_cores <= 1 else max(sum(costs), max(costs))
    if len(costs) <= n_cores:
        return max(costs)
    loads = [0.0] * n_cores
    heapq.heapify(loads)
    for c in sorted(costs, reverse=True):
        least = heapq.heappop(loads)
        heapq.heappush(loads, least + c)
    return max(loads)


def greedy_makespan(tasks: Iterable[SimTask], n_cores: int) -> float:
    """LPT makespan of a task batch (cost dimension only; contention is
    layered on top by :mod:`repro.simcore.contention`)."""
    return lpt_makespan([t.cost for t in tasks], n_cores)
